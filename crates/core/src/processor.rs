//! The cached query execution pipeline.
//!
//! Per query (Sect. 3.1–3.2): probe the intelligent cache on the internal
//! structure; compile to the backend dialect; probe the literal cache on the
//! text; otherwise acquire a pooled connection, materialize any required
//! temp tables in the session (falling back to inline compilation when temp
//! creation fails, as the Data Server does in Sect. 5.3), execute remotely,
//! apply local post-processing, and populate both cache levels.

use crate::compile::{apply_local_post, compile_spec, CompiledQuery};
use crate::registry::{ManagedSource, SourceRegistry};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tabviz_backend::Capabilities;
use tabviz_cache::{QueryCaches, QuerySpec};
use tabviz_common::{Chunk, Result, TvError};
use tabviz_obs::{stage, Counter, Histogram, Obs, ProfileOutcome};
use tabviz_sched::{AdmitRequest, Priority, SchedConfig, Scheduler};

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    IntelligentHit,
    LiteralHit,
    /// Both L1 levels missed but the shared L2 tier held the canonical
    /// result; it was promoted into L1 on the way back.
    L2Hit,
    Remote,
    /// The backend was unavailable; the answer came from a cache entry
    /// marked stale. Degraded but rendered — the caller should flag it.
    DegradedStale,
}

/// Cumulative processor counters (a point-in-time copy; see
/// [`QueryProcessor::stats`]).
#[derive(Debug, Clone, Default)]
pub struct ProcessorStats {
    pub intelligent_hits: u64,
    pub literal_hits: u64,
    /// Queries answered from the shared L2 tier after both L1 levels missed.
    pub l2_hits: u64,
    pub remote_queries: u64,
    /// Remote queries that were widened for reuse before dispatch.
    pub widened_queries: u64,
    pub temp_table_fallbacks: u64,
    pub remote_time: Duration,
    /// Remote attempts repeated after a transient failure.
    pub transient_retries: u64,
    /// Queries answered from a stale cache entry after the backend failed.
    pub degraded_serves: u64,
}

/// Lock-free backing store for [`ProcessorStats`]: per-field atomics instead
/// of one mutex, so concurrent batch workers never serialize on bookkeeping.
#[derive(Default)]
struct AtomicStats {
    intelligent_hits: AtomicU64,
    literal_hits: AtomicU64,
    l2_hits: AtomicU64,
    remote_queries: AtomicU64,
    widened_queries: AtomicU64,
    temp_table_fallbacks: AtomicU64,
    remote_time_nanos: AtomicU64,
    transient_retries: AtomicU64,
    degraded_serves: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ProcessorStats {
        ProcessorStats {
            intelligent_hits: self.intelligent_hits.load(Relaxed),
            literal_hits: self.literal_hits.load(Relaxed),
            l2_hits: self.l2_hits.load(Relaxed),
            remote_queries: self.remote_queries.load(Relaxed),
            widened_queries: self.widened_queries.load(Relaxed),
            temp_table_fallbacks: self.temp_table_fallbacks.load(Relaxed),
            remote_time: Duration::from_nanos(self.remote_time_nanos.load(Relaxed)),
            transient_retries: self.transient_retries.load(Relaxed),
            degraded_serves: self.degraded_serves.load(Relaxed),
        }
    }

    fn reset(&self) {
        self.intelligent_hits.store(0, Relaxed);
        self.literal_hits.store(0, Relaxed);
        self.l2_hits.store(0, Relaxed);
        self.remote_queries.store(0, Relaxed);
        self.widened_queries.store(0, Relaxed);
        self.temp_table_fallbacks.store(0, Relaxed);
        self.remote_time_nanos.store(0, Relaxed);
        self.transient_retries.store(0, Relaxed);
        self.degraded_serves.store(0, Relaxed);
    }
}

/// Registry-visible processor metrics (`tv_core_*`), bound once at
/// construction. These shadow [`AtomicStats`] where the names overlap; the
/// registry versions are for exposition, the stats struct is the stable
/// programmatic API.
struct CoreMetrics {
    queries: Counter,
    intelligent_hits: Counter,
    literal_hits: Counter,
    l2_hits: Counter,
    remote_queries: Counter,
    widened_queries: Counter,
    transient_retries: Counter,
    degraded_serves: Counter,
    temp_table_fallbacks: Counter,
    timeouts: Counter,
    query_time: Histogram,
    remote_time: Histogram,
}

impl CoreMetrics {
    fn bind(registry: &tabviz_obs::Registry) -> Self {
        CoreMetrics {
            queries: registry.counter("tv_core_queries_total"),
            intelligent_hits: registry.counter("tv_core_intelligent_hits_total"),
            literal_hits: registry.counter("tv_core_literal_hits_total"),
            l2_hits: registry.counter("tv_core_l2_hits_total"),
            remote_queries: registry.counter("tv_core_remote_queries_total"),
            widened_queries: registry.counter("tv_core_widened_queries_total"),
            transient_retries: registry.counter("tv_core_transient_retries_total"),
            degraded_serves: registry.counter("tv_core_degraded_serves_total"),
            temp_table_fallbacks: registry.counter("tv_core_temp_table_fallbacks_total"),
            timeouts: registry.counter("tv_core_timeouts_total"),
            query_time: registry.histogram("tv_core_query_seconds"),
            remote_time: registry.histogram("tv_core_remote_seconds"),
        }
    }
}

/// Feature switches (each is an experiment baseline).
#[derive(Debug, Clone, Copy)]
pub struct ProcessorOptions {
    pub use_intelligent_cache: bool,
    pub use_literal_cache: bool,
    /// Consult the shared L2 tier (when one is attached) after both L1
    /// levels miss, and publish fresh backend results to it.
    pub use_l2_cache: bool,
    /// Sect. 3.2: "The query processor might choose to adjust queries before
    /// sending, in order to make the results more useful for future reuse."
    /// On a miss, single-value-set filters are folded into the grouping of
    /// the remote query; the original is then answered (and every future
    /// filter variation served) from the widened cached result.
    pub widen_for_reuse: bool,
    /// Cap on extra grouping columns widening may add (cardinality guard).
    pub widen_max_extra_columns: usize,
    /// Per-remote-query deadline; a backend that cannot answer in time
    /// returns [`TvError::Timeout`] instead of hanging the dashboard.
    pub query_timeout: Option<Duration>,
    /// Extra attempts after a transient remote failure (dropped connection,
    /// refused connect). Timeouts are not retried: the budget is spent.
    pub transient_retries: usize,
    /// When the backend stays down after retries, serve a matching cache
    /// entry even if marked stale (degraded rendering) instead of failing.
    pub serve_stale_on_failure: bool,
}

impl Default for ProcessorOptions {
    fn default() -> Self {
        ProcessorOptions {
            use_intelligent_cache: true,
            use_literal_cache: true,
            use_l2_cache: true,
            widen_for_reuse: true,
            widen_max_extra_columns: 2,
            query_timeout: Some(Duration::from_secs(30)),
            transient_retries: 2,
            serve_stale_on_failure: true,
        }
    }
}

/// Filters widening may lift into the grouping: *categorical* single-column
/// constraints (`=` / `IN`) — the dashboard quick-filter shapes. Range
/// filters stay put: folding a continuous column into the grouping would
/// explode cardinality.
fn widenable_column(f: &tabviz_tql::Expr) -> Option<String> {
    use tabviz_tql::{BinOp, Expr};
    match f {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c)) => {
                Some(c.clone())
            }
            _ => None,
        },
        // Small enumerations only: large IN-lists are the temp-table
        // externalization case (Sect. 3.1), not the widening case.
        Expr::In {
            expr,
            list,
            negated: false,
        } if list.len() <= WIDEN_MAX_IN_LIST => match expr.as_ref() {
            Expr::Column(c) => Some(c.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// IN-lists above this size are left for externalization instead of being
/// folded into the grouping.
const WIDEN_MAX_IN_LIST: usize = 16;

/// Build the widened variant of a spec, or `None` when widening does not
/// apply (no liftable filters, COUNTD present, or too many extra columns).
fn widen_spec(spec: &QuerySpec, max_extra: usize) -> Option<QuerySpec> {
    use tabviz_tql::AggFunc;
    if spec.aggs.iter().any(|a| a.func == AggFunc::CountD) {
        return None; // COUNTD cannot roll back up
    }
    let mut extra: Vec<String> = Vec::new();
    let mut lifted = 0usize;
    for f in &spec.filters {
        if let Some(c) = widenable_column(f) {
            if !spec.group_by.contains(&c) {
                if !extra.contains(&c) {
                    extra.push(c);
                }
                lifted += 1;
            }
        }
    }
    if lifted == 0 || extra.len() > max_extra {
        return None;
    }
    let mut widened = spec.clone();
    widened.order.clear();
    widened.topn = None;
    // Drop the lifted filters; their columns join the grouping so the cache
    // can re-apply them (and any future variant) as residuals.
    widened
        .filters
        .retain(|f| widenable_column(f).is_none_or(|c| spec.group_by.contains(&c)));
    widened.group_by.extend(extra);
    // AVG needs its SUM/COUNT decomposition cached alongside for roll-up.
    let mut additions = Vec::new();
    for a in &spec.aggs {
        if a.func == AggFunc::Avg {
            let has = |f: AggFunc| widened.aggs.iter().any(|x| x.func == f && x.arg == a.arg);
            if !has(AggFunc::Sum) {
                additions.push(tabviz_tql::AggCall::new(
                    AggFunc::Sum,
                    a.arg.clone(),
                    format!("__w_{}_sum", a.alias),
                ));
            }
            if !has(AggFunc::Count) {
                additions.push(tabviz_tql::AggCall::new(
                    AggFunc::Count,
                    a.arg.clone(),
                    format!("__w_{}_cnt", a.alias),
                ));
            }
        }
    }
    widened.aggs.extend(additions);
    widened.normalize();
    Some(widened)
}

/// RAII slot in the single-flight widen set: acquired when this thread is
/// the first in flight for a widened canonical text, released (even on
/// panic or early return) when dropped.
struct WidenGate<'a> {
    set: &'a std::sync::Mutex<std::collections::HashSet<String>>,
    key: String,
}

impl<'a> WidenGate<'a> {
    fn try_acquire(
        set: &'a std::sync::Mutex<std::collections::HashSet<String>>,
        key: String,
    ) -> Option<Self> {
        let mut guard = set.lock().unwrap_or_else(|p| p.into_inner());
        if guard.insert(key.clone()) {
            Some(WidenGate { set, key })
        } else {
            None
        }
    }
}

impl Drop for WidenGate<'_> {
    fn drop(&mut self) {
        self.set
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.key);
    }
}

/// The query processor: sources + caches + observability.
pub struct QueryProcessor {
    pub registry: SourceRegistry,
    pub caches: QueryCaches,
    pub options: ProcessorOptions,
    /// Per-processor observability: metrics registry + recent profiles.
    pub obs: Arc<Obs>,
    /// Optional admission controller. When set, every backend-bound query
    /// acquires a [`tabviz_sched::Ticket`] before touching a pool; cache
    /// hits are never queued.
    scheduler: Option<Arc<Scheduler>>,
    /// Widened canonical texts currently being computed. Concurrent misses
    /// on the same reusable shape elect one widener; the rest run their
    /// original query directly instead of racing duplicate widened scans
    /// against the backend.
    widen_inflight: std::sync::Mutex<std::collections::HashSet<String>>,
    stats: AtomicStats,
    metrics: CoreMetrics,
}

impl Default for QueryProcessor {
    fn default() -> Self {
        Self::new(QueryCaches::default())
    }
}

impl QueryProcessor {
    pub fn new(caches: QueryCaches) -> Self {
        let obs = Arc::new(Obs::new());
        caches.bind_obs(&obs.registry);
        let registry = SourceRegistry::new();
        registry.set_obs(obs.registry.clone());
        let metrics = CoreMetrics::bind(&obs.registry);
        QueryProcessor {
            registry,
            caches,
            options: ProcessorOptions::default(),
            obs,
            scheduler: None,
            widen_inflight: std::sync::Mutex::new(std::collections::HashSet::new()),
            stats: AtomicStats::default(),
            metrics,
        }
    }

    /// Attach a workload scheduler. All subsequent backend-bound queries
    /// pass through its admission queue; its `tv_sched_*` metrics land in
    /// this processor's registry.
    pub fn set_scheduler(&mut self, scheduler: Arc<Scheduler>) {
        scheduler.bind_obs(&self.obs.registry);
        self.scheduler = Some(scheduler);
    }

    /// Attach a scheduler sized from the registered pools (one running
    /// ticket per pooled connection). Call after registering sources.
    pub fn enable_scheduler(&mut self) -> Arc<Scheduler> {
        let capacity = self.registry.total_pool_capacity().max(1);
        let mut config = SchedConfig::for_pool_capacity(capacity);
        // Per-source ceilings at each backend's pool size: one saturated
        // backend queues its own tickets while the rest of the global
        // budget keeps serving healthy backends.
        for (name, cap) in self.registry.pool_capacities() {
            config = config.with_source_limit(name, cap.max(1));
        }
        let scheduler = Arc::new(Scheduler::new(config));
        self.set_scheduler(Arc::clone(&scheduler));
        scheduler
    }

    pub fn scheduler(&self) -> Option<&Arc<Scheduler>> {
        self.scheduler.as_ref()
    }

    pub fn stats(&self) -> ProcessorStats {
        self.stats.snapshot()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// The query-class key used for latency-fingerprint baselines: the
    /// dashboard-zone shape (source + grouping + aggregate aliases),
    /// excluding filter literals — so interactions over the same zone
    /// (filter sliders, cross-filters) share one class.
    pub fn query_class(spec: &QuerySpec) -> String {
        let aggs: Vec<&str> = spec.aggs.iter().map(|a| a.alias.as_str()).collect();
        format!(
            "{}|g:{}|a:{}",
            spec.source,
            spec.group_by.join(","),
            aggs.join(",")
        )
    }

    /// Execute one internal query through the full pipeline, recording a
    /// per-query [`tabviz_obs::QueryProfile`] (timeline of stages, retry
    /// count, fault attribution, outcome) into [`Self::obs`].
    pub fn execute(&self, spec: &QuerySpec) -> Result<(Chunk, ExecOutcome)> {
        self.execute_as(spec, &AdmitRequest::interactive("internal"))
    }

    /// [`QueryProcessor::execute`] under an explicit workload class: the
    /// admission request names the priority, fairness session, weight and
    /// queue deadline used if this query needs backend work.
    pub fn execute_as(&self, spec: &QuerySpec, req: &AdmitRequest) -> Result<(Chunk, ExecOutcome)> {
        let started = Instant::now();
        // A cross-thread trace assembles this query's spans — including
        // those recorded on morsel scan workers — into one tree. The
        // legacy per-thread ring mark is kept as the fallback when trace
        // capture is globally disabled (the e20 overhead experiment).
        let trace_mark = tabviz_obs::mark();
        let trace = tabviz_obs::begin_trace();
        let result = self.execute_inner(spec, req);
        let total = started.elapsed();
        self.metrics.queries.inc();
        self.metrics.query_time.observe(total);
        if matches!(result, Err(TvError::Timeout(_))) {
            self.metrics.timeouts.inc();
        }
        let finished = trace.finish(total);
        let events = if finished.is_captured() {
            finished.events.clone()
        } else {
            tabviz_obs::collect_since(&trace_mark)
        };
        let outcome = match &result {
            Ok((_, _, profile_outcome)) => *profile_outcome,
            Err(_) => ProfileOutcome::Failed,
        };
        let retries = events
            .iter()
            .filter(|e| e.stage == stage::RETRY && e.label == Some("transient"))
            .count() as u64;
        let query_text = spec.canonical_text().replace('\u{1}', " ");
        let profile = tabviz_obs::assemble(
            query_text.clone(),
            spec.source.clone(),
            outcome,
            retries,
            started,
            total,
            &events,
        );
        self.obs.profiles.record(profile);
        // Fold this query into its class's latency fingerprint so the
        // root-cause analyzer can diff tail outliers against the class's
        // normal stage shape (gated for the e25 overhead arms).
        let class = Self::query_class(spec);
        if tabviz_obs::analyze::enabled() {
            self.obs.baselines.observe(&class, &events, total);
        }
        if finished.is_captured() {
            self.obs.recorder.record(
                tabviz_obs::RecordedTrace::from_finished(
                    finished,
                    query_text,
                    spec.source.clone(),
                    outcome,
                )
                .with_class(class),
            );
        }
        result.map(|(chunk, exec, _)| (chunk, exec))
    }

    /// The untraced pipeline body. Returns the public [`ExecOutcome`] plus
    /// the finer-grained [`ProfileOutcome`] (widened serves are `Derived`,
    /// not `Remote`).
    fn execute_inner(
        &self,
        spec: &QuerySpec,
        req: &AdmitRequest,
    ) -> Result<(Chunk, ExecOutcome, ProfileOutcome)> {
        let managed = self.registry.get(&spec.source)?;
        if self.options.use_intelligent_cache {
            let hit = {
                let mut s = tabviz_obs::span(stage::CACHE_LOOKUP);
                s.label("intelligent");
                // Background work is the revalidation lane SWR serving
                // depends on: it must see through grace-window entries to
                // the backend, or stale data would revalidate itself.
                let (hit, why) = if req.priority == Priority::Background {
                    self.caches.intelligent.get_explained_fresh_only(spec)
                } else {
                    self.caches.intelligent.get_explained(spec)
                };
                s.reason(why);
                hit
            };
            if let Some(hit) = hit {
                self.stats.intelligent_hits.fetch_add(1, Relaxed);
                self.metrics.intelligent_hits.inc();
                tabviz_obs::event_with(
                    stage::CACHE_TIER,
                    Some("l1"),
                    Some(hit.len() as u64),
                    Some(tabviz_obs::reason::CACHE_L1_HIT),
                );
                return Ok((hit, ExecOutcome::IntelligentHit, ProfileOutcome::Hit));
            }
        }
        let compiled = {
            let _s = tabviz_obs::span(stage::COMPILE);
            compile_spec(spec, managed.capabilities(), &managed.compile_options)?
        };
        if self.options.use_literal_cache {
            let hit = {
                let mut s = tabviz_obs::span(stage::CACHE_LOOKUP);
                s.label("literal");
                let (hit, why) = self
                    .caches
                    .literal
                    .get_explained(&spec.source, &compiled.remote.text);
                s.reason(why);
                hit
            };
            if let Some(hit) = hit {
                self.stats.literal_hits.fetch_add(1, Relaxed);
                self.metrics.literal_hits.inc();
                tabviz_obs::event_with(
                    stage::CACHE_TIER,
                    Some("l1"),
                    Some(hit.len() as u64),
                    Some(tabviz_obs::reason::CACHE_L1_HIT),
                );
                return Ok((hit, ExecOutcome::LiteralHit, ProfileOutcome::Hit));
            }
        }
        // Both L1 levels missed: consult the shared L2 tier before paying
        // the backend round trip, and promote a hit into L1 for next time.
        if self.options.use_l2_cache && self.caches.has_l2() {
            let hit = {
                let mut s = tabviz_obs::span(stage::CACHE_TIER);
                s.label("get");
                match self.caches.l2_lookup(spec) {
                    Some(chunk) => {
                        s.detail(chunk.len() as u64);
                        s.reason(tabviz_obs::reason::CACHE_L2_HIT);
                        Some(chunk)
                    }
                    None => None,
                }
            };
            if let Some(chunk) = hit {
                self.stats.l2_hits.fetch_add(1, Relaxed);
                self.metrics.l2_hits.inc();
                {
                    let mut s = tabviz_obs::span(stage::CACHE_TIER);
                    s.label("promote");
                    s.reason(tabviz_obs::reason::CACHE_L2_PROMOTE);
                    // Nominal insert cost: the entry already proved itself
                    // worth caching when the producing node stored it.
                    self.caches.l2_promote(
                        spec.clone(),
                        &compiled.remote.text,
                        &chunk,
                        Duration::from_millis(1),
                    );
                }
                return Ok((chunk, ExecOutcome::L2Hit, ProfileOutcome::Hit));
            }
        }
        // Widening: send a more reusable remote query and answer this (and
        // future filter variations) from its cached result.
        if self.options.widen_for_reuse && self.options.use_intelligent_cache {
            if let Some(widened) = widen_spec(spec, self.options.widen_max_extra_columns) {
                // Single-flight: only one concurrent miss per widened shape
                // runs the widened query; losers fall through to a direct
                // remote execution of their original spec.
                let gate = WidenGate::try_acquire(&self.widen_inflight, widened.canonical_text());
                if gate.is_some() {
                    let _w = tabviz_obs::span(stage::WIDEN);
                    if let Ok(compiled_w) =
                        compile_spec(&widened, managed.capabilities(), &managed.compile_options)
                    {
                        let t0 = Instant::now();
                        if let Ok(chunk_w) =
                            self.run_remote_admitted(&managed, &widened, &compiled_w, req)
                        {
                            let cost = t0.elapsed();
                            self.stats.remote_queries.fetch_add(1, Relaxed);
                            self.stats.widened_queries.fetch_add(1, Relaxed);
                            self.stats
                                .remote_time_nanos
                                .fetch_add(cost.as_nanos() as u64, Relaxed);
                            self.metrics.remote_queries.inc();
                            self.metrics.widened_queries.inc();
                            self.metrics.remote_time.observe(cost);
                            {
                                let _s = tabviz_obs::span(stage::CACHE_STORE);
                                self.caches.intelligent.put(
                                    widened.clone(),
                                    chunk_w.clone(),
                                    cost.max(Duration::from_millis(1)),
                                );
                            }
                            if self.options.use_l2_cache && self.caches.has_l2() {
                                let mut s = tabviz_obs::span(stage::CACHE_TIER);
                                s.label("put");
                                s.detail(chunk_w.len() as u64);
                                self.caches.l2_store(&widened, &chunk_w);
                            }
                            let hit = {
                                let mut s = tabviz_obs::span(stage::CACHE_LOOKUP);
                                s.label("intelligent");
                                let (hit, why) = self.caches.intelligent.get_explained(spec);
                                s.reason(why);
                                hit
                            };
                            if let Some(hit) = hit {
                                return Ok((hit, ExecOutcome::Remote, ProfileOutcome::Derived));
                            }
                            // Fall through: the widened entry unexpectedly failed
                            // to cover the original; execute it directly.
                        }
                    }
                }
            }
        }
        let t0 = Instant::now();
        let chunk = match self.run_remote_admitted(&managed, spec, &compiled, req) {
            Ok(chunk) => chunk,
            Err(e) if e.is_degradable() && self.options.serve_stale_on_failure => {
                // Degraded rendering: a stale cached answer beats a failed
                // dashboard when the backend is unavailable.
                match self.caches.lookup_stale(spec, &compiled.remote.text) {
                    Some(stale) => {
                        self.stats.degraded_serves.fetch_add(1, Relaxed);
                        self.metrics.degraded_serves.inc();
                        return Ok((
                            stale,
                            ExecOutcome::DegradedStale,
                            ProfileOutcome::DegradedStale,
                        ));
                    }
                    None => return Err(e),
                }
            }
            Err(e) => return Err(e),
        };
        let cost = t0.elapsed();
        self.stats.remote_queries.fetch_add(1, Relaxed);
        self.stats
            .remote_time_nanos
            .fetch_add(cost.as_nanos() as u64, Relaxed);
        self.metrics.remote_queries.inc();
        self.metrics.remote_time.observe(cost);
        if self.options.use_literal_cache || self.options.use_intelligent_cache {
            let _s = tabviz_obs::span(stage::CACHE_STORE);
            if self.options.use_literal_cache {
                // Tagged with source + table dependencies so a table
                // refresh purges literal entries as precisely as
                // intelligent ones.
                self.caches.literal.put_tagged(
                    &spec.source,
                    &compiled.remote.text,
                    chunk.clone(),
                    cost,
                    tabviz_cache::tags_for_spec(spec),
                );
            }
            if self.options.use_intelligent_cache {
                self.caches
                    .intelligent
                    .put(spec.clone(), chunk.clone(), cost);
            }
        }
        if self.options.use_l2_cache && self.caches.has_l2() {
            let mut s = tabviz_obs::span(stage::CACHE_TIER);
            s.label("put");
            s.detail(chunk.len() as u64);
            self.caches.l2_store(spec, &chunk);
        }
        Ok((chunk, ExecOutcome::Remote, ProfileOutcome::Remote))
    }

    /// Admission-gated backend execution: with a scheduler attached, the
    /// query queues for a concurrency slot here — a ticket shed by load
    /// shedding or an expired queue deadline fails with
    /// [`TvError::Timeout`] *before* any pool/backend work, which the
    /// caller may degrade into a stale cache serve. The ticket is held
    /// across transient retries so a retry never re-queues.
    fn run_remote_admitted(
        &self,
        managed: &Arc<ManagedSource>,
        spec: &QuerySpec,
        compiled: &CompiledQuery,
        req: &AdmitRequest,
    ) -> Result<Chunk> {
        let _ticket = match &self.scheduler {
            Some(sched) => {
                let mut s = tabviz_obs::span(stage::SCHED_QUEUE);
                s.label(req.priority.name());
                // Name the backend so the per-source gate applies; an
                // explicitly sourced request keeps its own attribution.
                let sourced;
                let req = if req.source.is_none() {
                    sourced = req.clone().with_source(spec.source.clone());
                    &sourced
                } else {
                    req
                };
                let ticket = sched.admit(req)?;
                s.detail(ticket.queued_for().as_micros() as u64);
                s.reason(ticket.grant_reason());
                Some(ticket)
            }
            None => None,
        };
        self.run_remote_resilient(managed, spec, compiled)
    }

    /// [`QueryProcessor::run_remote`] with bounded retries on transient
    /// failures. The backoff shares the pool's deterministic jitter salt.
    fn run_remote_resilient(
        &self,
        managed: &Arc<ManagedSource>,
        spec: &QuerySpec,
        compiled: &CompiledQuery,
    ) -> Result<Chunk> {
        let mut attempt = 0usize;
        loop {
            match self.run_remote(managed, spec, compiled) {
                Ok(chunk) => return Ok(chunk),
                Err(e) if e.is_transient() && attempt < self.options.transient_retries => {
                    self.stats.transient_retries.fetch_add(1, Relaxed);
                    self.metrics.transient_retries.inc();
                    tabviz_obs::event(stage::RETRY, Some("transient"), Some(attempt as u64));
                    std::thread::sleep(managed.pool.next_backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Acquire a session (preferring one that already holds the needed temp
    /// structure), materialize temp tables, execute, post-process.
    ///
    /// A session that turns unhealthy (dropped mid-query) is automatically
    /// discarded by the pool guard on drop, so errors here never leak a
    /// poisoned connection to a later acquirer.
    fn run_remote(
        &self,
        managed: &Arc<ManagedSource>,
        spec: &QuerySpec,
        compiled: &CompiledQuery,
    ) -> Result<Chunk> {
        let preferred = compiled.temp_tables.first().map(|(n, _)| n.as_str());
        let mut conn = managed.pool.acquire_preferring(preferred)?;
        if !compiled.temp_tables.is_empty() {
            let mut tspan = tabviz_obs::span(stage::TEMP_TABLES);
            tspan.detail(compiled.temp_tables.len() as u64);
            for (name, data) in &compiled.temp_tables {
                if conn.has_temp_table(name) {
                    tspan.label("reused");
                    continue;
                }
                if let Err(e) = conn.create_temp_table(name, data) {
                    // "If the Data Server fails to create a temporary table on
                    // the database, the query is rewritten to produce a query
                    // that can be evaluated without it" (Sect. 5.3).
                    tspan.label("inline_fallback");
                    drop(tspan);
                    drop(conn);
                    self.stats.temp_table_fallbacks.fetch_add(1, Relaxed);
                    self.metrics.temp_table_fallbacks.inc();
                    let inline_caps = Capabilities {
                        supports_temp_tables: false,
                        ..managed.capabilities().clone()
                    };
                    let inline = compile_spec(spec, &inline_caps, &managed.compile_options)?;
                    if !inline.temp_tables.is_empty() {
                        return Err(TvError::Exec(format!(
                            "inline recompilation still requires temp tables: {e}"
                        )));
                    }
                    let mut conn = managed.pool.acquire()?;
                    let chunk = {
                        let _s = tabviz_obs::span(stage::REMOTE_EXEC);
                        conn.execute(&self.with_deadline(&inline.remote))?
                    };
                    let _p = tabviz_obs::span(stage::POST_PROCESS);
                    return Ok(apply_local_post(chunk, &inline.local_post));
                }
            }
        }
        let chunk = {
            let mut s = tabviz_obs::span(stage::REMOTE_EXEC);
            let chunk = conn.execute(&self.with_deadline(&compiled.remote))?;
            s.detail(chunk.len() as u64);
            chunk
        };
        let _p = tabviz_obs::span(stage::POST_PROCESS);
        Ok(apply_local_post(chunk, &compiled.local_post))
    }

    /// Stamp the configured per-query deadline onto an outgoing query.
    fn with_deadline(&self, rq: &tabviz_backend::RemoteQuery) -> tabviz_backend::RemoteQuery {
        let mut rq = rq.clone();
        rq.timeout = self.options.query_timeout;
        rq
    }

    /// Refresh a data source while its backend is unreachable: instead of
    /// purging, demote its cache entries to stale so they remain available
    /// for degraded serving. Returns how many entries were marked.
    pub fn mark_source_stale(&self, name: &str) -> usize {
        self.caches.mark_source_stale(name)
    }

    /// Close a data source: release pooled sessions and purge cache entries
    /// ("entries are also purged when a connection to a data source is
    /// closed or refreshed").
    pub fn close_source(&self, name: &str) -> Result<()> {
        self.registry.close(name)?;
        self.caches.purge_source(name);
        Ok(())
    }

    /// One table refreshed at the source: purge only its tagged dependents
    /// — across both tiers — instead of the wholesale source purge a
    /// connection close performs. Returns entries removed.
    pub fn refresh_table(&self, source: &str, table: &str) -> usize {
        let purged = self.caches.purge_table(source, table);
        tabviz_obs::event_with(
            stage::CACHE_TIER,
            Some("purge"),
            Some(purged as u64),
            Some(tabviz_obs::reason::CACHE_TAG_PURGE),
        );
        purged
    }

    /// [`QueryProcessor::refresh_table`] in degraded form: demote L1
    /// dependents to stale (still servable under SWR or outage) and drop
    /// the L2 copies. Returns entries marked.
    pub fn mark_table_stale(&self, source: &str, table: &str) -> usize {
        self.caches.mark_table_stale(source, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_backend::{SimConfig, SimDb};
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_storage::{Database, Table};
    use tabviz_tql::expr::{bin, col, lit, BinOp, Expr};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn flights_db(rows: usize) -> Arc<Database> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("market", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Str(["AA", "DL", "WN"][i % 3].into()),
                    Value::Str(format!("M{}", i % 50)),
                    Value::Int((i % 100) as i64),
                ]
            })
            .collect();
        let db = Arc::new(Database::new("remote"));
        db.put(
            Table::from_chunk("flights", &Chunk::from_rows(schema, &data).unwrap(), &[]).unwrap(),
        )
        .unwrap();
        db
    }

    fn processor_with_sim(rows: usize) -> (QueryProcessor, SimDb) {
        let sim = SimDb::new("warehouse", flights_db(rows), SimConfig::default());
        let mut qp = QueryProcessor::default();
        // Most tests here pin the externalization path; widening would lift
        // the big IN filters into the grouping instead.
        qp.options.widen_for_reuse = false;
        qp.registry.register(Arc::new(sim.clone()), 4);
        (qp, sim)
    }

    fn count_by_carrier() -> QuerySpec {
        QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    #[test]
    fn remote_then_cached() {
        let (qp, sim) = processor_with_sim(300);
        let (out1, o1) = qp.execute(&count_by_carrier()).unwrap();
        assert_eq!(o1, ExecOutcome::Remote);
        assert_eq!(out1.len(), 3);
        let (out2, o2) = qp.execute(&count_by_carrier()).unwrap();
        assert_eq!(o2, ExecOutcome::IntelligentHit);
        assert_eq!(out2.to_rows(), out1.to_rows());
        assert_eq!(
            sim.stats().queries,
            1,
            "second answer must not hit the backend"
        );
    }

    #[test]
    fn subsumption_avoids_remote() {
        let (qp, sim) = processor_with_sim(300);
        let fine = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .group("market")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        qp.execute(&fine).unwrap();
        // Coarser query + group-column filter: answered locally.
        let coarse = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Eq, col("carrier"), lit("AA")))
            .group("market")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let (out, outcome) = qp.execute(&coarse).unwrap();
        assert_eq!(outcome, ExecOutcome::IntelligentHit);
        assert_eq!(out.len(), 50);
        assert_eq!(sim.stats().queries, 1);
    }

    #[test]
    fn large_filter_creates_and_reuses_temp_table() {
        let (qp, sim) = processor_with_sim(600);
        let markets: Vec<Value> = (0..40).map(|i| Value::Str(format!("M{i}"))).collect();
        let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(Expr::In {
                expr: Box::new(col("market")),
                list: markets.clone(),
                negated: false,
            })
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let (out, _) = qp.execute(&spec).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(sim.stats().temp_tables_created, 1);
        // Different aggregates, same filter: temp table reused via affinity.
        let spec2 = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(Expr::In {
                expr: Box::new(col("market")),
                list: markets,
                negated: false,
            })
            .group("carrier")
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "total"));
        qp.execute(&spec2).unwrap();
        assert_eq!(
            sim.stats().temp_tables_created,
            1,
            "no duplicate temp table"
        );
    }

    #[test]
    fn temp_table_failure_falls_back_to_inline() {
        let (qp, sim) = processor_with_sim(600);
        sim.set_fail_temp_tables(true);
        let markets: Vec<Value> = (0..40).map(|i| Value::Str(format!("M{i}"))).collect();
        let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(Expr::In {
                expr: Box::new(col("market")),
                list: markets,
                negated: false,
            })
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let (out, _) = qp.execute(&spec).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(qp.stats().temp_table_fallbacks, 1);
        assert_eq!(sim.stats().temp_tables_created, 0);
    }

    #[test]
    fn results_match_between_inline_and_externalized() {
        let (qp, _) = processor_with_sim(600);
        let markets: Vec<Value> = (0..40).map(|i| Value::Str(format!("M{i}"))).collect();
        let make = |list: Vec<Value>| {
            QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
                .filter(Expr::In {
                    expr: Box::new(col("market")),
                    list,
                    negated: false,
                })
                .group("carrier")
                .agg(AggCall::new(AggFunc::Count, None, "n"))
        };
        let (ext, _) = qp.execute(&make(markets.clone())).unwrap();

        // Processor without temp-table support (inline IN-list).
        let sim2 = SimDb::new(
            "warehouse",
            flights_db(600),
            SimConfig {
                capabilities: Capabilities {
                    supports_temp_tables: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let qp2 = QueryProcessor::default();
        qp2.registry.register(Arc::new(sim2), 4);
        let (inline, _) = qp2.execute(&make(markets)).unwrap();
        let mut a = ext.to_rows();
        let mut b = inline.to_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn widening_serves_future_filter_variations() {
        // Sect. 3.2: the processor "adjusts queries before sending" — the
        // first filtered query is widened, so *different* filter subsets
        // afterwards never touch the backend.
        let sim = SimDb::new("warehouse", flights_db(600), SimConfig::default());
        let qp = QueryProcessor::default(); // widening on by default
        qp.registry.register(Arc::new(sim.clone()), 4);
        let with_filter = |subset: &[&str]| {
            QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
                .filter(Expr::In {
                    expr: Box::new(col("carrier")),
                    list: subset.iter().map(|&s| Value::from(s)).collect(),
                    negated: false,
                })
                .group("market")
                .agg(AggCall::new(AggFunc::Count, None, "n"))
                .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "avg"))
        };
        let (out1, o1) = qp.execute(&with_filter(&["AA", "DL"])).unwrap();
        assert_eq!(o1, ExecOutcome::Remote);
        assert_eq!(qp.stats().widened_queries, 1);
        // A different subset: pure cache work.
        let (out2, o2) = qp.execute(&with_filter(&["WN"])).unwrap();
        assert_eq!(o2, ExecOutcome::IntelligentHit);
        assert_eq!(
            sim.stats().queries,
            1,
            "one widened backend query serves all"
        );
        // Correctness: widened-path answers equal direct execution.
        let mut qp2 = QueryProcessor::default();
        qp2.options.widen_for_reuse = false;
        qp2.options.use_intelligent_cache = false;
        qp2.options.use_literal_cache = false;
        let sim2 = SimDb::new("warehouse", flights_db(600), SimConfig::default());
        qp2.registry.register(Arc::new(sim2), 4);
        for (subset, widened_out) in [(vec!["AA", "DL"], &out1), (vec!["WN"], &out2)] {
            let (direct, _) = qp2.execute(&with_filter(&subset)).unwrap();
            let mut a = widened_out.to_rows();
            let mut b = direct.to_rows();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn widening_skips_countd_and_range_filters() {
        let sim = SimDb::new("warehouse", flights_db(300), SimConfig::default());
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim.clone()), 4);
        // Range filter only: nothing liftable.
        let range_spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(10i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        qp.execute(&range_spec).unwrap();
        assert_eq!(qp.stats().widened_queries, 0);
        // COUNTD blocks widening even with a categorical filter.
        let countd_spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Eq, col("market"), lit("M1")))
            .group("carrier")
            .agg(AggCall::new(AggFunc::CountD, Some(col("delay")), "nd"));
        qp.execute(&countd_spec).unwrap();
        assert_eq!(qp.stats().widened_queries, 0);
    }

    #[test]
    fn transient_failures_are_retried_then_typed() {
        use tabviz_backend::FaultPlan;
        let (qp, sim) = processor_with_sim(300);
        let mut plan = FaultPlan::seeded(5);
        plan.transient_query_failure = 1.0; // every attempt fails
        sim.set_fault_plan(Some(plan));
        let err = qp.execute(&count_by_carrier()).expect_err("must fail");
        assert!(err.is_transient(), "got: {err}");
        // Default budget: 1 initial attempt + 2 retries.
        assert_eq!(qp.stats().transient_retries, 2);
        assert_eq!(sim.stats().transient_faults, 3);
        // Clearing the faults heals the source with no other intervention.
        sim.set_fault_plan(None);
        let (out, o) = qp.execute(&count_by_carrier()).unwrap();
        assert_eq!(o, ExecOutcome::Remote);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn backend_outage_serves_stale_cache_degraded() {
        use tabviz_backend::FaultPlan;
        let (qp, sim) = processor_with_sim(300);
        // Healthy pass populates both cache levels.
        let (fresh, _) = qp.execute(&count_by_carrier()).unwrap();
        // A refresh arrives while the backend starts dropping every
        // connection mid-query.
        assert!(qp.mark_source_stale("warehouse") >= 1);
        let mut plan = FaultPlan::seeded(9);
        plan.connection_drop = 1.0;
        sim.set_fault_plan(Some(plan));
        let (out, outcome) = qp.execute(&count_by_carrier()).unwrap();
        assert_eq!(outcome, ExecOutcome::DegradedStale);
        assert_eq!(out.to_rows(), fresh.to_rows(), "stale answer, right data");
        assert_eq!(qp.stats().degraded_serves, 1);
        // With stale serving disabled the same outage is a hard error.
        let (mut qp2, sim2) = processor_with_sim(300);
        qp2.options.serve_stale_on_failure = false;
        qp2.execute(&count_by_carrier()).unwrap();
        qp2.mark_source_stale("warehouse");
        let mut plan2 = FaultPlan::seeded(9);
        plan2.connection_drop = 1.0;
        sim2.set_fault_plan(Some(plan2));
        assert!(qp2.execute(&count_by_carrier()).is_err());
    }

    #[test]
    fn slow_backend_times_out_instead_of_hanging() {
        use tabviz_backend::FaultPlan;
        let (mut qp, sim) = processor_with_sim(300);
        qp.options.query_timeout = Some(Duration::from_millis(40));
        qp.options.serve_stale_on_failure = false;
        let mut plan = FaultPlan::seeded(2);
        plan.slow_query = 1.0;
        plan.slow_query_delay = Duration::from_secs(60); // would hang a minute
        sim.set_fault_plan(Some(plan));
        let t0 = Instant::now();
        let err = qp.execute(&count_by_carrier()).expect_err("must time out");
        assert!(matches!(err, TvError::Timeout(_)), "got: {err}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deadline must bound the wait"
        );
        assert_eq!(qp.stats().transient_retries, 0, "timeouts are not retried");
    }

    #[test]
    fn close_source_purges() {
        let (qp, _) = processor_with_sim(300);
        qp.execute(&count_by_carrier()).unwrap();
        qp.close_source("warehouse").unwrap();
        assert!(qp.execute(&count_by_carrier()).is_err()); // source gone
    }

    #[test]
    fn caches_can_be_disabled() {
        let (mut qp_holder, sim) = processor_with_sim(300);
        qp_holder.options = ProcessorOptions {
            use_intelligent_cache: false,
            use_literal_cache: false,
            ..Default::default()
        };
        let qp = qp_holder;
        qp.execute(&count_by_carrier()).unwrap();
        qp.execute(&count_by_carrier()).unwrap();
        assert_eq!(sim.stats().queries, 2);
    }
}
