//! The query processor for dashboards — the paper's primary contribution
//! (Sect. 3).
//!
//! * [`compile`] — single-query processing (Sect. 3.1): simplification,
//!   capability-aware compilation, externalization of large IN-lists into
//!   remote temporary tables, dialect text generation, and local
//!   post-processing for operations the backend cannot run;
//! * [`registry`] — managed data sources with connection pools;
//! * [`processor`] — the cached execution pipeline: intelligent cache →
//!   literal cache → remote execution → populate both (Sect. 3.2);
//! * [`fusion`] — query fusion (Sect. 3.4): queries over the same relation
//!   differing only in their projection lists collapse into one;
//! * [`batch`] — query batch processing (Sect. 3.3): the cache-hit
//!   opportunity graph, remote/local partitioning, and concurrent
//!   submission;
//! * [`dashboard`] — zones, interactive filter actions, and the multi-pass
//!   render loop of Fig. 2;
//! * [`revalidate`] — the background maintenance lane: stale cache entries
//!   past their staleness budget are re-fetched at `Background` priority
//!   once their source recovers (Sect. 3.5 workload management).

pub mod batch;
pub mod compile;
pub mod dashboard;
pub mod fusion;
pub mod prefetch;
pub mod processor;
pub mod registry;
pub mod revalidate;

pub use batch::{execute_batch, BatchOptions, BatchResult};
pub use compile::{compile_spec, CompileOptions, CompiledQuery};
pub use dashboard::{Dashboard, DashboardState, FilterAction, RenderReport, Zone};
pub use prefetch::{predict_states, prefetch, PrefetchReport};
pub use processor::{ExecOutcome, QueryProcessor};
pub use registry::{ManagedSource, SourceRegistry};
pub use revalidate::{revalidate_pass, MaintenanceLane, RevalidateOptions, RevalidateReport};

pub use tabviz_cache::QuerySpec;
pub use tabviz_sched::{AdmitRequest, Priority, SchedConfig, Scheduler, Ticket};
