//! Dashboards: zones, interactive filter actions, and the multi-pass render
//! loop.
//!
//! Sect. 3: "A dashboard is a collection of zones ... One defines the
//! behavior of individual zones first and then specifies dependencies
//! between them." Fig. 2 walks through the interaction semantics this module
//! reproduces: selecting a value in a source zone filters the target zones;
//! when fresh results invalidate a previous selection (the selected value no
//! longer appears), that selection is dropped and another render iteration
//! runs — "rendering of a dashboard might require several iterations to
//! complete" (Sect. 3.3).

use crate::batch::{execute_batch, BatchOptions, BatchReport};
use crate::processor::QueryProcessor;
use std::collections::{BTreeMap, HashMap};
use tabviz_cache::QuerySpec;
use tabviz_common::{Chunk, Result, Value};
use tabviz_tql::expr::Expr;
use tabviz_tql::{AggCall, LogicalPlan, SortKey};

/// One visualization zone.
#[derive(Debug, Clone)]
pub struct Zone {
    pub name: String,
    /// Dimensions shown (group-by columns). The first one is also the column
    /// interactive selections apply to.
    pub group_by: Vec<String>,
    /// Measures shown.
    pub aggs: Vec<AggCall>,
    pub order: Vec<SortKey>,
    pub topn: Option<usize>,
    /// Extra zone-local filters (e.g. the Fig. 2 Carrier zone's
    /// "more than 1,400 Flights/Day" is modeled as a plain filter).
    pub filters: Vec<Expr>,
}

impl Zone {
    pub fn new(name: impl Into<String>) -> Self {
        Zone {
            name: name.into(),
            group_by: vec![],
            aggs: vec![],
            order: vec![],
            topn: None,
            filters: vec![],
        }
    }

    pub fn group(mut self, col: impl Into<String>) -> Self {
        self.group_by.push(col.into());
        self
    }

    pub fn agg(mut self, call: AggCall) -> Self {
        self.aggs.push(call);
        self
    }

    pub fn filter(mut self, e: Expr) -> Self {
        self.filters.push(e);
        self
    }

    pub fn top(mut self, n: usize, keys: Vec<SortKey>) -> Self {
        self.topn = Some(n);
        self.order = keys;
        self
    }

    /// The column selections in this zone constrain.
    pub fn selection_column(&self) -> Option<&str> {
        self.group_by.first().map(String::as_str)
    }
}

/// "selecting a field in the Market zone will filter the results in the
/// Carrier and Airline Name zones" — a directed filter dependency.
#[derive(Debug, Clone)]
pub struct FilterAction {
    pub source_zone: String,
    pub target_zones: Vec<String>,
}

/// A dashboard definition.
#[derive(Debug, Clone)]
pub struct Dashboard {
    pub name: String,
    /// The data source all zones query.
    pub source: String,
    /// The shared FROM relation.
    pub relation: LogicalPlan,
    pub zones: Vec<Zone>,
    pub actions: Vec<FilterAction>,
    /// Dashboard-wide quick filters: column → selected values (empty map
    /// entry = all values selected = no constraint, matching Fig. 1's
    /// right-hand side).
    pub quick_filter_columns: Vec<String>,
}

/// Mutable interaction state.
#[derive(Debug, Clone, Default)]
pub struct DashboardState {
    /// zone name → selected value in that zone's selection column.
    pub selections: BTreeMap<String, Value>,
    /// quick filter column → currently selected values (None = all).
    pub quick_filters: BTreeMap<String, Option<Vec<Value>>>,
}

impl DashboardState {
    pub fn select(&mut self, zone: impl Into<String>, value: Value) {
        self.selections.insert(zone.into(), value);
    }

    pub fn clear_selection(&mut self, zone: &str) {
        self.selections.remove(zone);
    }

    pub fn set_quick_filter(&mut self, column: impl Into<String>, values: Vec<Value>) {
        self.quick_filters.insert(column.into(), Some(values));
    }
}

/// What a full render did.
#[derive(Debug, Clone, Default)]
pub struct RenderReport {
    /// Batch iterations needed (Fig. 2's cascade takes 2).
    pub iterations: usize,
    pub batches: Vec<BatchReport>,
    /// Selections dropped because their value disappeared.
    pub invalidated_selections: Vec<String>,
}

impl Dashboard {
    pub fn zone(&self, name: &str) -> Option<&Zone> {
        self.zones.iter().find(|z| z.name == name)
    }

    /// Filters incoming to `zone` from actions, given the current state.
    fn incoming_filters(&self, zone: &str, state: &DashboardState) -> Vec<Expr> {
        let mut out = Vec::new();
        for action in &self.actions {
            if !action.target_zones.iter().any(|t| t == zone) {
                continue;
            }
            let Some(selected) = state.selections.get(&action.source_zone) else {
                continue;
            };
            let Some(src_zone) = self.zone(&action.source_zone) else {
                continue;
            };
            let Some(col_name) = src_zone.selection_column() else {
                continue;
            };
            out.push(Expr::Binary {
                op: tabviz_tql::BinOp::Eq,
                left: Box::new(Expr::Column(col_name.to_string())),
                right: Box::new(Expr::Literal(selected.clone())),
            });
        }
        out
    }

    /// The query a zone needs under the current state.
    pub fn zone_query(&self, zone: &Zone, state: &DashboardState) -> QuerySpec {
        let mut spec = QuerySpec::new(self.source.clone(), self.relation.clone());
        for f in &zone.filters {
            spec = spec.filter(f.clone());
        }
        for f in self.incoming_filters(&zone.name, state) {
            spec = spec.filter(f);
        }
        for (col_name, values) in &state.quick_filters {
            if let Some(vs) = values {
                spec = spec.filter(Expr::In {
                    expr: Box::new(Expr::Column(col_name.clone())),
                    list: vs.clone(),
                    negated: false,
                });
            }
        }
        for g in &zone.group_by {
            spec = spec.group(g.clone());
        }
        for a in &zone.aggs {
            spec = spec.agg(a.clone());
        }
        if !zone.order.is_empty() {
            spec = spec.order_by(zone.order.clone());
        }
        if let Some(n) = zone.topn {
            spec = spec.top(n);
        }
        spec
    }

    /// Quick-filter domain queries ("the queries for the domains of filters
    /// on the right need to be sent only once", Sect. 3.2): one distinct-
    /// values query per quick-filter column, with no filters applied.
    pub fn domain_queries(&self) -> Vec<(String, QuerySpec)> {
        self.quick_filter_columns
            .iter()
            .map(|c| {
                (
                    format!("__domain_{c}"),
                    QuerySpec::new(self.source.clone(), self.relation.clone()).group(c.clone()),
                )
            })
            .collect()
    }

    /// The batch for one render pass.
    pub fn batch(&self, state: &DashboardState, include_domains: bool) -> Vec<(String, QuerySpec)> {
        let mut out = Vec::new();
        if include_domains {
            out.extend(self.domain_queries());
        }
        for z in &self.zones {
            out.push((z.name.clone(), self.zone_query(z, state)));
        }
        out
    }

    /// Render to a fixed point: run the batch, then drop selections whose
    /// value vanished from the refreshed source zone (Fig. 2's "one
    /// side-effect of these updated results is that the previous
    /// user-selection (AA) ... is eliminated") and re-render until stable.
    pub fn render(
        &self,
        processor: &QueryProcessor,
        state: &mut DashboardState,
        options: &BatchOptions,
        include_domains: bool,
    ) -> Result<(HashMap<String, Chunk>, RenderReport)> {
        let mut report = RenderReport::default();
        let mut results = HashMap::new();
        for _pass in 0..8 {
            report.iterations += 1;
            let batch = self.batch(state, include_domains && report.iterations == 1);
            let out = execute_batch(processor, &batch, options)?;
            report.batches.push(out.report.clone());
            results = out.results;

            // Validate selections against the refreshed source zones.
            let mut dropped = Vec::new();
            for (zone_name, selected) in state.selections.clone() {
                let Some(zone) = self.zone(&zone_name) else {
                    continue;
                };
                let Some(col_name) = zone.selection_column() else {
                    continue;
                };
                let Some(chunk) = results.get(&zone_name) else {
                    continue;
                };
                let Ok(col_idx) = chunk.schema().index_of(col_name) else {
                    continue;
                };
                let still_present =
                    (0..chunk.len()).any(|i| chunk.column(col_idx).get(i) == selected);
                if !still_present {
                    dropped.push(zone_name);
                }
            }
            if dropped.is_empty() {
                return Ok((results, report));
            }
            for z in dropped {
                state.clear_selection(&z);
                report.invalidated_selections.push(z);
            }
        }
        Ok((results, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_backend::{SimConfig, SimDb};
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_storage::{Database, Table};
    use tabviz_tql::AggFunc;

    /// Fig. 2's data shape: markets flown by different carrier sets. AA
    /// flies LAX-SFO but not HNL-OGG.
    fn market_db() -> Arc<Database> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("market", DataType::Str),
                Field::new("carrier", DataType::Str),
                Field::new("airline_name", DataType::Str),
            ])
            .unwrap(),
        );
        let mut rows = Vec::new();
        let data = [
            ("LAX-SFO", "AA", "American"),
            ("LAX-SFO", "WN", "Southwest"),
            ("LAX-SFO", "UA", "United"),
            ("HNL-OGG", "HA", "Hawaiian"),
            ("HNL-OGG", "WN", "Southwest"),
        ];
        for (m, c, n) in data {
            for _ in 0..10 {
                rows.push(vec![
                    Value::Str(m.into()),
                    Value::Str(c.into()),
                    Value::Str(n.into()),
                ]);
            }
        }
        let db = Arc::new(Database::new("remote"));
        db.put(
            Table::from_chunk("flights", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap(),
        )
        .unwrap();
        db
    }

    /// The Fig. 2 dashboard: Market → {Carrier, Airline Name},
    /// Carrier → {Airline Name}.
    fn fig2_dashboard() -> Dashboard {
        Dashboard {
            name: "fig2".into(),
            source: "warehouse".into(),
            relation: LogicalPlan::scan("flights"),
            zones: vec![
                Zone::new("Market").group("market").agg(AggCall::new(
                    AggFunc::Count,
                    None,
                    "flights",
                )),
                Zone::new("Carrier").group("carrier").agg(AggCall::new(
                    AggFunc::Count,
                    None,
                    "flights",
                )),
                Zone::new("AirlineName")
                    .group("airline_name")
                    .agg(AggCall::new(AggFunc::Count, None, "flights")),
            ],
            actions: vec![
                FilterAction {
                    source_zone: "Market".into(),
                    target_zones: vec!["Carrier".into(), "AirlineName".into()],
                },
                FilterAction {
                    source_zone: "Carrier".into(),
                    target_zones: vec!["AirlineName".into()],
                },
            ],
            quick_filter_columns: vec![],
        }
    }

    fn processor() -> QueryProcessor {
        let sim = SimDb::new("warehouse", market_db(), SimConfig::default());
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim), 4);
        qp
    }

    #[test]
    fn initial_render_single_iteration() {
        let qp = processor();
        let dash = fig2_dashboard();
        let mut state = DashboardState::default();
        let (results, report) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        assert_eq!(report.iterations, 1);
        assert_eq!(results["Market"].len(), 2);
        assert_eq!(results["Carrier"].len(), 4);
        assert_eq!(results["AirlineName"].len(), 4);
    }

    #[test]
    fn selection_filters_targets() {
        let qp = processor();
        let dash = fig2_dashboard();
        let mut state = DashboardState::default();
        state.select("Market", Value::Str("LAX-SFO".into()));
        state.select("Carrier", Value::Str("AA".into()));
        let (results, report) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        assert_eq!(report.iterations, 1);
        // Market zone is unfiltered; Carrier filtered to LAX-SFO carriers;
        // AirlineName filtered by both market and carrier.
        assert_eq!(results["Market"].len(), 2);
        assert_eq!(results["Carrier"].len(), 3);
        assert_eq!(results["AirlineName"].len(), 1);
        assert_eq!(
            results["AirlineName"].row(0)[0],
            Value::Str("American".into())
        );
    }

    #[test]
    fn fig2_cascade_invalidates_selection() {
        // "If the user selects HNL-OGG in Market ... the previous
        // user-selection (AA) in the Carrier zone is eliminated, as AA is
        // not a carrier for the HNL-OGG market. Subsequently ... a query
        // without a filter on Carrier [is] generated to update the Airline
        // Name zone."
        let qp = processor();
        let dash = fig2_dashboard();
        let mut state = DashboardState::default();
        state.select("Market", Value::Str("LAX-SFO".into()));
        state.select("Carrier", Value::Str("AA".into()));
        dash.render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();

        // Now the user clicks HNL-OGG.
        state.select("Market", Value::Str("HNL-OGG".into()));
        let (results, report) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        assert_eq!(report.iterations, 2, "cascade takes a second pass");
        assert_eq!(report.invalidated_selections, vec!["Carrier".to_string()]);
        assert!(!state.selections.contains_key("Carrier"));
        // Airline Name now shows both HNL-OGG airlines (no carrier filter).
        assert_eq!(results["AirlineName"].len(), 2);
    }

    #[test]
    fn quick_filter_domains_stay_unfiltered() {
        let qp = processor();
        let mut dash = fig2_dashboard();
        dash.quick_filter_columns = vec!["carrier".into()];
        let mut state = DashboardState::default();
        state.set_quick_filter(
            "carrier",
            vec![Value::Str("WN".into()), Value::Str("HA".into())],
        );
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), true)
            .unwrap();
        // Domain query sees all 4 carriers even though the view filters to 2.
        assert_eq!(results["__domain_carrier"].len(), 4);
        assert_eq!(results["Carrier"].len(), 2);
    }

    #[test]
    fn filter_interaction_is_cache_hit() {
        // Fig. 1 discussion: "data for other charts got cached with all the
        // filtering values selected. If a user deselects some of the values
        // ... the intelligent cache will be able to filter out the necessary
        // rows" — the second render must not touch the backend.
        let sim = SimDb::new("warehouse", market_db(), SimConfig::default());
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim.clone()), 4);
        let dash = fig2_dashboard();
        let mut state = DashboardState::default();
        dash.render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        let before = sim.stats().queries;

        // Select a market: every refreshed zone groups by columns already
        // cached... Carrier zone filtered by market needs market in the
        // cached grouping, which it is not — so Carrier goes remote, but the
        // unfiltered Market zone itself stays a pure cache hit.
        state.select("Market", Value::Str("LAX-SFO".into()));
        dash.render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        let after = sim.stats().queries;
        assert!(after > before, "filtered zones legitimately re-query");
        // Re-render with no change: zero backend traffic.
        dash.render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        assert_eq!(
            sim.stats().queries,
            after,
            "unchanged render is fully cached"
        );
    }
}
