//! Speculative prefetching — the paper's future-work item (Sect. 7):
//! "both data exploration and dashboard generation could become more
//! responsive if requested data has been accurately predicted and
//! prefetched. ... prediction approaches such as DICE are good examples in
//! this field."
//!
//! The predictor is DICE-like in spirit: from the current dashboard state it
//! enumerates the *neighboring interactions* — selecting each of the top
//! values in an interactive zone's freshly rendered result, or clearing an
//! existing selection — and warms the caches with the query batches those
//! states would need. Predictions execute through the normal processor, so
//! a correct prediction turns the user's next render into pure cache hits.

use crate::batch::{execute_batch, BatchOptions};
use crate::dashboard::{Dashboard, DashboardState};
use crate::processor::QueryProcessor;
use std::collections::HashMap;
use tabviz_common::{Chunk, Result, Value};
use tabviz_sched::Priority;

/// What a prefetch pass did.
#[derive(Debug, Clone, Default)]
pub struct PrefetchReport {
    /// Predicted next states that were warmed.
    pub predicted_states: usize,
    /// Queries issued while warming (cache misses among predictions).
    pub queries_warmed: usize,
}

/// Enumerate likely next states: for each interactive (action-source) zone,
/// select each of the first `per_zone` values of its current result; plus
/// clearing each active selection.
pub fn predict_states(
    dashboard: &Dashboard,
    state: &DashboardState,
    results: &HashMap<String, Chunk>,
    per_zone: usize,
) -> Vec<DashboardState> {
    let mut out = Vec::new();
    for action in &dashboard.actions {
        let zone_name = &action.source_zone;
        let Some(zone) = dashboard.zone(zone_name) else {
            continue;
        };
        let Some(col_name) = zone.selection_column() else {
            continue;
        };
        let Some(chunk) = results.get(zone_name) else {
            continue;
        };
        let Ok(col_idx) = chunk.schema().index_of(col_name) else {
            continue;
        };
        for row in 0..chunk.len().min(per_zone) {
            let candidate = chunk.column(col_idx).get(row);
            if candidate.is_null() {
                continue;
            }
            if state.selections.get(zone_name) == Some(&candidate) {
                continue; // already selected
            }
            let mut next = state.clone();
            next.select(zone_name.clone(), candidate);
            out.push(next);
        }
        if state.selections.contains_key(zone_name) {
            let mut cleared = state.clone();
            cleared.clear_selection(zone_name);
            out.push(cleared);
        }
    }
    out
}

/// Warm the processor's caches for the predicted states. Returns what was
/// prefetched; errors on individual predictions are swallowed (a failed
/// speculation must never break the real session).
pub fn prefetch(
    processor: &QueryProcessor,
    dashboard: &Dashboard,
    state: &DashboardState,
    results: &HashMap<String, Chunk>,
    per_zone: usize,
    max_states: usize,
) -> Result<PrefetchReport> {
    let mut report = PrefetchReport::default();
    let states = predict_states(dashboard, state, results, per_zone);
    for next in states.into_iter().take(max_states) {
        // One span per warmed state, attributed as speculative so flight
        // recorder traces distinguish prefetch work from user queries.
        let mut pspan = tabviz_obs::span(tabviz_obs::stage::PREFETCH);
        pspan.reason(tabviz_obs::reason::PREFETCH_SPECULATIVE);
        let batch = dashboard.batch(&next, false);
        let before = processor.stats().remote_queries;
        // Speculative work rides the lowest class: under load it queues
        // behind everything else and is the first to be shed.
        let opts = BatchOptions {
            priority: Priority::Background,
            ..Default::default()
        };
        if execute_batch(processor, &batch, &opts).is_ok() {
            report.predicted_states += 1;
            let warmed = (processor.stats().remote_queries - before) as usize;
            report.queries_warmed += warmed;
            pspan.detail(warmed as u64);
        }
    }
    Ok(report)
}

/// Values shown by a zone in the current results (helper for traffic
/// generators that need selection candidates).
pub fn zone_values(results: &HashMap<String, Chunk>, zone: &str, column: usize) -> Vec<Value> {
    results
        .get(zone)
        .map(|c| (0..c.len()).map(|i| c.column(column).get(i)).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dashboard::{FilterAction, Zone};
    use std::sync::Arc;
    use tabviz_backend::{SimConfig, SimDb};
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_storage::{Database, Table};

    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn setup() -> (QueryProcessor, SimDb, Dashboard) {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("market", DataType::Str),
                Field::new("carrier", DataType::Str),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| {
                vec![
                    Value::Str(format!("M{}", i % 5)),
                    Value::Str(["AA", "DL", "WN"][i % 3].into()),
                ]
            })
            .collect();
        let db = Arc::new(Database::new("d"));
        db.put(
            Table::from_chunk("flights", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap(),
        )
        .unwrap();
        let sim = SimDb::new("warehouse", db, SimConfig::default());
        let qp = QueryProcessor::default();
        qp.registry.register(Arc::new(sim.clone()), 8);
        let dash = Dashboard {
            name: "d".into(),
            source: "warehouse".into(),
            relation: LogicalPlan::scan("flights"),
            zones: vec![
                Zone::new("Market")
                    .group("market")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
                Zone::new("Carrier")
                    .group("carrier")
                    .agg(AggCall::new(AggFunc::Count, None, "n")),
            ],
            actions: vec![FilterAction {
                source_zone: "Market".into(),
                target_zones: vec!["Carrier".into()],
            }],
            quick_filter_columns: vec![],
        };
        (qp, sim, dash)
    }

    #[test]
    fn predicts_neighboring_selections() {
        let (qp, _, dash) = setup();
        let mut state = DashboardState::default();
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        let states = predict_states(&dash, &state, &results, 3);
        // Three candidate market selections, no clear (nothing selected).
        assert_eq!(states.len(), 3);
        assert!(states.iter().all(|s| s.selections.contains_key("Market")));

        // With a selection active, clearing it is also predicted and the
        // current selection is not re-proposed.
        state.select("Market", Value::Str("M0".into()));
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        let states = predict_states(&dash, &state, &results, 3);
        assert!(states.iter().any(|s| !s.selections.contains_key("Market")));
        assert!(!states
            .iter()
            .any(|s| s.selections.get("Market") == Some(&Value::Str("M0".into()))));
    }

    #[test]
    fn prefetch_turns_next_interaction_into_cache_hits() {
        let (qp, sim, dash) = setup();
        let mut state = DashboardState::default();
        let (results, _) = dash
            .render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        let report = prefetch(&qp, &dash, &state, &results, 5, 8).unwrap();
        assert!(report.predicted_states >= 5);
        let warmed = sim.stats().queries;

        // The user now actually clicks a market: zero new backend queries.
        state.select("Market", Value::Str("M2".into()));
        dash.render(&qp, &mut state, &BatchOptions::default(), false)
            .unwrap();
        assert_eq!(
            sim.stats().queries,
            warmed,
            "predicted interaction must be served from cache"
        );
    }

    #[test]
    fn failed_speculation_is_not_fatal() {
        let (qp, _, dash) = setup();
        // Empty results: nothing to predict, no error.
        let report = prefetch(
            &qp,
            &dash,
            &DashboardState::default(),
            &HashMap::new(),
            3,
            8,
        )
        .unwrap();
        assert_eq!(report.predicted_states, 0);
    }
}
