//! Single-query compilation (Sect. 3.1).
//!
//! "Before a query can be sent to a relevant backend, it undergoes a
//! compilation process consisting of structural simplification and
//! implementation. ... Numerous optimizations are applied to the tree,
//! including join culling, predicate simplification and externalization of
//! large enumerations with temporary secondary structures. The query
//! compiler incorporates information about ... overall capabilities of the
//! data source. ... As a result, some operations may need to be locally
//! applied in the post-processing stage."

use tabviz_backend::{sql::to_sql, Capabilities, RemoteQuery};
use tabviz_cache::QuerySpec;
use tabviz_common::{Chunk, Field, Result, Schema, Value};
use tabviz_tde::compile::simplify_expr;
use tabviz_tql::expr::Expr;
use tabviz_tql::{JoinType, LogicalPlan, SortKey};

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Compiler knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// IN-lists at or above this many constants are externalized into a
    /// remote temp table when the backend supports it.
    pub externalize_threshold: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            externalize_threshold: 32,
        }
    }
}

/// Post-processing the client must run on the returned rows because the
/// backend could not ("some operations may need to be locally applied").
#[derive(Debug, Clone, Default)]
pub struct LocalPost {
    pub topn: Option<(usize, Vec<SortKey>)>,
}

/// A query ready for a backend.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub remote: RemoteQuery,
    /// Temp tables the session must hold before `remote` can run:
    /// `(name, single-column rows)`.
    pub temp_tables: Vec<(String, Chunk)>,
    pub local_post: LocalPost,
}

/// Compile a spec for a backend with the given capabilities.
pub fn compile_spec(
    spec: &QuerySpec,
    caps: &Capabilities,
    options: &CompileOptions,
) -> Result<CompiledQuery> {
    let mut spec = spec.clone();
    spec.normalize();
    // Predicate simplification (constant folding, IN dedup, etc.).
    spec.filters = spec
        .filters
        .into_iter()
        .map(simplify_expr)
        .filter(|f| *f != Expr::Literal(Value::Bool(true)))
        .collect();

    // Externalize large enumerations into temporary tables (Sect. 3.1's
    // "externalization of large enumerations with temporary secondary
    // structures"; also the Data Server mechanism of Sect. 5.3).
    let mut temp_tables = Vec::new();
    if caps.supports_temp_tables {
        let mut kept = Vec::with_capacity(spec.filters.len());
        for f in std::mem::take(&mut spec.filters) {
            match &f {
                Expr::In {
                    expr,
                    list,
                    negated: false,
                } if list.len() >= options.externalize_threshold => {
                    if let Expr::Column(col_name) = expr.as_ref() {
                        let name = temp_table_name(col_name, list);
                        let chunk = values_chunk(list)?;
                        // Rewrite: semi-join against the distinct-value temp
                        // table replaces the long IN-list.
                        spec.relation = spec.relation.clone().join(
                            LogicalPlan::TableScan {
                                table: name.clone(),
                                projection: None,
                            },
                            vec![(col_name.clone(), "v".into())],
                            JoinType::Inner,
                        );
                        temp_tables.push((name, chunk));
                        continue;
                    }
                    kept.push(f);
                }
                _ => kept.push(f),
            }
        }
        spec.filters = kept;
    }

    let mut plan = spec.to_plan()?;
    // TopN not supported remotely → strip it and post-process locally.
    let mut local_post = LocalPost::default();
    if !caps.supports_topn {
        if let LogicalPlan::TopN { input, keys, n } = plan {
            local_post.topn = Some((n, keys.clone()));
            plan = LogicalPlan::Order { input, keys };
        }
    }

    let text = to_sql(&plan, caps.dialect);
    Ok(CompiledQuery {
        remote: RemoteQuery::new(text, plan),
        temp_tables,
        local_post,
    })
}

/// Deterministic temp-table name from the filtered column and value set, so
/// identical filters map to the same session structure and get reused
/// ("temporary tables created for large filters ... are likely to be useful
/// while formulating queries within the same query batch", Sect. 3.5).
pub fn temp_table_name(column: &str, values: &[Value]) -> String {
    let mut h = DefaultHasher::new();
    column.hash(&mut h);
    let mut sorted: Vec<&Value> = values.iter().collect();
    sorted.sort();
    sorted.dedup();
    for v in sorted {
        v.hash(&mut h);
    }
    format!("tt_{:016x}", h.finish())
}

/// Single-column chunk (`v`) holding the distinct values of an IN-list.
fn values_chunk(values: &[Value]) -> Result<Chunk> {
    let mut sorted: Vec<Value> = values.to_vec();
    sorted.sort();
    sorted.dedup();
    let dtype = sorted
        .iter()
        .find_map(|v| v.data_type())
        .unwrap_or(tabviz_common::DataType::Str);
    let schema = Arc::new(Schema::new_unchecked(vec![Field::new("v", dtype)]));
    let rows: Vec<Vec<Value>> = sorted.into_iter().map(|v| vec![v]).collect();
    Chunk::from_rows(schema, &rows)
}

/// Apply any local post-processing the compilation deferred.
pub fn apply_local_post(chunk: Chunk, post: &LocalPost) -> Chunk {
    match &post.topn {
        None => chunk,
        Some((n, keys)) => {
            let schema = chunk.schema();
            let idx: Vec<(usize, bool)> = keys
                .iter()
                .filter_map(|k| schema.index_of(&k.column).ok().map(|i| (i, k.asc)))
                .collect();
            let sorted = chunk.sort_by(&idx);
            let keep = (*n).min(sorted.len());
            sorted.slice(0, keep)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_backend::Dialect;
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggCall, AggFunc};

    fn base_spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(10i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    #[test]
    fn small_in_lists_stay_inline() {
        let spec = base_spec().filter(Expr::In {
            expr: Box::new(col("carrier")),
            list: vec!["AA".into(), "DL".into()],
            negated: false,
        });
        let out =
            compile_spec(&spec, &Capabilities::default(), &CompileOptions::default()).unwrap();
        assert!(out.temp_tables.is_empty());
        assert!(
            out.remote.text.contains("IN ('AA', 'DL')"),
            "{}",
            out.remote.text
        );
    }

    #[test]
    fn large_in_lists_externalize() {
        let values: Vec<Value> = (0..100).map(|i| Value::Str(format!("M{i}"))).collect();
        let spec = base_spec().filter(Expr::In {
            expr: Box::new(col("market")),
            list: values.clone(),
            negated: false,
        });
        let out =
            compile_spec(&spec, &Capabilities::default(), &CompileOptions::default()).unwrap();
        assert_eq!(out.temp_tables.len(), 1);
        assert_eq!(out.temp_tables[0].1.len(), 100);
        assert!(out.remote.text.contains("JOIN"), "{}", out.remote.text);
        assert!(!out.remote.text.contains("M37"), "values must not inline");
        // The externalized text is drastically shorter.
        let inline = compile_spec(
            &spec,
            &Capabilities {
                supports_temp_tables: false,
                ..Default::default()
            },
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(out.remote.upload_bytes() < inline.remote.upload_bytes() / 2);
    }

    #[test]
    fn temp_names_are_deterministic_and_order_insensitive() {
        let a = temp_table_name("m", &["x".into(), "y".into()]);
        let b = temp_table_name("m", &["y".into(), "x".into(), "x".into()]);
        assert_eq!(a, b);
        assert_ne!(a, temp_table_name("other", &["x".into(), "y".into()]));
    }

    #[test]
    fn topn_falls_back_to_local_post() {
        let spec = base_spec().order_by(vec![SortKey::desc("n")]).top(3);
        let caps = Capabilities {
            supports_topn: false,
            ..Default::default()
        };
        let out = compile_spec(&spec, &caps, &CompileOptions::default()).unwrap();
        assert!(out.local_post.topn.is_some());
        assert!(!out.remote.text.contains("LIMIT"), "{}", out.remote.text);

        // Post-processing applies the truncation.
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", tabviz_common::DataType::Str),
                Field::new("n", tabviz_common::DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Str(format!("C{i}")), Value::Int(i)])
            .collect();
        let chunk = Chunk::from_rows(schema, &rows).unwrap();
        let cut = apply_local_post(chunk, &out.local_post);
        assert_eq!(cut.len(), 3);
        assert_eq!(cut.row(0)[1], Value::Int(9));
    }

    #[test]
    fn predicate_simplification_applies() {
        let spec = base_spec().filter(bin(
            BinOp::Or,
            bin(BinOp::Eq, col("carrier"), lit("AA")),
            lit(true),
        ));
        let out =
            compile_spec(&spec, &Capabilities::default(), &CompileOptions::default()).unwrap();
        // The tautology vanished; only the delay filter remains.
        assert_eq!(out.remote.text.matches("WHERE").count(), 1);
        assert!(!out.remote.text.contains("TRUE OR"));
    }

    #[test]
    fn dialects_differ() {
        let spec = base_spec().order_by(vec![SortKey::desc("n")]).top(3);
        let ansi =
            compile_spec(&spec, &Capabilities::default(), &CompileOptions::default()).unwrap();
        let legacy = compile_spec(
            &spec,
            &Capabilities {
                dialect: Dialect::LegacySql,
                ..Default::default()
            },
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(ansi.remote.text.contains("LIMIT 3"));
        assert!(legacy.remote.text.contains("SELECT TOP 3"));
    }

    #[test]
    fn identical_specs_compile_to_identical_text() {
        let a = compile_spec(
            &base_spec(),
            &Capabilities::default(),
            &CompileOptions::default(),
        )
        .unwrap();
        let b = compile_spec(
            &base_spec(),
            &Capabilities::default(),
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(a.remote.text, b.remote.text);
    }
}
