//! Simulated multi-node Tableau Server deployment.
//!
//! Sect. 3.2 of the paper describes Tableau Server as a cluster of worker
//! processes sharing a distributed cache layer "based on REDIS or Cassandra"
//! so "data [stays] warm regardless of which node handles particular
//! requests". This crate models that deployment shape on top of the
//! single-node stack:
//!
//! - [`HashRing`]: consistent-hash placement with virtual nodes — published
//!   sources and cached results map to `R` replica owners; membership
//!   changes re-map only ~`K/N` keys.
//! - [`PeerTier`]: the distributed cache promoted to a real peer tier — one
//!   [`tabviz_cache::ExternalStore`] shard per node, replicated writes,
//!   owner-order reads with replica failover, administrative key migration
//!   on join/leave.
//! - [`Cluster`] / [`ClusterSession`]: N named [`tabviz_dataserver::DataServer`]
//!   nodes behind a router with session affinity, node kill/revive, graceful
//!   join/leave, cluster-level metrics (`tv_cluster_*`) and a flight
//!   recorder attributing every routing and peer-cache decision.
//!
//! Everything is deterministic per seed: ring placement, session rotation
//! and routing are pure functions of `(seed, membership, session)`, so a
//! fixed seed replays byte-identically — the cluster test harness asserts
//! this by comparing routing tables and per-query node assignments across
//! runs.
//!
//! PR 7 adds the **SLO plane** on top: per-node health scorers
//! ([`tabviz_obs::HealthScorer`]) feed a health-aware router that demotes
//! browned-out nodes before they die, a cluster [`tabviz_obs::SloTracker`]
//! fires multi-window burn-rate alerts, and [`Cluster::metrics_text`] /
//! [`Cluster::diagnostics_report`] federate every node's registry into one
//! cluster-scope exposition ([`tabviz_obs::Federation`]).

pub mod cluster;
pub mod peer;
pub mod ring;

pub use cluster::{
    Cluster, ClusterConfig, ClusterNode, ClusterResponse, ClusterSession, Route, RouteKind,
};
pub use peer::{PeerHit, PeerTier, PeerTierStats, RebalanceReport};
pub use ring::HashRing;
