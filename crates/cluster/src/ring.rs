//! Consistent-hash ring with virtual nodes.
//!
//! Placement is a pure function of `(seed, member names)` via the shared
//! [`tabviz_common::hash`] primitives: two rings built from the same seed
//! and membership are identical point-for-point, so routing tables replay
//! byte-stable across runs — the property every cluster determinism test
//! leans on. Virtual nodes smooth the per-node share (with `V` vnodes each,
//! imbalance shrinks roughly as `1/√V`), and node join/leave re-maps only
//! the keys whose nearest point changed: ~`K/N` of them, never a global
//! reshuffle.

use std::fmt::Write as _;
use tabviz_common::hash::hash_str;

/// One ring: sorted virtual-node points over the member set.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes_per_node: usize,
    /// `(point hash, member name)` sorted by hash; ties (astronomically
    /// unlikely) break by name so ordering stays total and deterministic.
    points: Vec<(u64, String)>,
    /// Sorted unique member names.
    members: Vec<String>,
}

impl HashRing {
    pub fn new(seed: u64, vnodes_per_node: usize) -> Self {
        HashRing {
            seed,
            vnodes_per_node: vnodes_per_node.max(1),
            points: Vec::new(),
            members: Vec::new(),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn members(&self) -> &[String] {
        &self.members
    }

    pub fn contains(&self, name: &str) -> bool {
        self.members.iter().any(|m| m == name)
    }

    /// Add a member: inserts its virtual-node points. No-op if present.
    pub fn add_node(&mut self, name: &str) {
        if self.contains(name) {
            return;
        }
        for v in 0..self.vnodes_per_node {
            let h = hash_str(self.seed, &format!("{name}#{v}"));
            self.points.push((h, name.to_string()));
        }
        self.points.sort();
        match self.members.binary_search_by(|m| m.as_str().cmp(name)) {
            Err(at) => self.members.insert(at, name.to_string()),
            Ok(_) => unreachable!("checked absent above"),
        }
    }

    /// Remove a member and its points. No-op if absent.
    pub fn remove_node(&mut self, name: &str) {
        self.points.retain(|(_, m)| m != name);
        self.members.retain(|m| m != name);
    }

    /// The member owning `key`: the first point clockwise of the key hash.
    pub fn primary(&self, key: &str) -> Option<&str> {
        self.walk(key).next()
    }

    /// The first `r` *distinct* members clockwise of the key hash — the
    /// key's replica owners, primary first. Fewer when the ring is smaller
    /// than `r`.
    pub fn replicas(&self, key: &str, r: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(r);
        for m in self.walk(key) {
            if !out.contains(&m) {
                out.push(m);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// Members in clockwise point order starting at the key's hash,
    /// wrapping around; each point yields its member (duplicates included —
    /// callers dedupe as needed).
    fn walk<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a str> {
        let h = hash_str(self.seed, key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        (0..n).map(move |i| self.points[(start + i) % n].1.as_str())
    }

    /// Byte-stable rendering of the full ring: every point in order. Two
    /// runs with identical seed and membership produce identical digests —
    /// the determinism tests compare these strings verbatim.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ring seed={} vnodes={} members={}",
            self.seed,
            self.vnodes_per_node,
            self.members.join(",")
        );
        for (h, m) in &self.points {
            let _ = writeln!(out, "{h:016x} {m}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(seed: u64, n: usize) -> HashRing {
        let mut r = HashRing::new(seed, 64);
        for i in 0..n {
            r.add_node(&format!("node-{i}"));
        }
        r
    }

    #[test]
    fn same_seed_same_ring() {
        assert_eq!(ring(7, 5).digest(), ring(7, 5).digest());
        assert_ne!(ring(7, 5).digest(), ring(8, 5).digest());
    }

    #[test]
    fn replicas_are_distinct_and_led_by_primary() {
        let r = ring(3, 6);
        for k in 0..200 {
            let key = format!("dash-{k}");
            let reps = r.replicas(&key, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], r.primary(&key).unwrap());
            let mut uniq = reps.clone();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn join_moves_roughly_one_nth_of_keys() {
        let keys: Vec<String> = (0..2_000).map(|k| format!("k{k}")).collect();
        let before = ring(11, 4);
        let mut after = before.clone();
        after.add_node("node-4");
        let moved = keys
            .iter()
            .filter(|k| before.primary(k) != after.primary(k))
            .count();
        // Expectation K/5; allow 2x + slack for vnode variance.
        assert!(
            moved <= 2 * keys.len() / 5 + 50,
            "join re-mapped too much: {moved}/{}",
            keys.len()
        );
        // Everything that moved landed on the new node.
        for k in &keys {
            if before.primary(k) != after.primary(k) {
                assert_eq!(after.primary(k), Some("node-4"));
            }
        }
    }

    #[test]
    fn vnodes_balance_the_share() {
        let r = ring(5, 4);
        let mut counts = std::collections::HashMap::new();
        for k in 0..4_000 {
            *counts
                .entry(r.primary(&format!("k{k}")).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(
            *max < 2 * *min + 200,
            "vnode balance off: min={min} max={max}"
        );
    }
}
