//! The replicated peer cache tier.
//!
//! Each cluster node hosts one [`ExternalStore`] as its *shard* of the
//! shared result cache. The tier owns placement: a result is written to the
//! `R` ring owners of its key and read back in owner order, so any owner
//! that is still up can serve it. Node join/leave triggers an administrative
//! rebalance that migrates only the keys whose owner set changed — the
//! Redis-Cluster slot-migration shape, not a flush.

use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Arc;
use tabviz_cache::ExternalStore;

use crate::ring::HashRing;

/// Where a peer-tier read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHit {
    /// The key's primary owner answered.
    Primary,
    /// A replica answered (owner-order index ≥ 1); the primary was down,
    /// faulted, or had dropped the put.
    Replica(usize),
}

/// Counters for tier-level behavior (per-shard stats live on each
/// [`ExternalStore`]).
#[derive(Debug, Clone, Default)]
pub struct PeerTierStats {
    pub gets: u64,
    pub primary_hits: u64,
    pub replica_hits: u64,
    pub misses: u64,
    pub puts: u64,
    /// Individual replicated writes issued (≤ `puts * R`).
    pub put_fanout: u64,
}

/// Outcome of a key-migration pass after ring membership changed.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    /// Distinct keys present in the tier before the pass.
    pub keys_total: usize,
    /// Keys that gained or lost at least one owner shard.
    pub keys_moved: usize,
    /// Keys whose *primary* owner changed — the consistent-hashing bound
    /// (≈ K/N on a single join/leave) is stated over these.
    pub primary_moved: usize,
}

pub struct PeerTier {
    replication: usize,
    shards: HashMap<String, Arc<ExternalStore>>,
    stats: parking_lot::Mutex<PeerTierStats>,
}

impl PeerTier {
    pub fn new(replication: usize) -> Self {
        PeerTier {
            replication: replication.max(1),
            shards: HashMap::new(),
            stats: parking_lot::Mutex::new(PeerTierStats::default()),
        }
    }

    pub fn replication(&self) -> usize {
        self.replication
    }

    pub fn add_shard(&mut self, name: &str, store: Arc<ExternalStore>) {
        self.shards.insert(name.to_string(), store);
    }

    pub fn remove_shard(&mut self, name: &str) -> Option<Arc<ExternalStore>> {
        self.shards.remove(name)
    }

    pub fn shard(&self, name: &str) -> Option<&Arc<ExternalStore>> {
        self.shards.get(name)
    }

    /// Replicated write: the value goes to every ring owner of the key.
    /// Downed/faulted owners drop their copy silently (their shard counts a
    /// dropped put) — exactly why reads probe the whole owner set.
    pub fn put(&self, ring: &HashRing, key: &str, value: Bytes) {
        self.put_tagged(ring, key, value, &[]);
    }

    /// [`PeerTier::put`] carrying dependency tags; every owner shard
    /// registers them so a later [`PeerTier::purge_tag`] finds the copies.
    pub fn put_tagged(&self, ring: &HashRing, key: &str, value: Bytes, tags: &[String]) {
        let owners = ring.replicas(key, self.replication);
        let mut st = self.stats.lock();
        st.puts += 1;
        st.put_fanout += owners.len() as u64;
        drop(st);
        for owner in owners {
            if let Some(shard) = self.shards.get(owner) {
                shard.put_tagged(key.to_string(), value.clone(), tags);
            }
        }
    }

    /// Administrative tier-wide purge of every entry carrying `tag`.
    /// Returns entries removed summed over shards (a key replicated to `R`
    /// owners counts `R` times).
    pub fn purge_tag(&self, tag: &str) -> usize {
        self.shards.values().map(|s| s.purge_tag(tag)).sum()
    }

    /// Entries held across all shards (replicas count once per shard).
    pub fn entry_count(&self) -> usize {
        self.shards.values().map(|s| s.len()).sum()
    }

    /// Owner-order read: primary first, then replicas. The first shard that
    /// answers wins; the hit kind records whether failover happened.
    pub fn get(&self, ring: &HashRing, key: &str) -> Option<(Bytes, PeerHit)> {
        let owners = ring.replicas(key, self.replication);
        self.stats.lock().gets += 1;
        for (i, owner) in owners.iter().enumerate() {
            let Some(shard) = self.shards.get(*owner) else {
                continue;
            };
            if let Some(bytes) = shard.get(key) {
                let hit = if i == 0 {
                    self.stats.lock().primary_hits += 1;
                    PeerHit::Primary
                } else {
                    self.stats.lock().replica_hits += 1;
                    PeerHit::Replica(i)
                };
                return Some((bytes, hit));
            }
        }
        self.stats.lock().misses += 1;
        None
    }

    /// Migrate keys to their owners under `ring` after a membership change.
    ///
    /// Administrative path: walks every shard's key set directly
    /// (no RTT, no fault rolls, no hit/miss accounting), copies each key to
    /// any owner that lacks it, and drops it from shards that no longer own
    /// it. `old_primary` is evaluated against `old_ring` to report how many
    /// primaries actually changed — the K/N property under test.
    pub fn rebalance(&self, old_ring: &HashRing, ring: &HashRing) -> RebalanceReport {
        // Collect the union of keys with one surviving source copy each
        // (value + dependency tags, so migration preserves purgeability).
        let mut values: HashMap<String, (Bytes, Vec<String>)> = HashMap::new();
        for shard in self.shards.values() {
            for key in shard.keys() {
                if let std::collections::hash_map::Entry::Vacant(e) = values.entry(key) {
                    if let Some(v) = shard.peek(e.key()) {
                        let tags = shard.peek_tags(e.key());
                        e.insert((v, tags));
                    }
                }
            }
        }

        let mut report = RebalanceReport {
            keys_total: values.len(),
            ..Default::default()
        };

        // Deterministic iteration order for the report (map order is not).
        let mut keys: Vec<&String> = values.keys().collect();
        keys.sort();
        for key in keys {
            let owners = ring.replicas(key, self.replication);
            let mut changed = false;
            for (name, shard) in &self.shards {
                let owns = owners.contains(&name.as_str());
                let has = shard.peek(key).is_some();
                if owns && !has {
                    let (value, tags) = &values[key];
                    shard.insert_raw_tagged(key.clone(), value.clone(), tags.clone());
                    changed = true;
                } else if !owns && has {
                    shard.remove(key);
                    changed = true;
                }
            }
            if changed {
                report.keys_moved += 1;
            }
            if old_ring.primary(key) != ring.primary(key) {
                report.primary_moved += 1;
            }
        }
        report
    }

    pub fn stats(&self) -> PeerTierStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tier(n: usize, r: usize) -> (PeerTier, HashRing) {
        let mut ring = HashRing::new(42, 64);
        let mut tier = PeerTier::new(r);
        for i in 0..n {
            let name = format!("node-{i}");
            ring.add_node(&name);
            tier.add_shard(&name, Arc::new(ExternalStore::new(Duration::ZERO)));
        }
        (tier, ring)
    }

    #[test]
    fn put_replicates_to_r_owners() {
        let (tier, ring) = tier(5, 3);
        tier.put(&ring, "k1", Bytes::from_static(b"v"));
        let holders = ring
            .members()
            .iter()
            .filter(|m| tier.shard(m).unwrap().peek("k1").is_some())
            .count();
        assert_eq!(holders, 3);
        assert_eq!(tier.stats().put_fanout, 3);
    }

    #[test]
    fn downed_primary_fails_over_to_replica() {
        let (tier, ring) = tier(5, 3);
        tier.put(&ring, "k1", Bytes::from_static(b"v"));
        let primary = ring.primary("k1").unwrap().to_string();
        tier.shard(&primary).unwrap().set_down(true);
        let (bytes, hit) = tier.get(&ring, "k1").expect("replica should answer");
        assert_eq!(&bytes[..], b"v");
        assert!(matches!(hit, PeerHit::Replica(_)));
        // Revive: primary answers again, with its data intact.
        tier.shard(&primary).unwrap().set_down(false);
        let (_, hit) = tier.get(&ring, "k1").unwrap();
        assert_eq!(hit, PeerHit::Primary);
    }

    #[test]
    fn rebalance_moves_bounded_fraction() {
        let (mut tier, ring) = tier(4, 2);
        for k in 0..400 {
            tier.put(&ring, &format!("k{k}"), Bytes::from_static(b"v"));
        }
        let old_ring = ring.clone();
        let mut new_ring = ring.clone();
        new_ring.add_node("node-4");
        tier.add_shard("node-4", Arc::new(ExternalStore::new(Duration::ZERO)));
        let report = tier.rebalance(&old_ring, &new_ring);
        assert_eq!(report.keys_total, 400);
        // Expected primary churn K/5 = 80; generous 2x + slack bound.
        assert!(
            report.primary_moved <= 170,
            "primary churn too high: {}",
            report.primary_moved
        );
        // Every key is now fully replicated under the new ring.
        for k in 0..400 {
            let key = format!("k{k}");
            for owner in new_ring.replicas(&key, 2) {
                assert!(tier.shard(owner).unwrap().peek(&key).is_some());
            }
            let holders = new_ring
                .members()
                .iter()
                .filter(|m| tier.shard(m).unwrap().peek(&key).is_some())
                .count();
            assert_eq!(holders, 2, "exactly R owners hold {key}");
        }
    }
}
