//! The N-node simulated cluster.
//!
//! One [`Cluster`] owns a set of named [`DataServer`] nodes, a consistent-hash
//! [`HashRing`] placing published sources (and cached results) on them, and a
//! replicated [`PeerTier`] built from one [`ExternalStore`] shard per node.
//! Client work enters through [`ClusterSession`]s, which add the two layers a
//! standalone server does not have:
//!
//! - **Routing with session affinity.** A published source is owned by its
//!   `R` ring replicas; a session deterministically rotates that owner list
//!   by its own hash, so different sessions spread across the replicas while
//!   any one session keeps hitting the same node (warm node-local caches).
//!   When the affinity node is marked down, the session fails over to the
//!   next healthy owner — and if every owner is down, to any healthy member.
//! - **A shared result tier.** Query results are replicated to the `R` ring
//!   owners of their *(published, user, query)* key; a routed query probes
//!   the tier before executing so any node's prior work is reused
//!   cluster-wide, even while the node that computed it is dead.
//!
//! Every routing and peer decision is attributed: the cluster opens its own
//! trace per query (the node's internal trace nests under it via
//! `parent_trace`), emits [`stage::CLUSTER_ROUTE`] / [`stage::PEER_CACHE`]
//! events with [`reason`] codes, and records the finished trace in a
//! cluster-level [`FlightRecorder`]. All placement and routing is a pure
//! function of the cluster seed, so a fixed seed replays byte-identically.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tabviz_cache::{decode_chunk, encode_chunk, ExternalStore};
use tabviz_common::hash::hash_str;
use tabviz_common::{Chunk, Result, TvError};
use tabviz_core::{ExecOutcome, Priority};
use tabviz_dataserver::{ClientQuery, ClientSession, DataServer};
use tabviz_obs::{
    begin_trace, event_with, reason, stage, FlightRecorder, ProfileOutcome, RecordedTrace, Registry,
};

use crate::peer::{PeerHit, PeerTier, PeerTierStats, RebalanceReport};
use crate::ring::HashRing;

/// Cluster-wide tunables. Everything that influences placement or routing
/// is derived from `seed`, so two clusters built with equal configs and
/// equal node sets behave identically.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Nodes created at build time, named `node-0` … `node-{n-1}`.
    pub nodes: usize,
    /// Replica owners per key (published sources and peer-tier entries).
    pub replication: usize,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Master seed for ring placement, session rotation and fault rolls.
    pub seed: u64,
    /// Simulated round-trip per peer-tier shard operation.
    pub peer_op_latency: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            vnodes: 64,
            seed: 0,
            peer_op_latency: Duration::ZERO,
        }
    }
}

/// One member: a named [`DataServer`] plus its peer-tier shard and
/// liveness flag.
pub struct ClusterNode {
    pub name: String,
    pub server: Arc<DataServer>,
    shard: Arc<ExternalStore>,
    up: AtomicBool,
    queries: AtomicU64,
}

impl ClusterNode {
    pub fn is_up(&self) -> bool {
        self.up.load(Relaxed)
    }

    /// Queries this node executed (routed to it and past the peer tier).
    pub fn query_count(&self) -> u64 {
        self.queries.load(Relaxed)
    }

    /// This node's peer-tier shard.
    pub fn shard(&self) -> &Arc<ExternalStore> {
        &self.shard
    }
}

/// How a query reached its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The session's affinity owner answered.
    Primary,
    /// The affinity owner was down; a healthy replica owner took it.
    Failover,
    /// Every replica owner was down; any healthy member took it.
    AllReplicasDown,
}

/// One routing decision — a pure function of `(ring, up-set, session)`.
#[derive(Debug, Clone)]
pub struct Route {
    pub node: String,
    pub kind: RouteKind,
    /// Index into `candidates` that was chosen (0 = affinity owner).
    pub owner_rank: usize,
    /// The session's rotated owner list for the published source.
    pub candidates: Vec<String>,
}

/// One answered cluster query.
pub struct ClusterResponse {
    pub chunk: Chunk,
    pub outcome: ExecOutcome,
    /// Node that served (or would have served) the query.
    pub node: String,
    pub route: RouteKind,
    /// `Some` when the replicated peer tier answered before any node
    /// executed; [`ClusterResponse::outcome`] is `LiteralHit` then.
    pub peer_hit: Option<PeerHit>,
}

type NodeFactory = dyn Fn(&str) -> Result<Arc<DataServer>> + Send + Sync;

/// The simulated multi-node Data Server deployment.
pub struct Cluster {
    config: ClusterConfig,
    ring: RwLock<HashRing>,
    nodes: RwLock<HashMap<String, Arc<ClusterNode>>>,
    peer: RwLock<PeerTier>,
    factory: Box<NodeFactory>,
    /// Cluster-level flight recorder: one trace per routed query, carrying
    /// the routing/peer events; the node's own trace nests beneath it.
    pub recorder: FlightRecorder,
    /// Cluster-level metrics (`tv_cluster_*`).
    pub registry: Registry,
}

impl Cluster {
    /// Build `config.nodes` members, each produced by `factory(name)` —
    /// the factory registers sources and publishes on the server it
    /// returns (identical publications per node, like a fleet provisioned
    /// from one image).
    pub fn build(
        config: ClusterConfig,
        factory: impl Fn(&str) -> Result<Arc<DataServer>> + Send + Sync + 'static,
    ) -> Result<Arc<Cluster>> {
        let cluster = Cluster {
            ring: RwLock::new(HashRing::new(config.seed, config.vnodes)),
            nodes: RwLock::new(HashMap::new()),
            peer: RwLock::new(PeerTier::new(config.replication)),
            factory: Box::new(factory),
            recorder: FlightRecorder::default(),
            registry: Registry::new(),
            config,
        };
        let n = cluster.config.nodes;
        for i in 0..n {
            cluster.attach_node(&format!("node-{i}"))?;
        }
        cluster.registry.gauge("tv_cluster_nodes_up").set(n as i64);
        Ok(Arc::new(cluster))
    }

    fn attach_node(&self, name: &str) -> Result<()> {
        let server = (self.factory)(name)?;
        let shard = Arc::new(ExternalStore::new(self.config.peer_op_latency));
        self.peer.write().add_shard(name, Arc::clone(&shard));
        self.ring.write().add_node(name);
        self.nodes.write().insert(
            name.to_string(),
            Arc::new(ClusterNode {
                name: name.to_string(),
                server,
                shard,
                up: AtomicBool::new(true),
                queries: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn node(&self, name: &str) -> Option<Arc<ClusterNode>> {
        self.nodes.read().get(name).cloned()
    }

    /// All members, sorted by name.
    pub fn nodes(&self) -> Vec<Arc<ClusterNode>> {
        let mut v: Vec<_> = self.nodes.read().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    pub fn nodes_up(&self) -> usize {
        self.nodes.read().values().filter(|n| n.is_up()).count()
    }

    /// Mark a node dead: routing skips it and its peer shard stops
    /// answering. Its data survives for [`Cluster::revive`] — the model is
    /// a crashed process, not a decommission (that is
    /// [`Cluster::remove_node`]).
    pub fn kill(&self, name: &str) -> bool {
        let Some(node) = self.node(name) else {
            return false;
        };
        node.up.store(false, Relaxed);
        node.shard.set_down(true);
        self.registry.counter("tv_cluster_kills_total").inc();
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        true
    }

    /// Bring a killed node back; its shard serves its old keys again.
    pub fn revive(&self, name: &str) -> bool {
        let Some(node) = self.node(name) else {
            return false;
        };
        node.up.store(true, Relaxed);
        node.shard.set_down(false);
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        true
    }

    /// Provision and join a new member, then migrate peer-tier keys so
    /// every key lives on exactly its `R` owners under the new ring.
    pub fn add_node(&self, name: &str) -> Result<RebalanceReport> {
        if self.nodes.read().contains_key(name) {
            return Err(TvError::Bind(format!("node '{name}' already exists")));
        }
        let old_ring = self.ring.read().clone();
        self.attach_node(name)?;
        let new_ring = self.ring.read().clone();
        let report = self.peer.read().rebalance(&old_ring, &new_ring);
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        self.registry
            .counter("tv_cluster_keys_migrated_total")
            .add(report.keys_moved as u64);
        Ok(report)
    }

    /// Gracefully decommission a member: its peer-tier keys are migrated to
    /// the surviving owners *before* the node and its shard are dropped.
    pub fn remove_node(&self, name: &str) -> Result<RebalanceReport> {
        if !self.nodes.read().contains_key(name) {
            return Err(TvError::Bind(format!("unknown node '{name}'")));
        }
        let old_ring = self.ring.read().clone();
        let mut new_ring = old_ring.clone();
        new_ring.remove_node(name);
        if new_ring.is_empty() {
            return Err(TvError::Unsupported(
                "cannot remove the last cluster node".into(),
            ));
        }
        // Migrate with the leaving shard still present as a source copy.
        let report = self.peer.read().rebalance(&old_ring, &new_ring);
        *self.ring.write() = new_ring;
        self.peer.write().remove_shard(name);
        self.nodes.write().remove(name);
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        self.registry
            .counter("tv_cluster_keys_migrated_total")
            .add(report.keys_moved as u64);
        Ok(report)
    }

    /// Route one session's query on `published`: rotate the owner list by
    /// the session hash, take the first healthy candidate, fall back to any
    /// healthy member when all owners are down.
    pub fn route(&self, published: &str, session_key: &str) -> Result<Route> {
        let owners: Vec<String> = {
            let ring = self.ring.read();
            ring.replicas(published, self.config.replication)
                .into_iter()
                .map(str::to_string)
                .collect()
        };
        if owners.is_empty() {
            return Err(TvError::Exec("cluster has no nodes".into()));
        }
        let rot = (hash_str(self.config.seed ^ 0x5e55_10af, session_key) as usize) % owners.len();
        let candidates: Vec<String> = (0..owners.len())
            .map(|i| owners[(rot + i) % owners.len()].clone())
            .collect();
        let nodes = self.nodes.read();
        for (rank, name) in candidates.iter().enumerate() {
            if nodes.get(name).is_some_and(|n| n.is_up()) {
                return Ok(Route {
                    node: name.clone(),
                    kind: if rank == 0 {
                        RouteKind::Primary
                    } else {
                        RouteKind::Failover
                    },
                    owner_rank: rank,
                    candidates,
                });
            }
        }
        // Every owner is down: deterministic sweep over all members.
        let members: Vec<String> = self.ring.read().members().to_vec();
        for name in &members {
            if nodes.get(name).is_some_and(|n| n.is_up()) {
                return Ok(Route {
                    node: name.clone(),
                    kind: RouteKind::AllReplicasDown,
                    owner_rank: candidates.len(),
                    candidates,
                });
            }
        }
        Err(TvError::Exec("no healthy node in cluster".into()))
    }

    /// Stable ordinal of a node within the sorted membership (used as the
    /// numeric `detail` on routing trace events).
    fn node_ordinal(&self, name: &str) -> u64 {
        self.ring
            .read()
            .members()
            .iter()
            .position(|m| m == name)
            .unwrap_or(usize::MAX) as u64
    }

    /// Byte-stable routing table: the full ring digest plus, per published
    /// source, its replica owners in order. Two clusters with equal seed
    /// and membership render identical tables — the determinism tests
    /// compare these strings verbatim.
    pub fn routing_table(&self) -> String {
        use std::fmt::Write as _;
        let ring = self.ring.read();
        let mut out = ring.digest();
        let mut published: Vec<String> = Vec::new();
        for node in self.nodes.read().values() {
            for name in node.server.published_names() {
                if !published.contains(&name) {
                    published.push(name);
                }
            }
        }
        published.sort();
        for name in &published {
            let owners = ring.replicas(name, self.config.replication);
            let _ = writeln!(out, "published {name} -> {}", owners.join(","));
        }
        out
    }

    pub fn ring_digest(&self) -> String {
        self.ring.read().digest()
    }

    pub fn peer_stats(&self) -> PeerTierStats {
        self.peer.read().stats()
    }

    /// Per-node executed-query counts, sorted by name (load-balance checks).
    pub fn node_query_counts(&self) -> Vec<(String, u64)> {
        self.nodes()
            .iter()
            .map(|n| (n.name.clone(), n.query_count()))
            .collect()
    }

    /// Open a cluster session for `user` on `published`. The session key
    /// (`user@published`) is the affinity domain: it picks the rotation of
    /// the owner list and the per-node admission session.
    pub fn open_session(
        self: &Arc<Self>,
        published: &str,
        user: impl Into<String>,
    ) -> Result<ClusterSession> {
        let user = user.into();
        // Fail fast on unknown published names (any node can answer this).
        let nodes = self.nodes();
        let node = nodes
            .first()
            .ok_or_else(|| TvError::Exec("cluster has no nodes".into()))?;
        node.server.published(published)?;
        let session_key = format!("{user}@{published}");
        Ok(ClusterSession {
            cluster: Arc::clone(self),
            published: published.to_string(),
            user,
            session_key,
            priority: Priority::Interactive,
            weight: 1.0,
            node_sessions: Mutex::new(HashMap::new()),
            failovers: AtomicU64::new(0),
        })
    }
}

/// A client's connection to the cluster: routes to the affinity node,
/// consults the peer tier, fails over when nodes die.
pub struct ClusterSession {
    cluster: Arc<Cluster>,
    published: String,
    user: String,
    session_key: String,
    priority: Priority,
    weight: f64,
    /// Lazily opened per-node admission sessions (affinity means usually
    /// one; failover adds more).
    node_sessions: Mutex<HashMap<String, ClientSession>>,
    failovers: AtomicU64,
}

impl ClusterSession {
    pub fn session_key(&self) -> &str {
        &self.session_key
    }

    /// The node this session is affine to while it is healthy.
    pub fn affinity_node(&self) -> Result<String> {
        Ok(self
            .cluster
            .route(&self.published, &self.session_key)?
            .candidates[0]
            .clone())
    }

    /// Times this session was served by a non-affinity node.
    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Relaxed)
    }

    /// Demote/restore the admission class (applies to nodes contacted from
    /// now on; cached per-node sessions are reopened).
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = priority;
        self.node_sessions.lock().clear();
    }

    pub fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
        self.node_sessions.lock().clear();
    }

    /// The replicated-tier key for this session's query: published name +
    /// user (row-level security makes results user-specific) + canonical
    /// query text.
    pub fn peer_key(&self, query: &ClientQuery) -> String {
        let mut key = format!("{}\u{1}{}\u{1}", self.published, self.user);
        for f in &query.filters {
            key.push_str(&tabviz_tql::write_expr(f));
            key.push(';');
        }
        key.push('\u{1}');
        key.push_str(&query.group_by.join(","));
        key.push('\u{1}');
        for a in &query.aggs {
            key.push_str(&a.to_string());
            key.push(';');
        }
        key.push('\u{1}');
        for o in &query.order {
            key.push_str(&o.column);
            key.push(if o.asc { '+' } else { '-' });
        }
        if let Some(n) = query.topn {
            key.push_str(&format!("\u{1}top{n}"));
        }
        for s in &query.set_refs {
            key.push_str(&format!("\u{1}set:{s}"));
        }
        key
    }

    /// Evaluate one client query through the cluster: route → peer tier →
    /// node execution → replicated publish; fully traced and recorded.
    pub fn query(&self, query: &ClientQuery) -> Result<ClusterResponse> {
        let cluster = &self.cluster;
        let t0 = Instant::now();
        let trace = begin_trace();
        cluster.registry.counter("tv_cluster_queries_total").inc();

        let route = match cluster.route(&self.published, &self.session_key) {
            Ok(r) => r,
            Err(e) => {
                drop(trace);
                cluster
                    .registry
                    .counter("tv_cluster_unroutable_total")
                    .inc();
                return Err(e);
            }
        };
        let (label, why) = match route.kind {
            RouteKind::Primary => ("primary", reason::ROUTE_PRIMARY),
            RouteKind::Failover => ("failover", reason::ROUTE_FAILOVER),
            RouteKind::AllReplicasDown => ("failover", reason::ROUTE_ALL_REPLICAS_DOWN),
        };
        event_with(
            stage::CLUSTER_ROUTE,
            Some(label),
            Some(cluster.node_ordinal(&route.node)),
            Some(why),
        );
        if route.kind != RouteKind::Primary {
            self.failovers.fetch_add(1, Relaxed);
            cluster.registry.counter("tv_cluster_failovers_total").inc();
            if route.kind == RouteKind::AllReplicasDown {
                cluster
                    .registry
                    .counter("tv_cluster_all_replicas_down_total")
                    .inc();
            }
        }

        // Shared result tier: exact-match probe against the key's replica
        // owners before any node executes.
        let key = self.peer_key(query);
        let peer_probe = {
            let ring = cluster.ring.read();
            cluster.peer.read().get(&ring, &key)
        };
        if let Some((bytes, hit)) = peer_probe {
            if let Ok(chunk) = decode_chunk(&bytes) {
                let (why, detail) = match hit {
                    PeerHit::Primary => (reason::PEER_HIT_PRIMARY, 0),
                    PeerHit::Replica(i) => (reason::PEER_HIT_REPLICA, i as u64),
                };
                event_with(stage::PEER_CACHE, Some("get"), Some(detail), Some(why));
                cluster.registry.counter("tv_cluster_peer_hits_total").inc();
                if matches!(hit, PeerHit::Replica(_)) {
                    cluster
                        .registry
                        .counter("tv_cluster_peer_replica_hits_total")
                        .inc();
                }
                self.finish_trace(trace, t0, query, ProfileOutcome::Hit);
                return Ok(ClusterResponse {
                    chunk,
                    outcome: ExecOutcome::LiteralHit,
                    node: route.node,
                    route: route.kind,
                    peer_hit: Some(hit),
                });
            }
        }
        event_with(
            stage::PEER_CACHE,
            Some("get"),
            None,
            Some(reason::PEER_MISS),
        );
        cluster
            .registry
            .counter("tv_cluster_peer_misses_total")
            .inc();

        // Execute on the routed node (its own trace nests under ours).
        let node = cluster
            .node(&route.node)
            .ok_or_else(|| TvError::Exec(format!("routed to unknown node '{}'", route.node)))?;
        node.queries.fetch_add(1, Relaxed);
        let result = self.query_on(&node, query);
        let (chunk, outcome) = match result {
            Ok(v) => v,
            Err(e) => {
                self.finish_trace(trace, t0, query, ProfileOutcome::Remote);
                return Err(e);
            }
        };

        // Publish fresh backend results to the key's replica owners.
        if outcome == ExecOutcome::Remote {
            if let Ok(bytes) = encode_chunk(&chunk) {
                let ring = cluster.ring.read();
                let fanout = cluster.peer.read().replication() as u64;
                cluster.peer.read().put(&ring, &key, bytes);
                drop(ring);
                event_with(stage::PEER_CACHE, Some("put"), Some(fanout), None);
            }
        }

        let profile_outcome = match outcome {
            ExecOutcome::IntelligentHit | ExecOutcome::LiteralHit => ProfileOutcome::Hit,
            ExecOutcome::Remote => ProfileOutcome::Remote,
            ExecOutcome::DegradedStale => ProfileOutcome::DegradedStale,
        };
        self.finish_trace(trace, t0, query, profile_outcome);
        Ok(ClusterResponse {
            chunk,
            outcome,
            node: route.node,
            route: route.kind,
            peer_hit: None,
        })
    }

    /// Run the query through a node's admission session, opening (and
    /// caching) one on first contact.
    fn query_on(&self, node: &ClusterNode, query: &ClientQuery) -> Result<(Chunk, ExecOutcome)> {
        let mut sessions = self.node_sessions.lock();
        if !sessions.contains_key(&node.name) {
            let mut s = node.server.connect(&self.published, self.user.clone())?;
            s.set_priority(self.priority);
            s.set_weight(self.weight);
            sessions.insert(node.name.clone(), s);
        }
        sessions[&node.name].query(query)
    }

    fn finish_trace(
        &self,
        trace: tabviz_obs::TraceHandle,
        t0: Instant,
        query: &ClientQuery,
        outcome: ProfileOutcome,
    ) {
        let finished = trace.finish(t0.elapsed());
        if finished.is_captured() {
            let text = format!(
                "[{}] group_by={:?} aggs={} filters={}",
                self.session_key,
                query.group_by,
                query.aggs.len(),
                query.filters.len()
            );
            self.cluster.recorder.record(RecordedTrace::from_finished(
                finished,
                text,
                &self.published,
                outcome,
            ));
        }
    }
}
