//! The N-node simulated cluster.
//!
//! One [`Cluster`] owns a set of named [`DataServer`] nodes, a consistent-hash
//! [`HashRing`] placing published sources (and cached results) on them, and a
//! replicated [`PeerTier`] built from one [`ExternalStore`] shard per node.
//! Client work enters through [`ClusterSession`]s, which add the two layers a
//! standalone server does not have:
//!
//! - **Routing with session affinity.** A published source is owned by its
//!   `R` ring replicas; a session deterministically rotates that owner list
//!   by its own hash, so different sessions spread across the replicas while
//!   any one session keeps hitting the same node (warm node-local caches).
//!   When the affinity node is marked down, the session fails over to the
//!   next healthy owner — and if every owner is down, to any healthy member.
//! - **A shared result tier.** Query results are replicated to the `R` ring
//!   owners of their *(published, user, query)* key; a routed query probes
//!   the tier before executing so any node's prior work is reused
//!   cluster-wide, even while the node that computed it is dead.
//!
//! Every routing and peer decision is attributed: the cluster opens its own
//! trace per query (the node's internal trace nests under it via
//! `parent_trace`), emits [`stage::CLUSTER_ROUTE`] / [`stage::PEER_CACHE`]
//! events with [`reason`] codes, and records the finished trace in a
//! cluster-level [`FlightRecorder`]. All placement and routing is a pure
//! function of the cluster seed, so a fixed seed replays byte-identically.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tabviz_cache::{
    decode_chunk, encode_chunk, source_tag, table_tag, tables_of, ExternalStore, L2Cache,
};
use tabviz_common::hash::hash_str;
use tabviz_common::{Chunk, Result, TvError};
use tabviz_core::{ExecOutcome, Priority};
use tabviz_dataserver::{ClientQuery, ClientSession, DataServer};
use tabviz_obs::{
    begin_trace, diagnose, event_with, reason, stage, ClassBaselines, Diagnosis, Federation,
    FlightRecorder, FlightRecorderConfig, HealthConfig, HealthScorer, HealthState, Objective,
    ProfileOutcome, RecordedTrace, Registry, ServeEvent, ServeKind, SloConfig, SloStatus,
    SloTracker,
};

use crate::peer::{PeerHit, PeerTier, PeerTierStats, RebalanceReport};
use crate::ring::HashRing;

/// Cluster-wide tunables. Everything that influences placement or routing
/// is derived from `seed`, so two clusters built with equal configs and
/// equal node sets behave identically.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Nodes created at build time, named `node-0` … `node-{n-1}`.
    pub nodes: usize,
    /// Replica owners per key (published sources and peer-tier entries).
    pub replication: usize,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Master seed for ring placement, session rotation and fault rolls.
    pub seed: u64,
    /// Simulated round-trip per peer-tier shard operation.
    pub peer_op_latency: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            vnodes: 64,
            seed: 0,
            peer_op_latency: Duration::ZERO,
        }
    }
}

/// How often routing deliberately sends a query *through* a demoted owner
/// so its health score keeps receiving fresh observations — without the
/// probe, a demoted node would starve of traffic and never be restored.
const HEALTH_PROBE_EVERY: u64 = 8;

/// How many hot L1 entries cache warming replays into a joining node
/// (top-K by use count across the existing members).
const WARM_TOP_K: usize = 16;

/// The cluster's shared L2 cache tier: entries are ring-placed onto their
/// `R` owner shards and reachable from every node. One instance per node is
/// injected into that node's processor caches at attach time; all instances
/// share the same ring + peer tier, so a result computed anywhere is an L2
/// hit everywhere (and one tag purge clears every shard).
struct ClusterL2 {
    ring: Arc<RwLock<HashRing>>,
    peer: Arc<RwLock<PeerTier>>,
}

impl L2Cache for ClusterL2 {
    fn get(&self, key: &str) -> Option<Bytes> {
        let ring = self.ring.read();
        self.peer.read().get(&ring, key).map(|(bytes, _)| bytes)
    }

    fn put(&self, key: &str, value: Bytes, tags: &[String]) {
        let ring = self.ring.read();
        self.peer.read().put_tagged(&ring, key, value, tags);
    }

    fn purge_tag(&self, tag: &str) -> usize {
        self.peer.read().purge_tag(tag)
    }

    fn entry_count(&self) -> usize {
        self.peer.read().entry_count()
    }
}

/// One member: a named [`DataServer`] plus its peer-tier shard, liveness
/// flag and brown-out health scorer.
pub struct ClusterNode {
    pub name: String,
    pub server: Arc<DataServer>,
    shard: Arc<ExternalStore>,
    up: AtomicBool,
    queries: AtomicU64,
    degraded_serves: AtomicU64,
    /// EWMA anomaly scorer over this node's serves.
    health: Mutex<HealthScorer>,
    /// Routing-visible mirror of the scorer's state (lock-free read on
    /// the route hot path).
    demoted: AtomicBool,
    /// Round-robin tick deciding which skipped routes probe the node.
    probe_rr: AtomicU64,
}

impl ClusterNode {
    pub fn is_up(&self) -> bool {
        self.up.load(Relaxed)
    }

    /// Health-demoted: answering, but anomalously slow or error-prone.
    pub fn is_demoted(&self) -> bool {
        self.demoted.load(Relaxed)
    }

    /// Current 0–100 health score.
    pub fn health_score(&self) -> f64 {
        self.health.lock().score()
    }

    /// Queries this node executed (routed to it and past the peer tier).
    pub fn query_count(&self) -> u64 {
        self.queries.load(Relaxed)
    }

    /// Serves this node answered degraded (stale data).
    pub fn degraded_count(&self) -> u64 {
        self.degraded_serves.load(Relaxed)
    }

    /// This node's peer-tier shard.
    pub fn shard(&self) -> &Arc<ExternalStore> {
        &self.shard
    }
}

/// How a query reached its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The session's affinity owner answered.
    Primary,
    /// The affinity owner was down; a healthy replica owner took it.
    Failover,
    /// Every replica owner was down; any healthy member took it.
    AllReplicasDown,
}

/// One routing decision — a pure function of `(ring, up-set, health-set,
/// session, probe ticks)`.
#[derive(Debug, Clone)]
pub struct Route {
    pub node: String,
    pub kind: RouteKind,
    /// Index into `candidates` that was chosen (0 = affinity owner).
    pub owner_rank: usize,
    /// The session's rotated owner list for the published source.
    pub candidates: Vec<String>,
    /// Owners skipped because their health score demoted them (up, but
    /// browned out) — the pre-death failover the SLO plane exists for.
    pub demoted_skipped: usize,
    /// This route deliberately passed through a demoted owner to keep its
    /// health score fed (1 in [`HEALTH_PROBE_EVERY`] skips).
    pub probe: bool,
}

/// One answered cluster query.
pub struct ClusterResponse {
    pub chunk: Chunk,
    pub outcome: ExecOutcome,
    /// Node that served (or would have served) the query.
    pub node: String,
    pub route: RouteKind,
    /// `Some` when the replicated peer tier answered before any node
    /// executed; [`ClusterResponse::outcome`] is `LiteralHit` then.
    pub peer_hit: Option<PeerHit>,
}

type NodeFactory = dyn Fn(&str) -> Result<Arc<DataServer>> + Send + Sync;

/// The simulated multi-node Data Server deployment.
pub struct Cluster {
    config: ClusterConfig,
    ring: Arc<RwLock<HashRing>>,
    nodes: RwLock<HashMap<String, Arc<ClusterNode>>>,
    peer: Arc<RwLock<PeerTier>>,
    factory: Box<NodeFactory>,
    /// Cluster-level flight recorder: one trace per routed query, carrying
    /// the routing/peer events; the node's own trace nests beneath it.
    pub recorder: FlightRecorder,
    /// Cluster-level metrics (`tv_cluster_*`).
    pub registry: Registry,
    /// Streaming per-class fingerprints over cluster-scope serves (used to
    /// diagnose peer-tier serves, which never reach a node pipeline).
    pub baselines: ClassBaselines,
    /// SLO tracker over every serve the cluster answers (sim-time driven
    /// off `epoch`).
    slo: Mutex<SloTracker>,
    /// Health-scorer tuning applied to every node (existing and joined).
    health_config: HealthConfig,
    /// Cluster birth; `epoch.elapsed()` is the SLO plane's clock.
    epoch: Instant,
}

impl Cluster {
    /// Build `config.nodes` members, each produced by `factory(name)` —
    /// the factory registers sources and publishes on the server it
    /// returns (identical publications per node, like a fleet provisioned
    /// from one image).
    pub fn build(
        config: ClusterConfig,
        factory: impl Fn(&str) -> Result<Arc<DataServer>> + Send + Sync + 'static,
    ) -> Result<Arc<Cluster>> {
        let registry = Registry::new();
        let mut slo = SloTracker::new(
            SloConfig::default(),
            vec![
                Objective::availability("availability", 0.999),
                Objective::degraded_fraction("degraded", 0.05),
            ],
        );
        slo.bind_obs(&registry);
        // The recorder adopts the cluster registry's exemplar slots as its
        // pin set: a trace id exported from a cluster-scope histogram
        // (e.g. `tv_slo_serve_latency_seconds`) stays resolvable here.
        let recorder = FlightRecorder::with_registry(FlightRecorderConfig::default(), &registry);
        let cluster = Cluster {
            ring: Arc::new(RwLock::new(HashRing::new(config.seed, config.vnodes))),
            nodes: RwLock::new(HashMap::new()),
            peer: Arc::new(RwLock::new(PeerTier::new(config.replication))),
            factory: Box::new(factory),
            recorder,
            registry,
            baselines: ClassBaselines::new(),
            slo: Mutex::new(slo),
            health_config: HealthConfig::default(),
            epoch: Instant::now(),
            config,
        };
        let n = cluster.config.nodes;
        for i in 0..n {
            cluster.attach_node(&format!("node-{i}"))?;
        }
        cluster.registry.gauge("tv_cluster_nodes_up").set(n as i64);
        Ok(Arc::new(cluster))
    }

    /// Replace the SLO tracker (window shape + objectives). Experiments
    /// call this right after build, before traffic, so the sim-time
    /// windows match their compressed horizon.
    pub fn configure_slo(&self, config: SloConfig, objectives: Vec<Objective>) {
        let mut tracker = SloTracker::new(config, objectives);
        tracker.bind_obs(&self.registry);
        *self.slo.lock() = tracker;
    }

    /// Add one objective to the live tracker (e.g. a latency bound
    /// calibrated from a healthy baseline run).
    pub fn add_objective(&self, objective: Objective) {
        self.slo
            .lock()
            .add_objective(objective, Some(&self.registry));
    }

    /// Milliseconds since the cluster was built — the SLO plane's clock.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Current SLO status for every objective (no alert transitions).
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.slo.lock().status(self.now_ms())
    }

    fn attach_node(&self, name: &str) -> Result<()> {
        let server = (self.factory)(name)?;
        let shard = Arc::new(ExternalStore::new(self.config.peer_op_latency));
        self.peer.write().add_shard(name, Arc::clone(&shard));
        self.ring.write().add_node(name);
        // Make the replicated peer tier this node's L2: both L1 levels miss
        // → ring-routed probe, promote on hit, tagged publish on store.
        server.processor.caches.set_l2(Arc::new(ClusterL2 {
            ring: Arc::clone(&self.ring),
            peer: Arc::clone(&self.peer),
        }));
        self.nodes.write().insert(
            name.to_string(),
            Arc::new(ClusterNode {
                name: name.to_string(),
                server,
                shard,
                up: AtomicBool::new(true),
                queries: AtomicU64::new(0),
                degraded_serves: AtomicU64::new(0),
                health: Mutex::new(HealthScorer::new(self.health_config.clone())),
                demoted: AtomicBool::new(false),
                probe_rr: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn node(&self, name: &str) -> Option<Arc<ClusterNode>> {
        self.nodes.read().get(name).cloned()
    }

    /// All members, sorted by name.
    pub fn nodes(&self) -> Vec<Arc<ClusterNode>> {
        let mut v: Vec<_> = self.nodes.read().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    pub fn nodes_up(&self) -> usize {
        self.nodes.read().values().filter(|n| n.is_up()).count()
    }

    /// Mark a node dead: routing skips it and its peer shard stops
    /// answering. Its data survives for [`Cluster::revive`] — the model is
    /// a crashed process, not a decommission (that is
    /// [`Cluster::remove_node`]).
    pub fn kill(&self, name: &str) -> bool {
        let Some(node) = self.node(name) else {
            return false;
        };
        node.up.store(false, Relaxed);
        node.shard.set_down(true);
        self.registry.counter("tv_cluster_kills_total").inc();
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        true
    }

    /// Bring a killed node back; its shard serves its old keys again.
    pub fn revive(&self, name: &str) -> bool {
        let Some(node) = self.node(name) else {
            return false;
        };
        node.up.store(true, Relaxed);
        node.shard.set_down(false);
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        true
    }

    /// Provision and join a new member, then migrate peer-tier keys so
    /// every key lives on exactly its `R` owners under the new ring, and
    /// warm the joiner's L1 from the existing members' hot sets.
    pub fn add_node(&self, name: &str) -> Result<RebalanceReport> {
        if self.nodes.read().contains_key(name) {
            return Err(TvError::Bind(format!("node '{name}' already exists")));
        }
        let donors = self.nodes();
        let old_ring = self.ring.read().clone();
        self.attach_node(name)?;
        let new_ring = self.ring.read().clone();
        let report = self.peer.read().rebalance(&old_ring, &new_ring);
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        self.registry
            .counter("tv_cluster_keys_migrated_total")
            .add(report.keys_moved as u64);
        let warmed = self.warm_node(name, &donors);
        self.registry
            .counter("tv_cluster_entries_warmed_total")
            .add(warmed as u64);
        Ok(report)
    }

    /// Cache warming: replay the existing members' hottest intelligent-cache
    /// entries (top-[`WARM_TOP_K`] by use count, deduplicated by canonical
    /// text) into a joining node's L1 so its first dashboards hit locally
    /// instead of walking to L2 or the backend. Returns entries seeded.
    fn warm_node(&self, name: &str, donors: &[Arc<ClusterNode>]) -> usize {
        let Some(target) = self.node(name) else {
            return 0;
        };
        // Gather each donor's ranked hot list, then merge by interleaving
        // rank order — rank r from every donor before rank r+1 anywhere —
        // so the global top-K approximates popularity without raw counts.
        let lists: Vec<_> = donors
            .iter()
            .filter(|d| d.name != name)
            .map(|d| {
                d.server
                    .processor
                    .caches
                    .intelligent
                    .hot_entries(WARM_TOP_K)
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut warmed = 0usize;
        let max_rank = lists.iter().map(Vec::len).max().unwrap_or(0);
        'outer: for rank in 0..max_rank {
            for list in &lists {
                let Some((spec, chunk, cost)) = list.get(rank) else {
                    continue;
                };
                if !seen.insert(spec.canonical_text()) {
                    continue;
                }
                target
                    .server
                    .processor
                    .caches
                    .warm(spec.clone(), chunk, *cost);
                warmed += 1;
                if warmed >= WARM_TOP_K {
                    break 'outer;
                }
            }
        }
        if warmed > 0 {
            event_with(stage::CACHE_TIER, Some("warm"), Some(warmed as u64), None);
        }
        warmed
    }

    /// One table refreshed at its source: purge only the tagged dependents
    /// — every node's L1 plus the shared L2 — instead of flushing whole
    /// sources. Returns entries removed cluster-wide.
    pub fn refresh_table(&self, source: &str, table: &str) -> usize {
        let mut purged = 0usize;
        for node in self.nodes() {
            purged += node.server.processor.refresh_table(source, table);
        }
        self.registry.counter("tv_cluster_tag_purges_total").inc();
        self.registry
            .counter("tv_cluster_tag_purged_entries_total")
            .add(purged as u64);
        event_with(
            stage::CACHE_TIER,
            Some("purge"),
            Some(purged as u64),
            Some(reason::CACHE_TAG_PURGE),
        );
        purged
    }

    /// Gracefully decommission a member: its peer-tier keys are migrated to
    /// the surviving owners *before* the node and its shard are dropped.
    pub fn remove_node(&self, name: &str) -> Result<RebalanceReport> {
        if !self.nodes.read().contains_key(name) {
            return Err(TvError::Bind(format!("unknown node '{name}'")));
        }
        let old_ring = self.ring.read().clone();
        let mut new_ring = old_ring.clone();
        new_ring.remove_node(name);
        if new_ring.is_empty() {
            return Err(TvError::Unsupported(
                "cannot remove the last cluster node".into(),
            ));
        }
        // Migrate with the leaving shard still present as a source copy.
        let report = self.peer.read().rebalance(&old_ring, &new_ring);
        *self.ring.write() = new_ring;
        self.peer.write().remove_shard(name);
        self.nodes.write().remove(name);
        self.registry
            .gauge("tv_cluster_nodes_up")
            .set(self.nodes_up() as i64);
        self.registry
            .counter("tv_cluster_keys_migrated_total")
            .add(report.keys_moved as u64);
        Ok(report)
    }

    /// Route one session's query on `published`: rotate the owner list by
    /// the session hash, take the first *healthy* candidate — up **and**
    /// not health-demoted — then fall back in order of preference: any
    /// healthy non-owner member (cold caches beat a browned-out node),
    /// an up-but-demoted owner (slow beats unavailable), any up member.
    ///
    /// The owner list is recomputed from the live ring on every call —
    /// affinity is *lazily* derived, never cached on the session — so a
    /// node joined after a session opened absorbs that session on its very
    /// next query (see `join_absorbs_existing_sessions` in
    /// `tests/cluster_sim.rs`).
    ///
    /// Demoted owners still see 1 in [`HEALTH_PROBE_EVERY`] of the routes
    /// that would have skipped them (`probe = true`), so their scores keep
    /// getting observations and recovery is detectable.
    pub fn route(&self, published: &str, session_key: &str) -> Result<Route> {
        let owners: Vec<String> = {
            let ring = self.ring.read();
            ring.replicas(published, self.config.replication)
                .into_iter()
                .map(str::to_string)
                .collect()
        };
        if owners.is_empty() {
            return Err(TvError::Exec("cluster has no nodes".into()));
        }
        let rot = (hash_str(self.config.seed ^ 0x5e55_10af, session_key) as usize) % owners.len();
        let candidates: Vec<String> = (0..owners.len())
            .map(|i| owners[(rot + i) % owners.len()].clone())
            .collect();
        let nodes = self.nodes.read();
        let kind_for = |rank: usize| {
            if rank == 0 {
                RouteKind::Primary
            } else {
                RouteKind::Failover
            }
        };
        let mut demoted_skipped = 0usize;
        let mut first_up_demoted: Option<usize> = None;
        for (rank, name) in candidates.iter().enumerate() {
            let Some(node) = nodes.get(name) else {
                continue;
            };
            if !node.is_up() {
                continue;
            }
            if node.is_demoted() {
                if node.probe_rr.fetch_add(1, Relaxed) % HEALTH_PROBE_EVERY == 0 {
                    return Ok(Route {
                        node: name.clone(),
                        kind: kind_for(rank),
                        owner_rank: rank,
                        candidates,
                        demoted_skipped,
                        probe: true,
                    });
                }
                first_up_demoted.get_or_insert(rank);
                demoted_skipped += 1;
                continue;
            }
            return Ok(Route {
                node: name.clone(),
                kind: kind_for(rank),
                owner_rank: rank,
                candidates,
                demoted_skipped,
                probe: false,
            });
        }
        let members: Vec<String> = self.ring.read().members().to_vec();
        if let Some(rank) = first_up_demoted {
            // Owners exist but are browned out: prefer a healthy
            // non-owner, accept the demoted owner only as last resort.
            for name in &members {
                if candidates.contains(name) {
                    continue;
                }
                if nodes
                    .get(name)
                    .is_some_and(|n| n.is_up() && !n.is_demoted())
                {
                    return Ok(Route {
                        node: name.clone(),
                        kind: RouteKind::Failover,
                        owner_rank: candidates.len(),
                        candidates,
                        demoted_skipped,
                        probe: false,
                    });
                }
            }
            let name = candidates[rank].clone();
            return Ok(Route {
                node: name,
                kind: kind_for(rank),
                owner_rank: rank,
                candidates,
                demoted_skipped: demoted_skipped.saturating_sub(1),
                probe: false,
            });
        }
        // Every owner is down: deterministic sweep over all members,
        // healthy ones first.
        for demoted_ok in [false, true] {
            for name in &members {
                if nodes
                    .get(name)
                    .is_some_and(|n| n.is_up() && (demoted_ok || !n.is_demoted()))
                {
                    return Ok(Route {
                        node: name.clone(),
                        kind: RouteKind::AllReplicasDown,
                        owner_rank: candidates.len(),
                        candidates,
                        demoted_skipped,
                        probe: false,
                    });
                }
            }
        }
        Err(TvError::Exec("no healthy node in cluster".into()))
    }

    /// Stable ordinal of a node within the sorted membership (used as the
    /// numeric `detail` on routing trace events).
    fn node_ordinal(&self, name: &str) -> u64 {
        self.ring
            .read()
            .members()
            .iter()
            .position(|m| m == name)
            .unwrap_or(usize::MAX) as u64
    }

    /// Byte-stable routing table: the full ring digest plus, per published
    /// source, its replica owners in order. Two clusters with equal seed
    /// and membership render identical tables — the determinism tests
    /// compare these strings verbatim.
    pub fn routing_table(&self) -> String {
        use std::fmt::Write as _;
        let ring = self.ring.read();
        let mut out = ring.digest();
        let mut published: Vec<String> = Vec::new();
        for node in self.nodes.read().values() {
            for name in node.server.published_names() {
                if !published.contains(&name) {
                    published.push(name);
                }
            }
        }
        published.sort();
        for name in &published {
            let owners = ring.replicas(name, self.config.replication);
            let _ = writeln!(out, "published {name} -> {}", owners.join(","));
        }
        out
    }

    pub fn ring_digest(&self) -> String {
        self.ring.read().digest()
    }

    pub fn peer_stats(&self) -> PeerTierStats {
        self.peer.read().stats()
    }

    /// Per-node executed-query counts, sorted by name (load-balance checks).
    pub fn node_query_counts(&self) -> Vec<(String, u64)> {
        self.nodes()
            .iter()
            .map(|n| (n.name.clone(), n.query_count()))
            .collect()
    }

    /// Per-node health scores, sorted by name.
    pub fn health_scores(&self) -> Vec<(String, f64, HealthState)> {
        self.nodes()
            .iter()
            .map(|n| {
                let h = n.health.lock();
                (n.name.clone(), h.score(), h.state())
            })
            .collect()
    }

    /// Fold one serve into the SLO plane: the node's health scorer (when a
    /// node actually executed) and the cluster SLO windows. Emits
    /// `node_health` / `slo_check` events onto the current trace on every
    /// transition, so brown-out detection is attributable per query.
    fn observe_serve(&self, executed_on: Option<&str>, latency: Duration, kind: ServeKind) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        if let Some(name) = executed_on {
            if let Some(node) = self.node(name) {
                if kind == ServeKind::Degraded {
                    node.degraded_serves.fetch_add(1, Relaxed);
                }
                let transition = {
                    let mut health = node.health.lock();
                    let t = health.observe(micros, kind);
                    if t.is_some() {
                        node.demoted
                            .store(health.state() == HealthState::Demoted, Relaxed);
                    }
                    t.map(|state| (state, health.score()))
                };
                if let Some((state, score)) = transition {
                    match state {
                        HealthState::Demoted => {
                            self.registry
                                .counter("tv_cluster_health_demotions_total")
                                .inc();
                            event_with(
                                stage::NODE_HEALTH,
                                Some("demoted"),
                                Some(score as u64),
                                Some(reason::ROUTE_HEALTH_DEMOTED),
                            );
                        }
                        HealthState::Healthy => {
                            self.registry
                                .counter("tv_cluster_health_restorations_total")
                                .inc();
                            event_with(
                                stage::NODE_HEALTH,
                                Some("restored"),
                                Some(score as u64),
                                None,
                            );
                        }
                    }
                }
                self.registry
                    .gauge(&format!(
                        "tv_cluster_health_{}_score",
                        name.replace('-', "_")
                    ))
                    .set(node.health.lock().score() as i64);
            }
        }
        let now_ms = self.now_ms();
        let mut slo = self.slo.lock();
        slo.record(
            now_ms,
            ServeEvent {
                latency_micros: micros,
                ok: kind != ServeKind::Error,
                degraded: kind == ServeKind::Degraded,
            },
        );
        for (i, status) in slo.evaluate(now_ms, false).into_iter().enumerate() {
            if status.just_fired {
                event_with(
                    stage::SLO_CHECK,
                    Some(status.name),
                    Some(i as u64),
                    Some(reason::SLO_BURN_ALERT),
                );
            } else if status.just_cleared {
                event_with(
                    stage::SLO_CHECK,
                    Some(status.name),
                    Some(i as u64),
                    Some(reason::SLO_ALERT_CLEARED),
                );
            }
        }
    }

    /// A [`Federation`] over every node's registry (rebuilt per call so
    /// membership changes are always reflected).
    pub fn federation(&self) -> Federation {
        let mut fed = Federation::new();
        for node in self.nodes() {
            fed.add_node(&node.name, node.server.registry());
        }
        fed
    }

    /// Prometheus text exposition for the whole cluster: the cluster's own
    /// `tv_cluster_*` / `tv_slo_*` series, then every node's series with a
    /// `node` label plus merged cluster-scope aggregates.
    pub fn metrics_text(&self) -> String {
        let mut out = self.registry.render_text();
        out.push_str(&self.federation().render_text());
        out
    }

    /// One-call cluster state: membership and health, routing and peer
    /// tier counters, SLO status, federated latency quantiles, and the
    /// slowest recorded cluster traces.
    pub fn diagnostics_report(&self, top_k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== cluster diagnostics: {} nodes ({} up) ===",
            self.nodes().len(),
            self.nodes_up()
        );
        for node in self.nodes() {
            let health = node.health.lock();
            let _ = writeln!(
                out,
                "  {}: {} health={:.0} ({:?}) queries={} degraded={}",
                node.name,
                if node.is_up() { "up" } else { "DOWN" },
                health.score(),
                health.state(),
                node.query_count(),
                node.degraded_count(),
            );
        }
        let snap = self.registry.snapshot();
        let counter = |name: &str| match snap.get(name) {
            Some(tabviz_obs::MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        let _ = writeln!(
            out,
            "routing: queries={} failovers={} all_replicas_down={} health_reroutes={} probes={}",
            counter("tv_cluster_queries_total"),
            counter("tv_cluster_failovers_total"),
            counter("tv_cluster_all_replicas_down_total"),
            counter("tv_cluster_health_reroutes_total"),
            counter("tv_cluster_health_probes_total"),
        );
        let peer = self.peer_stats();
        let _ = writeln!(
            out,
            "peer tier: gets={} primary_hits={} replica_hits={} misses={} puts={} fanout={}",
            peer.gets,
            peer.primary_hits,
            peer.replica_hits,
            peer.misses,
            peer.puts,
            peer.put_fanout,
        );
        for status in self.slo_status() {
            let _ = writeln!(
                out,
                "slo {}: {} fast_burn={:.2} slow_burn={:.2} fired={} window_p95={}",
                status.name,
                if status.firing { "FIRING" } else { "ok" },
                status.fast_burn,
                status.slow_burn,
                status.times_fired,
                status
                    .window_p95_micros
                    .map(|us| format!("{:.1}ms", us as f64 / 1e3))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        if let Some(h) = self.federation().merged_histogram("tv_core_query_seconds") {
            let s = h.snapshot();
            let fmt = |us: Option<u64>| {
                us.map(|us| format!("{:.1}ms", us as f64 / 1e3))
                    .unwrap_or_else(|| "-".into())
            };
            let _ = writeln!(
                out,
                "federated query latency: count={} p50={} p95={} p99={}",
                s.count,
                fmt(s.p50_micros),
                fmt(s.p95_micros),
                fmt(s.p99_micros),
            );
        }
        let traces = self.recorder.slowest(top_k);
        if !traces.is_empty() {
            let _ = writeln!(out, "--- {} slowest cluster traces ---", traces.len());
            for (rank, t) in traces.iter().enumerate() {
                let mut reasons = t.reasons();
                reasons.dedup();
                let _ = writeln!(
                    out,
                    "#{} {:>9.3}ms [{}] trace={} source={} reasons={}",
                    rank + 1,
                    t.total.as_secs_f64() * 1e3,
                    t.outcome,
                    t.trace_id,
                    t.source,
                    reasons.join(","),
                );
            }
            // The slow-query log: each tail trace classified with a
            // structured verdict (see `obs::analyze`).
            let _ = writeln!(out, "--- slow-query verdicts ---");
            for (rank, t) in traces.iter().enumerate() {
                let d = self.diagnose_trace(t);
                let _ = writeln!(
                    out,
                    "#{} trace={} {:>9.3}ms {}",
                    rank + 1,
                    t.trace_id,
                    t.total.as_secs_f64() * 1e3,
                    d.render(),
                );
            }
        }
        out
    }

    /// Root-cause one recorded cluster trace. The node that executed the
    /// query opened its *own* trace (linked back via `parent_trace`), and
    /// that child holds the pipeline stages — so the join walks node
    /// recorders for the child and diagnoses it against the node's class
    /// baseline. Peer-tier serves have no child and are diagnosed from
    /// the cluster trace itself (routing + peer spans).
    pub fn diagnose_trace(&self, t: &RecordedTrace) -> Diagnosis {
        for node in self.nodes() {
            let rec = node.server.flight_recorder();
            let child = rec.get_child_of(t.trace_id);
            if let Some(child) = child {
                let baseline = node.server.processor.obs.baselines.get(&child.class);
                return diagnose(&child, baseline.as_ref());
            }
        }
        let baseline = self.baselines.get(&t.class);
        diagnose(t, baseline.as_ref())
    }

    /// Open a cluster session for `user` on `published`. The session key
    /// (`user@published`) is the affinity domain: it picks the rotation of
    /// the owner list and the per-node admission session.
    pub fn open_session(
        self: &Arc<Self>,
        published: &str,
        user: impl Into<String>,
    ) -> Result<ClusterSession> {
        let user = user.into();
        // Fail fast on unknown published names (any node can answer this).
        let nodes = self.nodes();
        let node = nodes
            .first()
            .ok_or_else(|| TvError::Exec("cluster has no nodes".into()))?;
        node.server.published(published)?;
        let session_key = format!("{user}@{published}");
        Ok(ClusterSession {
            cluster: Arc::clone(self),
            published: published.to_string(),
            user,
            session_key,
            priority: Priority::Interactive,
            weight: 1.0,
            node_sessions: Mutex::new(HashMap::new()),
            failovers: AtomicU64::new(0),
        })
    }
}

/// A client's connection to the cluster: routes to the affinity node,
/// consults the peer tier, fails over when nodes die.
pub struct ClusterSession {
    cluster: Arc<Cluster>,
    published: String,
    user: String,
    session_key: String,
    priority: Priority,
    weight: f64,
    /// Lazily opened per-node admission sessions (affinity means usually
    /// one; failover adds more).
    node_sessions: Mutex<HashMap<String, ClientSession>>,
    failovers: AtomicU64,
}

impl ClusterSession {
    pub fn session_key(&self) -> &str {
        &self.session_key
    }

    /// The node this session is affine to while it is healthy.
    pub fn affinity_node(&self) -> Result<String> {
        Ok(self
            .cluster
            .route(&self.published, &self.session_key)?
            .candidates[0]
            .clone())
    }

    /// Times this session was served by a non-affinity node.
    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Relaxed)
    }

    /// Demote/restore the admission class (applies to nodes contacted from
    /// now on; cached per-node sessions are reopened).
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = priority;
        self.node_sessions.lock().clear();
    }

    pub fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
        self.node_sessions.lock().clear();
    }

    /// The replicated-tier key for this session's query: published name +
    /// user (row-level security makes results user-specific) + canonical
    /// query text.
    pub fn peer_key(&self, query: &ClientQuery) -> String {
        let mut key = format!("{}\u{1}{}\u{1}", self.published, self.user);
        for f in &query.filters {
            key.push_str(&tabviz_tql::write_expr(f));
            key.push(';');
        }
        key.push('\u{1}');
        key.push_str(&query.group_by.join(","));
        key.push('\u{1}');
        for a in &query.aggs {
            key.push_str(&a.to_string());
            key.push(';');
        }
        key.push('\u{1}');
        for o in &query.order {
            key.push_str(&o.column);
            key.push(if o.asc { '+' } else { '-' });
        }
        if let Some(n) = query.topn {
            key.push_str(&format!("\u{1}top{n}"));
        }
        for s in &query.set_refs {
            key.push_str(&format!("\u{1}set:{s}"));
        }
        key
    }

    /// Evaluate one client query through the cluster: route → peer tier →
    /// node execution → replicated publish; fully traced and recorded.
    pub fn query(&self, query: &ClientQuery) -> Result<ClusterResponse> {
        let cluster = &self.cluster;
        let t0 = Instant::now();
        let trace = begin_trace();
        cluster.registry.counter("tv_cluster_queries_total").inc();

        let route = match cluster.route(&self.published, &self.session_key) {
            Ok(r) => r,
            Err(e) => {
                drop(trace);
                cluster
                    .registry
                    .counter("tv_cluster_unroutable_total")
                    .inc();
                cluster.observe_serve(None, t0.elapsed(), ServeKind::Error);
                return Err(e);
            }
        };
        let (label, why) = match route.kind {
            RouteKind::Primary => ("primary", reason::ROUTE_PRIMARY),
            RouteKind::Failover => ("failover", reason::ROUTE_FAILOVER),
            RouteKind::AllReplicasDown => ("failover", reason::ROUTE_ALL_REPLICAS_DOWN),
        };
        event_with(
            stage::CLUSTER_ROUTE,
            Some(label),
            Some(cluster.node_ordinal(&route.node)),
            Some(why),
        );
        if route.demoted_skipped > 0 {
            cluster
                .registry
                .counter("tv_cluster_health_reroutes_total")
                .inc();
            event_with(
                stage::CLUSTER_ROUTE,
                Some("health"),
                Some(route.demoted_skipped as u64),
                Some(reason::ROUTE_HEALTH_DEMOTED),
            );
        }
        if route.probe {
            cluster
                .registry
                .counter("tv_cluster_health_probes_total")
                .inc();
            event_with(
                stage::CLUSTER_ROUTE,
                Some("probe"),
                Some(cluster.node_ordinal(&route.node)),
                Some(reason::ROUTE_HEALTH_PROBE),
            );
        }
        if route.kind != RouteKind::Primary {
            self.failovers.fetch_add(1, Relaxed);
            cluster.registry.counter("tv_cluster_failovers_total").inc();
            if route.kind == RouteKind::AllReplicasDown {
                cluster
                    .registry
                    .counter("tv_cluster_all_replicas_down_total")
                    .inc();
            }
        }

        // Shared result tier: exact-match probe against the key's replica
        // owners before any node executes.
        let key = self.peer_key(query);
        let peer_probe = {
            let ring = cluster.ring.read();
            cluster.peer.read().get(&ring, &key)
        };
        if let Some((bytes, hit)) = peer_probe {
            if let Ok(chunk) = decode_chunk(&bytes) {
                let (why, detail) = match hit {
                    PeerHit::Primary => (reason::PEER_HIT_PRIMARY, 0),
                    PeerHit::Replica(i) => (reason::PEER_HIT_REPLICA, i as u64),
                };
                event_with(stage::PEER_CACHE, Some("get"), Some(detail), Some(why));
                cluster.registry.counter("tv_cluster_peer_hits_total").inc();
                if matches!(hit, PeerHit::Replica(_)) {
                    cluster
                        .registry
                        .counter("tv_cluster_peer_replica_hits_total")
                        .inc();
                }
                // Peer-tier serves count toward the cluster SLO but not
                // toward any node's health — no node executed.
                cluster.observe_serve(None, t0.elapsed(), ServeKind::Ok);
                self.finish_trace(trace, t0, query, ProfileOutcome::Hit);
                return Ok(ClusterResponse {
                    chunk,
                    outcome: ExecOutcome::LiteralHit,
                    node: route.node,
                    route: route.kind,
                    peer_hit: Some(hit),
                });
            }
        }
        event_with(
            stage::PEER_CACHE,
            Some("get"),
            None,
            Some(reason::PEER_MISS),
        );
        cluster
            .registry
            .counter("tv_cluster_peer_misses_total")
            .inc();

        // Execute on the routed node (its own trace nests under ours).
        let node = cluster
            .node(&route.node)
            .ok_or_else(|| TvError::Exec(format!("routed to unknown node '{}'", route.node)))?;
        node.queries.fetch_add(1, Relaxed);
        let result = self.query_on(&node, query);
        let (chunk, outcome) = match result {
            Ok(v) => v,
            Err(e) => {
                cluster.observe_serve(Some(&route.node), t0.elapsed(), ServeKind::Error);
                self.finish_trace(trace, t0, query, ProfileOutcome::Remote);
                return Err(e);
            }
        };
        cluster.observe_serve(
            Some(&route.node),
            t0.elapsed(),
            if outcome == ExecOutcome::DegradedStale {
                ServeKind::Degraded
            } else {
                ServeKind::Ok
            },
        );

        // Publish fresh backend results to the key's replica owners, tagged
        // with the published source so close/refresh can purge them.
        if outcome == ExecOutcome::Remote {
            if let Ok(bytes) = encode_chunk(&chunk) {
                // Source tag plus one table tag per table the published
                // relation reads: a table refresh then purges peer-tier
                // copies as precisely as it purges L1 and canonical L2.
                let mut tags = vec![source_tag(&self.published)];
                if let Ok(published) = node.server.published(&self.published) {
                    for table in tables_of(&published.relation) {
                        tags.push(table_tag(&published.backing, &table));
                    }
                }
                let ring = cluster.ring.read();
                let fanout = cluster.peer.read().replication() as u64;
                cluster.peer.read().put_tagged(&ring, &key, bytes, &tags);
                drop(ring);
                event_with(stage::PEER_CACHE, Some("put"), Some(fanout), None);
            }
        }

        let profile_outcome = match outcome {
            ExecOutcome::IntelligentHit | ExecOutcome::LiteralHit | ExecOutcome::L2Hit => {
                ProfileOutcome::Hit
            }
            ExecOutcome::Remote => ProfileOutcome::Remote,
            ExecOutcome::DegradedStale => ProfileOutcome::DegradedStale,
        };
        self.finish_trace(trace, t0, query, profile_outcome);
        Ok(ClusterResponse {
            chunk,
            outcome,
            node: route.node,
            route: route.kind,
            peer_hit: None,
        })
    }

    /// Run the query through a node's admission session, opening (and
    /// caching) one on first contact.
    fn query_on(&self, node: &ClusterNode, query: &ClientQuery) -> Result<(Chunk, ExecOutcome)> {
        let mut sessions = self.node_sessions.lock();
        if !sessions.contains_key(&node.name) {
            let mut s = node.server.connect(&self.published, self.user.clone())?;
            s.set_priority(self.priority);
            s.set_weight(self.weight);
            sessions.insert(node.name.clone(), s);
        }
        sessions[&node.name].query(query)
    }

    fn finish_trace(
        &self,
        trace: tabviz_obs::TraceHandle,
        t0: Instant,
        query: &ClientQuery,
        outcome: ProfileOutcome,
    ) {
        let total = t0.elapsed();
        let finished = trace.finish(total);
        if finished.is_captured() {
            let text = format!(
                "[{}] group_by={:?} aggs={} filters={}",
                self.session_key,
                query.group_by,
                query.aggs.len(),
                query.filters.len()
            );
            // Same shape key as the node-side class (filters excluded):
            // cluster-scope fingerprints cover peer-tier serves, which
            // never reach a node pipeline.
            let class = format!(
                "{}|g:{}|a:{}",
                self.published,
                query.group_by.join(","),
                query.aggs.len()
            );
            if tabviz_obs::analyze::enabled() {
                self.cluster
                    .baselines
                    .observe(&class, &finished.events, total);
            }
            self.cluster.recorder.record(
                RecordedTrace::from_finished(finished, text, &self.published, outcome)
                    .with_class(class),
            );
        }
    }
}
