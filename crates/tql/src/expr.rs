//! Scalar expressions with vectorized evaluation.
//!
//! Expressions follow the paper's internal query model: comparisons,
//! boolean connectives, arithmetic, IN-lists ("large enumerations",
//! Sect. 3.1), ranges, and a set of scalar functions with a cost profile
//! ("certain operations, such as string manipulations, are much more
//! expensive than others", Sect. 4.2.2).
//!
//! Evaluation is chunk-at-a-time ("the engine employs vectorization in
//! expression evaluation") with SQL three-valued logic: comparisons against
//! NULL yield NULL, AND/OR use Kleene semantics, and filters treat NULL as
//! false.

use crate::datefn;
use std::collections::BTreeSet;
use std::fmt;
use tabviz_common::{
    Chunk, Collation, ColumnVec, DataType, NullMask, Result, Schema, SelVec, TvError, Value, Values,
};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Scalar functions. The relative cost weights back the TDE's empirical
/// cost profile for parallelization decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Upper,
    Lower,
    Strlen,
    Abs,
    Floor,
    Ceil,
    Year,
    Month,
    Day,
    Weekday,
    IfNull,
}

impl ScalarFunc {
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Strlen => "STRLEN",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Floor => "FLOOR",
            ScalarFunc::Ceil => "CEIL",
            ScalarFunc::Year => "YEAR",
            ScalarFunc::Month => "MONTH",
            ScalarFunc::Day => "DAY",
            ScalarFunc::Weekday => "WEEKDAY",
            ScalarFunc::IfNull => "IFNULL",
        }
    }

    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "UPPER" => ScalarFunc::Upper,
            "LOWER" => ScalarFunc::Lower,
            "STRLEN" => ScalarFunc::Strlen,
            "ABS" => ScalarFunc::Abs,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" => ScalarFunc::Ceil,
            "YEAR" => ScalarFunc::Year,
            "MONTH" => ScalarFunc::Month,
            "DAY" => ScalarFunc::Day,
            "WEEKDAY" => ScalarFunc::Weekday,
            "IFNULL" => ScalarFunc::IfNull,
            _ => return None,
        })
    }

    pub fn arity(self) -> usize {
        match self {
            ScalarFunc::IfNull => 2,
            _ => 1,
        }
    }

    /// Relative per-row cost (empirical cost profile, Sect. 4.2.2).
    pub fn cost_weight(self) -> u32 {
        match self {
            ScalarFunc::Upper | ScalarFunc::Lower => 8,
            ScalarFunc::Strlen => 4,
            ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day | ScalarFunc::Weekday => 3,
            ScalarFunc::Abs | ScalarFunc::Floor | ScalarFunc::Ceil | ScalarFunc::IfNull => 1,
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to an input column by name.
    Column(String),
    /// A constant.
    Literal(Value),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr IN (v1, .., vn)` — the paper's "large enumerations" that may be
    /// externalized into temporary tables (Sect. 3.1, Sect. 5.3).
    In {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// Inclusive range test.
    Between {
        expr: Box<Expr>,
        low: Value,
        high: Value,
    },
    Func {
        func: ScalarFunc,
        args: Vec<Expr>,
    },
}

/// Shorthand constructors used pervasively in tests and query builders.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// Conjunction of a list of predicates (`TRUE` when empty).
pub fn and_all(mut preds: Vec<Expr>) -> Expr {
    match preds.len() {
        0 => lit(true),
        1 => preds.pop().unwrap(),
        _ => {
            let mut it = preds.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, p| bin(BinOp::And, acc, p))
        }
    }
}

impl Expr {
    /// Collect the names of all referenced columns.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.collect_columns(&mut set);
        set
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(n) => {
                out.insert(n.clone());
            }
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::In { expr, .. } | Expr::Between { expr, .. } => expr.collect_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Rename column references (used when pushing predicates through
    /// projections and when matching cached queries).
    pub fn rename_columns(&self, f: &dyn Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(n) => Expr::Column(f(n)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.rename_columns(f)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.rename_columns(f)),
                right: Box::new(right.rename_columns(f)),
            },
            Expr::In {
                expr,
                list,
                negated,
            } => Expr::In {
                expr: Box::new(expr.rename_columns(f)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.rename_columns(f)),
                low: low.clone(),
                high: high.clone(),
            },
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args.iter().map(|a| a.rename_columns(f)).collect(),
            },
        }
    }

    /// Result type of the expression against the given input schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(n) => Ok(schema.field_by_name(n)?.dtype),
            Expr::Literal(v) => v
                .data_type()
                .ok_or_else(|| TvError::Type("untyped NULL literal".into())),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => Ok(DataType::Bool),
                UnaryOp::Neg => expr.data_type(schema),
            },
            Expr::Binary { op, left, right } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Ok(DataType::Bool)
                } else {
                    let lt = left.data_type(schema)?;
                    let rt = right.data_type(schema)?;
                    if lt == DataType::Real || rt == DataType::Real || *op == BinOp::Div {
                        Ok(DataType::Real)
                    } else {
                        Ok(DataType::Int)
                    }
                }
            }
            Expr::In { .. } | Expr::Between { .. } => Ok(DataType::Bool),
            Expr::Func { func, args } => match func {
                ScalarFunc::Upper | ScalarFunc::Lower => Ok(DataType::Str),
                ScalarFunc::Strlen
                | ScalarFunc::Year
                | ScalarFunc::Month
                | ScalarFunc::Day
                | ScalarFunc::Weekday => Ok(DataType::Int),
                ScalarFunc::Abs => args[0].data_type(schema),
                ScalarFunc::Floor | ScalarFunc::Ceil => Ok(DataType::Int),
                ScalarFunc::IfNull => args[0].data_type(schema),
            },
        }
    }

    /// Per-row evaluation cost from the empirical cost profile (Sect. 4.2.2);
    /// the parallel planner multiplies this by row counts.
    pub fn cost_weight(&self) -> u32 {
        match self {
            Expr::Column(_) => 1,
            Expr::Literal(_) => 0,
            Expr::Unary { expr, .. } => 1 + expr.cost_weight(),
            Expr::Binary { left, right, .. } => 1 + left.cost_weight() + right.cost_weight(),
            Expr::In { expr, list, .. } => {
                // Binary-searchable, so logarithmic in the list size.
                expr.cost_weight() + 1 + (list.len().max(2)).ilog2()
            }
            Expr::Between { expr, .. } => 2 + expr.cost_weight(),
            Expr::Func { func, args } => {
                func.cost_weight() + args.iter().map(Expr::cost_weight).sum::<u32>()
            }
        }
    }

    /// Evaluate a constant expression to a single value, or `None` if the
    /// expression references columns.
    pub fn const_eval(&self) -> Option<Value> {
        if !self.columns().is_empty() {
            return None;
        }
        // Evaluate against a dummy one-row chunk with an empty schema.
        let schema = std::sync::Arc::new(Schema::empty());
        let chunk = Chunk::from_rows(schema, &[vec![]]).ok()?;
        let out = self.eval(&chunk).ok()?;
        Some(out.get(0))
    }

    /// Vectorized evaluation over a chunk.
    pub fn eval(&self, chunk: &Chunk) -> Result<ColumnVec> {
        match self {
            Expr::Column(n) => Ok(chunk.column_by_name(n)?.clone()),
            Expr::Literal(v) => {
                let n = chunk.len();
                let dtype = v.data_type().unwrap_or(DataType::Bool);
                let values: Vec<Value> = vec![v.clone(); n];
                ColumnVec::from_iter_typed(dtype, values.iter())
            }
            Expr::Unary { op, expr } => {
                let input = expr.eval(chunk)?;
                eval_unary(*op, &input)
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval(chunk)?;
                let r = right.eval(chunk)?;
                let collation = binary_collation(left, right, chunk.schema());
                eval_binary(*op, &l, &r, collation)
            }
            Expr::In {
                expr,
                list,
                negated,
            } => {
                let input = expr.eval(chunk)?;
                let collation = expr_collation(expr, chunk.schema());
                let mut sorted: Vec<Value> = list.clone();
                if collation != Collation::Binary {
                    // Normalize to the collation key space for matching.
                    sorted = sorted
                        .into_iter()
                        .map(|v| match v {
                            Value::Str(s) => Value::Str(collation.key(&s)),
                            other => other,
                        })
                        .collect();
                }
                sorted.sort();
                sorted.dedup();
                let n = input.len();
                let mut out = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for i in 0..n {
                    let v = input.get(i);
                    if v.is_null() {
                        out.push(false);
                        valid.push(false);
                        continue;
                    }
                    let probe = match (&v, collation) {
                        (Value::Str(s), c) if c != Collation::Binary => Value::Str(c.key(s)),
                        _ => v,
                    };
                    let found = sorted.binary_search(&probe).is_ok();
                    out.push(found != *negated);
                    valid.push(true);
                }
                Ok(ColumnVec::new(
                    Values::Bool(out),
                    NullMask::from_valid_bits(valid),
                ))
            }
            Expr::Between { expr, low, high } => {
                let input = expr.eval(chunk)?;
                let collation = expr_collation(expr, chunk.schema());
                let n = input.len();
                let mut out = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for i in 0..n {
                    let v = input.get(i);
                    if v.is_null() {
                        out.push(false);
                        valid.push(false);
                    } else {
                        let ge = v.cmp_collated(low, collation) != std::cmp::Ordering::Less;
                        let le = v.cmp_collated(high, collation) != std::cmp::Ordering::Greater;
                        out.push(ge && le);
                        valid.push(true);
                    }
                }
                Ok(ColumnVec::new(
                    Values::Bool(out),
                    NullMask::from_valid_bits(valid),
                ))
            }
            Expr::Func { func, args } => {
                if args.len() != func.arity() {
                    return Err(TvError::Bind(format!(
                        "{} expects {} argument(s), got {}",
                        func.name(),
                        func.arity(),
                        args.len()
                    )));
                }
                let inputs: Vec<ColumnVec> =
                    args.iter().map(|a| a.eval(chunk)).collect::<Result<_>>()?;
                eval_func(*func, &inputs)
            }
        }
    }

    /// Evaluate as a filter predicate: NULL ⇒ row rejected.
    pub fn eval_predicate(&self, chunk: &Chunk) -> Result<Vec<bool>> {
        let out = self.eval(chunk)?;
        if out.data_type() != DataType::Bool {
            return Err(TvError::Type(format!(
                "predicate evaluates to {}, expected bool",
                out.data_type()
            )));
        }
        Ok((0..out.len())
            .map(|i| matches!(out.get(i), Value::Bool(true)))
            .collect())
    }

    /// Evaluate as a filter predicate into a selection vector. Semantics
    /// match [`Expr::eval_predicate`] (NULL ⇒ row rejected), but an all-true
    /// result collapses to [`SelVec::All`] so consumers can skip the gather,
    /// and simple column-vs-literal comparisons build the id list straight
    /// from the typed column slice.
    pub fn eval_predicate_sel(&self, chunk: &Chunk) -> Result<SelVec> {
        if let Expr::Binary { op, left, right } = self {
            if op.is_comparison() {
                if let (Expr::Column(name), Expr::Literal(litv)) = (left.as_ref(), right.as_ref()) {
                    let colv = chunk.column_by_name(name)?;
                    if let Some(sel) = typed_cmp_sel(*op, colv, litv) {
                        return Ok(sel);
                    }
                }
            }
        }
        let out = self.eval(chunk)?;
        let Some(bits) = out.values.as_bool() else {
            return Err(TvError::Type(format!(
                "predicate evaluates to {}, expected bool",
                out.data_type()
            )));
        };
        match out.nulls.valid_bits() {
            None => Ok(SelVec::from_mask(bits)),
            Some(valid) => {
                let mut ids = Vec::new();
                for (i, (&b, &v)) in bits.iter().zip(valid).enumerate() {
                    if b && v {
                        ids.push(i as u32);
                    }
                }
                if ids.len() == bits.len() {
                    return Ok(SelVec::all(bits.len()));
                }
                Ok(SelVec::Ids(ids))
            }
        }
    }
}

/// Typed selection-vector builder for `column <cmp> literal` over the typed
/// slice combinations [`eval_binary`]'s fast paths cover (Int/Int, Real/Real).
/// Returns `None` when the combination needs the generic evaluator.
fn typed_cmp_sel(op: BinOp, col: &ColumnVec, litv: &Value) -> Option<SelVec> {
    let n = col.len();
    let valid = col.nulls.valid_bits();
    let mut ids = Vec::new();
    match (&col.values, litv) {
        (Values::Int(a), Value::Int(b)) => {
            for (i, x) in a.iter().enumerate() {
                if valid.is_none_or(|v| v[i]) && cmp_holds(op, x.cmp(b)) {
                    ids.push(i as u32);
                }
            }
        }
        (Values::Real(a), Value::Real(b)) => {
            for (i, x) in a.iter().enumerate() {
                if valid.is_none_or(|v| v[i]) && cmp_holds(op, x.total_cmp(b)) {
                    ids.push(i as u32);
                }
            }
        }
        _ => return None,
    }
    if ids.len() == n {
        return Some(SelVec::all(n));
    }
    Some(SelVec::Ids(ids))
}

/// Collation to use when comparing the results of two sub-expressions: if
/// either side is a string column, use that column's declared collation.
/// Mixed collations are a "collation conflict" (Sect. 3.2) — resolved here in
/// favor of the left side, but the cache layer refuses to match across them.
fn binary_collation(left: &Expr, right: &Expr, schema: &Schema) -> Collation {
    expr_collation(left, schema).max_specific(expr_collation(right, schema))
}

fn expr_collation(e: &Expr, schema: &Schema) -> Collation {
    match e {
        Expr::Column(n) => schema
            .field_by_name(n)
            .map(|f| f.collation)
            .unwrap_or_default(),
        Expr::Func {
            func: ScalarFunc::Upper | ScalarFunc::Lower,
            args,
        } => args
            .first()
            .map(|a| expr_collation(a, schema))
            .unwrap_or_default(),
        _ => Collation::Binary,
    }
}

trait MaxSpecific {
    fn max_specific(self, other: Collation) -> Collation;
}

impl MaxSpecific for Collation {
    fn max_specific(self, other: Collation) -> Collation {
        if self == Collation::Binary {
            other
        } else {
            self
        }
    }
}

fn eval_unary(op: UnaryOp, input: &ColumnVec) -> Result<ColumnVec> {
    let n = input.len();
    match op {
        UnaryOp::IsNull => {
            let out: Vec<bool> = (0..n).map(|i| !input.is_valid(i)).collect();
            Ok(ColumnVec::from_values(Values::Bool(out)))
        }
        UnaryOp::IsNotNull => {
            let out: Vec<bool> = (0..n).map(|i| input.is_valid(i)).collect();
            Ok(ColumnVec::from_values(Values::Bool(out)))
        }
        UnaryOp::Not => match &input.values {
            Values::Bool(v) => {
                let out = v.iter().map(|b| !b).collect();
                Ok(ColumnVec::new(Values::Bool(out), input.nulls.clone()))
            }
            other => Err(TvError::Type(format!(
                "NOT requires bool, got {}",
                other.data_type()
            ))),
        },
        UnaryOp::Neg => match &input.values {
            Values::Int(v) => Ok(ColumnVec::new(
                Values::Int(v.iter().map(|x| -x).collect()),
                input.nulls.clone(),
            )),
            Values::Real(v) => Ok(ColumnVec::new(
                Values::Real(v.iter().map(|x| -x).collect()),
                input.nulls.clone(),
            )),
            other => Err(TvError::Type(format!(
                "cannot negate {}",
                other.data_type()
            ))),
        },
    }
}

fn eval_binary(op: BinOp, l: &ColumnVec, r: &ColumnVec, collation: Collation) -> Result<ColumnVec> {
    let n = l.len().max(r.len());
    // Broadcast single-row (literal) inputs.
    let li = |i: usize| if l.len() == 1 { 0 } else { i };
    let ri = |i: usize| if r.len() == 1 { 0 } else { i };

    if matches!(op, BinOp::And | BinOp::Or) {
        return eval_kleene(op, l, r, n, &li, &ri);
    }

    if op.is_comparison() {
        // Fast typed paths for the hot combinations.
        let mut out = Vec::with_capacity(n);
        let mut valid = Vec::with_capacity(n);
        match (&l.values, &r.values) {
            (Values::Int(a), Values::Int(b)) => {
                for i in 0..n {
                    let (x, y) = (li(i), ri(i));
                    if l.is_valid(x) && r.is_valid(y) {
                        out.push(cmp_holds(op, a[x].cmp(&b[y])));
                        valid.push(true);
                    } else {
                        out.push(false);
                        valid.push(false);
                    }
                }
            }
            (Values::Real(a), Values::Real(b)) => {
                for i in 0..n {
                    let (x, y) = (li(i), ri(i));
                    if l.is_valid(x) && r.is_valid(y) {
                        out.push(cmp_holds(op, a[x].total_cmp(&b[y])));
                        valid.push(true);
                    } else {
                        out.push(false);
                        valid.push(false);
                    }
                }
            }
            _ => {
                for i in 0..n {
                    let (x, y) = (li(i), ri(i));
                    if l.is_valid(x) && r.is_valid(y) {
                        let ord = l.get(x).cmp_collated(&r.get(y), collation);
                        out.push(cmp_holds(op, ord));
                        valid.push(true);
                    } else {
                        out.push(false);
                        valid.push(false);
                    }
                }
            }
        }
        return Ok(ColumnVec::new(
            Values::Bool(out),
            NullMask::from_valid_bits(valid),
        ));
    }

    // Arithmetic. Integer ops stay integer except division.
    let result_real = matches!(&l.values, Values::Real(_))
        || matches!(&r.values, Values::Real(_))
        || op == BinOp::Div;
    let mut valid = Vec::with_capacity(n);
    if result_real {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (li(i), ri(i));
            if l.is_valid(x) && r.is_valid(y) {
                let a = l.get(x).as_real()?;
                let b = r.get(y).as_real()?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            valid.push(false);
                            out.push(0.0);
                            continue;
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                out.push(v);
                valid.push(true);
            } else {
                out.push(0.0);
                valid.push(false);
            }
        }
        Ok(ColumnVec::new(
            Values::Real(out),
            NullMask::from_valid_bits(valid),
        ))
    } else {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (li(i), ri(i));
            if l.is_valid(x) && r.is_valid(y) {
                let a = l.get(x).as_int()?;
                let b = r.get(y).as_int()?;
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    _ => unreachable!(),
                };
                out.push(v);
                valid.push(true);
            } else {
                out.push(0);
                valid.push(false);
            }
        }
        Ok(ColumnVec::new(
            Values::Int(out),
            NullMask::from_valid_bits(valid),
        ))
    }
}

fn cmp_holds(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!(),
    }
}

/// Kleene AND/OR: `false AND NULL = false`, `true OR NULL = true`.
fn eval_kleene(
    op: BinOp,
    l: &ColumnVec,
    r: &ColumnVec,
    n: usize,
    li: &dyn Fn(usize) -> usize,
    ri: &dyn Fn(usize) -> usize,
) -> Result<ColumnVec> {
    let (lv, rv) = match (&l.values, &r.values) {
        (Values::Bool(a), Values::Bool(b)) => (a, b),
        _ => return Err(TvError::Type("AND/OR require bool operands".into())),
    };
    let mut out = Vec::with_capacity(n);
    let mut valid = Vec::with_capacity(n);
    for i in 0..n {
        let (x, y) = (li(i), ri(i));
        let a = l.is_valid(x).then(|| lv[x]);
        let b = r.is_valid(y).then(|| rv[y]);
        let res = match op {
            BinOp::And => match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!(),
        };
        out.push(res.unwrap_or(false));
        valid.push(res.is_some());
    }
    Ok(ColumnVec::new(
        Values::Bool(out),
        NullMask::from_valid_bits(valid),
    ))
}

fn eval_func(func: ScalarFunc, inputs: &[ColumnVec]) -> Result<ColumnVec> {
    let a = &inputs[0];
    let n = a.len();
    let map_str = |f: &dyn Fn(&str) -> Value| -> Result<ColumnVec> {
        match &a.values {
            Values::Str(v) => {
                let vals: Vec<Value> = (0..n)
                    .map(|i| if a.is_valid(i) { f(&v[i]) } else { Value::Null })
                    .collect();
                let dtype = vals
                    .iter()
                    .find_map(|v| v.data_type())
                    .unwrap_or(DataType::Str);
                ColumnVec::from_iter_typed(dtype, vals.iter())
            }
            other => Err(TvError::Type(format!(
                "{} requires a string, got {}",
                func.name(),
                other.data_type()
            ))),
        }
    };
    let map_date = |f: &dyn Fn(i32) -> i64| -> Result<ColumnVec> {
        match &a.values {
            Values::Date(v) => {
                let out: Vec<i64> = v.iter().map(|&d| f(d)).collect();
                Ok(ColumnVec::new(Values::Int(out), a.nulls.clone()))
            }
            other => Err(TvError::Type(format!(
                "{} requires a date, got {}",
                func.name(),
                other.data_type()
            ))),
        }
    };
    match func {
        ScalarFunc::Upper => map_str(&|s| Value::Str(s.to_uppercase())),
        ScalarFunc::Lower => map_str(&|s| Value::Str(s.to_lowercase())),
        ScalarFunc::Strlen => match &a.values {
            Values::Str(v) => {
                let out: Vec<i64> = v.iter().map(|s| s.chars().count() as i64).collect();
                Ok(ColumnVec::new(Values::Int(out), a.nulls.clone()))
            }
            other => Err(TvError::Type(format!(
                "STRLEN requires a string, got {}",
                other.data_type()
            ))),
        },
        ScalarFunc::Abs => match &a.values {
            Values::Int(v) => Ok(ColumnVec::new(
                Values::Int(v.iter().map(|x| x.abs()).collect()),
                a.nulls.clone(),
            )),
            Values::Real(v) => Ok(ColumnVec::new(
                Values::Real(v.iter().map(|x| x.abs()).collect()),
                a.nulls.clone(),
            )),
            other => Err(TvError::Type(format!(
                "ABS requires a number, got {}",
                other.data_type()
            ))),
        },
        ScalarFunc::Floor | ScalarFunc::Ceil => match &a.values {
            Values::Real(v) => {
                let out: Vec<i64> = v
                    .iter()
                    .map(|x| {
                        if func == ScalarFunc::Floor {
                            x.floor() as i64
                        } else {
                            x.ceil() as i64
                        }
                    })
                    .collect();
                Ok(ColumnVec::new(Values::Int(out), a.nulls.clone()))
            }
            Values::Int(v) => Ok(ColumnVec::new(Values::Int(v.clone()), a.nulls.clone())),
            other => Err(TvError::Type(format!(
                "{} requires a number, got {}",
                func.name(),
                other.data_type()
            ))),
        },
        ScalarFunc::Year => map_date(&|d| datefn::year(d) as i64),
        ScalarFunc::Month => map_date(&|d| datefn::month(d) as i64),
        ScalarFunc::Day => map_date(&|d| datefn::day(d) as i64),
        ScalarFunc::Weekday => map_date(&|d| datefn::weekday(d) as i64),
        ScalarFunc::IfNull => {
            let b = &inputs[1];
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    if a.is_valid(i) {
                        a.get(i)
                    } else {
                        b.get(if b.len() == 1 { 0 } else { i })
                    }
                })
                .collect();
            let dtype = a.data_type();
            ColumnVec::from_iter_typed(dtype, vals.iter())
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(n) => write!(f, "[{n}]"),
            Expr::Literal(v) => write!(f, "{}", v.to_literal()),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
                UnaryOp::IsNull => write!(f, "({expr}) IS NULL"),
                UnaryOp::IsNotNull => write!(f, "({expr}) IS NOT NULL"),
            },
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::In {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v.to_literal())?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, low, high } => {
                write!(
                    f,
                    "({expr} BETWEEN {} AND {})",
                    low.to_literal(),
                    high.to_literal()
                )
            }
            Expr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::Field;

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
                Field::new("dist", DataType::Real),
                Field::new("day", DataType::Date),
            ])
            .unwrap(),
        );
        Chunk::from_rows(
            schema,
            &[
                vec![
                    "AA".into(),
                    Value::Int(10),
                    Value::Real(100.0),
                    Value::Date(0),
                ],
                vec!["DL".into(), Value::Null, Value::Real(50.0), Value::Date(1)],
                vec![
                    "WN".into(),
                    Value::Int(-5),
                    Value::Real(0.0),
                    Value::Date(16_222),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let c = chunk();
        let v = col("delay").eval(&c).unwrap();
        assert_eq!(v.get(0), Value::Int(10));
        assert_eq!(v.get(1), Value::Null);
        let l = lit(5i64).eval(&c).unwrap();
        assert_eq!(l.len(), 3); // literals materialize to chunk length
    }

    #[test]
    fn comparison_with_null_three_valued() {
        let c = chunk();
        let pred = bin(BinOp::Gt, col("delay"), lit(0i64));
        let mask = pred.eval_predicate(&c).unwrap();
        assert_eq!(mask, vec![true, false, false]); // NULL ⇒ rejected
    }

    #[test]
    fn predicate_sel_matches_mask() {
        let c = chunk();
        let preds = vec![
            bin(BinOp::Gt, col("delay"), lit(0i64)), // typed Int fast path
            bin(BinOp::Ge, col("dist"), lit(0.0)),   // typed Real fast path
            bin(BinOp::Eq, col("carrier"), lit("AA")), // generic path
            lit(true),                               // no null mask at all
        ];
        for p in preds {
            let mask = p.eval_predicate(&c).unwrap();
            let sel = p.eval_predicate_sel(&c).unwrap();
            assert_eq!(sel.to_mask(c.len()), mask, "{p}");
        }
        // All-true collapses to the compact form.
        assert!(lit(true).eval_predicate_sel(&c).unwrap().is_all());
    }

    #[test]
    fn kleene_logic() {
        let c = chunk();
        // delay > 0 OR dist >= 0  — row 2 has NULL delay but dist 50 ⇒ true
        let pred = bin(
            BinOp::Or,
            bin(BinOp::Gt, col("delay"), lit(0i64)),
            bin(BinOp::Ge, col("dist"), lit(0.0)),
        );
        assert_eq!(pred.eval_predicate(&c).unwrap(), vec![true, true, true]);
        // delay > 0 AND dist >= 0 — row 2 NULL AND true ⇒ NULL ⇒ rejected
        let pred = bin(
            BinOp::And,
            bin(BinOp::Gt, col("delay"), lit(0i64)),
            bin(BinOp::Ge, col("dist"), lit(0.0)),
        );
        assert_eq!(pred.eval_predicate(&c).unwrap(), vec![true, false, false]);
    }

    #[test]
    fn arithmetic_promotion_and_div_by_zero() {
        let c = chunk();
        let e = bin(BinOp::Add, col("delay"), lit(1.5));
        let v = e.eval(&c).unwrap();
        assert_eq!(v.get(0), Value::Real(11.5));
        assert_eq!(v.get(1), Value::Null);
        let d = bin(BinOp::Div, lit(1i64), lit(0i64)).eval(&c).unwrap();
        assert_eq!(d.get(0), Value::Null); // div by zero → NULL
    }

    #[test]
    fn in_list_and_between() {
        let c = chunk();
        let e = Expr::In {
            expr: Box::new(col("carrier")),
            list: vec!["AA".into(), "WN".into()],
            negated: false,
        };
        assert_eq!(e.eval_predicate(&c).unwrap(), vec![true, false, true]);
        let ne = Expr::In {
            expr: Box::new(col("carrier")),
            list: vec!["AA".into()],
            negated: true,
        };
        assert_eq!(ne.eval_predicate(&c).unwrap(), vec![false, true, true]);
        let b = Expr::Between {
            expr: Box::new(col("delay")),
            low: Value::Int(0),
            high: Value::Int(100),
        };
        assert_eq!(b.eval_predicate(&c).unwrap(), vec![true, false, false]);
    }

    #[test]
    fn is_null_and_not() {
        let c = chunk();
        let e = Expr::Unary {
            op: UnaryOp::IsNull,
            expr: Box::new(col("delay")),
        };
        assert_eq!(e.eval_predicate(&c).unwrap(), vec![false, true, false]);
        let ne = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(bin(BinOp::Eq, col("carrier"), lit("AA"))),
        };
        assert_eq!(ne.eval_predicate(&c).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn scalar_funcs() {
        let c = chunk();
        let up = Expr::Func {
            func: ScalarFunc::Lower,
            args: vec![col("carrier")],
        };
        assert_eq!(up.eval(&c).unwrap().get(0), Value::Str("aa".into()));
        let y = Expr::Func {
            func: ScalarFunc::Year,
            args: vec![col("day")],
        };
        assert_eq!(y.eval(&c).unwrap().get(2), Value::Int(2014)); // 16222 days ≈ 2014-06
        let ifn = Expr::Func {
            func: ScalarFunc::IfNull,
            args: vec![col("delay"), lit(0i64)],
        };
        assert_eq!(ifn.eval(&c).unwrap().get(1), Value::Int(0));
    }

    #[test]
    fn collation_aware_equality() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("c", DataType::Str).with_collation(Collation::CaseInsensitive)
            ])
            .unwrap(),
        );
        let c = Chunk::from_rows(schema, &[vec!["Alpha".into()], vec!["beta".into()]]).unwrap();
        let pred = bin(BinOp::Eq, col("c"), lit("ALPHA"));
        assert_eq!(pred.eval_predicate(&c).unwrap(), vec![true, false]);
        let inlist = Expr::In {
            expr: Box::new(col("c")),
            list: vec!["BETA".into()],
            negated: false,
        };
        assert_eq!(inlist.eval_predicate(&c).unwrap(), vec![false, true]);
    }

    #[test]
    fn columns_and_rename() {
        let e = bin(
            BinOp::And,
            bin(BinOp::Gt, col("a"), lit(1i64)),
            bin(BinOp::Eq, col("b"), col("a")),
        );
        let cols = e.columns();
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
        let renamed = e.rename_columns(&|n| format!("t.{n}"));
        assert!(renamed.columns().contains("t.a"));
    }

    #[test]
    fn const_eval() {
        assert_eq!(
            bin(BinOp::Add, lit(2i64), lit(3i64)).const_eval(),
            Some(Value::Int(5))
        );
        assert_eq!(col("x").const_eval(), None);
    }

    #[test]
    fn display_roundtrip_shape() {
        let e = bin(BinOp::Gt, col("delay"), lit(10i64));
        assert_eq!(e.to_string(), "([delay] > 10)");
        let f = Expr::Func {
            func: ScalarFunc::Upper,
            args: vec![col("c")],
        };
        assert_eq!(f.to_string(), "UPPER([c])");
    }

    #[test]
    fn cost_weights_rank_strings_higher() {
        let cheap = bin(BinOp::Gt, col("delay"), lit(10i64));
        let pricey = Expr::Func {
            func: ScalarFunc::Upper,
            args: vec![col("c")],
        };
        assert!(pricey.cost_weight() > cheap.cost_weight());
    }

    #[test]
    fn and_all_builder() {
        assert_eq!(and_all(vec![]), lit(true));
        let one = bin(BinOp::Eq, col("a"), lit(1i64));
        assert_eq!(and_all(vec![one.clone()]), one.clone());
        let both = and_all(vec![one.clone(), one.clone()]);
        assert!(matches!(both, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn data_types() {
        let schema = Schema::new(vec![
            Field::new("s", DataType::Str),
            Field::new("i", DataType::Int),
        ])
        .unwrap();
        assert_eq!(
            bin(BinOp::Gt, col("i"), lit(1i64))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            bin(BinOp::Div, col("i"), lit(2i64))
                .data_type(&schema)
                .unwrap(),
            DataType::Real
        );
        assert_eq!(
            Expr::Func {
                func: ScalarFunc::Strlen,
                args: vec![col("s")]
            }
            .data_type(&schema)
            .unwrap(),
            DataType::Int
        );
    }
}
