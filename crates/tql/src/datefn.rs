//! Calendar arithmetic for `Date` values (days since 1970-01-01).
//!
//! Uses the standard civil-calendar conversion (Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms), which is exact over the
//! full proleptic Gregorian calendar.

/// Convert a civil date to days since 1970-01-01.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Convert days since 1970-01-01 to a `(year, month, day)` civil date.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

/// Year of a date value.
pub fn year(days: i32) -> i32 {
    civil_from_days(days).0
}

/// Month (1–12) of a date value.
pub fn month(days: i32) -> u32 {
    civil_from_days(days).1
}

/// Day of month (1–31) of a date value.
pub fn day(days: i32) -> u32 {
    civil_from_days(days).2
}

/// Day of week: 0 = Sunday .. 6 = Saturday (1970-01-01 was a Thursday).
pub fn weekday(days: i32) -> u32 {
    (days + 4).rem_euclid(7) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970_01_01() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(weekday(0), 4); // Thursday
    }

    #[test]
    fn known_dates() {
        // 2015-05-31: first day of SIGMOD'15, a Sunday.
        let d = days_from_civil(2015, 5, 31);
        assert_eq!(civil_from_days(d), (2015, 5, 31));
        assert_eq!(weekday(d), 0);
        assert_eq!(year(d), 2015);
        assert_eq!(month(d), 5);
        assert_eq!(day(d), 31);
    }

    #[test]
    fn leap_years() {
        let d = days_from_civil(2000, 2, 29);
        assert_eq!(civil_from_days(d), (2000, 2, 29));
        assert_eq!(civil_from_days(d + 1), (2000, 3, 1));
        // 1900 was not a leap year
        let d = days_from_civil(1900, 2, 28);
        assert_eq!(civil_from_days(d + 1), (1900, 3, 1));
    }

    #[test]
    fn roundtrip_sweep() {
        for z in (-200_000..200_000).step_by(37) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn negative_days_before_epoch() {
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        assert_eq!(weekday(-1), 3); // Wednesday
    }
}
