//! Textual TQL front end.
//!
//! "The TDE ... has a classic query compiler that accepts a TQL query as
//! text" (Sect. 4.1.2). TQL here is an s-expression syntax that maps
//! one-to-one onto the logical tree:
//!
//! ```text
//! (topn 5 ((flights desc))
//!   (aggregate ((carrier))
//!              ((count as flights) (avg delay as avg_delay))
//!     (select (> delay 10)
//!       (scan flights))))
//! ```
//!
//! Grammar:
//! ```text
//! plan := (scan NAME col*)
//!       | (select EXPR plan)
//!       | (project ((EXPR as NAME)*) plan)
//!       | (join inner|left ((LCOL RCOL)*) plan plan)
//!       | (aggregate (group*) (aggcall*) plan)        group := NAME | (EXPR as NAME)
//!       | (order ((COL asc|desc)*) plan)
//!       | (topn N ((COL asc|desc)*) plan)
//!       | (distinct plan)
//! aggcall := (AGGFUNC [EXPR] as NAME)                 count with no arg = COUNT(*)
//! expr := NUMBER | "STRING" | true | false | null | DATE@N | IDENT
//!       | (OP expr expr) | (and expr+) | (or expr+) | (not expr)
//!       | (isnull expr) | (notnull expr) | (neg expr)
//!       | (in expr lit+) | (notin expr lit+) | (between expr lit lit)
//!       | (FUNC expr+)
//! ```

use crate::agg::{AggCall, AggFunc};
use crate::expr::{and_all, BinOp, Expr, ScalarFunc, UnaryOp};
use crate::plan::{JoinType, LogicalPlan, SortKey};
use tabviz_common::{Result, TvError, Value};

/// Parse a TQL plan from text.
pub fn parse_plan(text: &str) -> Result<LogicalPlan> {
    let tokens = tokenize(text)?;
    let mut pos = 0usize;
    let sexp = parse_sexp(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(TvError::Parse(format!(
            "trailing input after plan: {:?}",
            &tokens[pos..]
        )));
    }
    plan_from_sexp(&sexp)
}

/// Parse a standalone TQL expression (used by filter definitions).
pub fn parse_expr(text: &str) -> Result<Expr> {
    let tokens = tokenize(text)?;
    let mut pos = 0usize;
    let sexp = parse_sexp(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(TvError::Parse("trailing input after expression".into()));
    }
    expr_from_sexp(&sexp)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                chars.next();
                tokens.push(Token::Open);
            }
            ')' => {
                chars.next();
                tokens.push(Token::Close);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => s.push(e),
                            None => return Err(TvError::Parse("unterminated escape".into())),
                        },
                        Some(ch) => s.push(ch),
                        None => return Err(TvError::Parse("unterminated string".into())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            ';' => {
                // comment to end of line
                for ch in chars.by_ref() {
                    if ch == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' {
                        break;
                    }
                    s.push(c);
                    chars.next();
                }
                tokens.push(Token::Atom(s));
            }
        }
    }
    Ok(tokens)
}

#[derive(Debug, Clone)]
enum Sexp {
    Atom(String),
    Str(String),
    List(Vec<Sexp>),
}

impl Sexp {
    fn atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            _ => None,
        }
    }

    fn list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_sexp(tokens: &[Token], pos: &mut usize) -> Result<Sexp> {
    match tokens.get(*pos) {
        None => Err(TvError::Parse("unexpected end of input".into())),
        Some(Token::Close) => Err(TvError::Parse("unexpected ')'".into())),
        Some(Token::Atom(s)) => {
            *pos += 1;
            Ok(Sexp::Atom(s.clone()))
        }
        Some(Token::Str(s)) => {
            *pos += 1;
            Ok(Sexp::Str(s.clone()))
        }
        Some(Token::Open) => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                match tokens.get(*pos) {
                    None => return Err(TvError::Parse("unclosed '('".into())),
                    Some(Token::Close) => {
                        *pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    _ => items.push(parse_sexp(tokens, pos)?),
                }
            }
        }
    }
}

fn plan_from_sexp(s: &Sexp) -> Result<LogicalPlan> {
    let items = s
        .list()
        .ok_or_else(|| TvError::Parse("plan must be a list".into()))?;
    let head = items
        .first()
        .and_then(Sexp::atom)
        .ok_or_else(|| TvError::Parse("plan must start with an operator name".into()))?;
    match head.to_ascii_lowercase().as_str() {
        "scan" => {
            let table = items
                .get(1)
                .and_then(Sexp::atom)
                .ok_or_else(|| TvError::Parse("(scan TABLE col*)".into()))?;
            let cols: Vec<String> = items[2..]
                .iter()
                .map(|c| {
                    c.atom()
                        .map(str::to_string)
                        .ok_or_else(|| TvError::Parse("scan columns must be names".into()))
                })
                .collect::<Result<_>>()?;
            Ok(LogicalPlan::TableScan {
                table: table.to_string(),
                projection: if cols.is_empty() { None } else { Some(cols) },
            })
        }
        "select" => {
            expect_len(items, 3, "(select EXPR plan)")?;
            Ok(LogicalPlan::Select {
                predicate: expr_from_sexp(&items[1])?,
                input: Box::new(plan_from_sexp(&items[2])?),
            })
        }
        "project" => {
            expect_len(items, 3, "(project (exprs) plan)")?;
            let list = items[1]
                .list()
                .ok_or_else(|| TvError::Parse("project expects a list of items".into()))?;
            let mut exprs = Vec::with_capacity(list.len());
            for item in list {
                exprs.push(named_expr(item)?);
            }
            Ok(LogicalPlan::Project {
                exprs,
                input: Box::new(plan_from_sexp(&items[2])?),
            })
        }
        "join" => {
            expect_len(items, 5, "(join inner|left (keys) left right)")?;
            let jt = match items[1].atom().map(str::to_ascii_lowercase).as_deref() {
                Some("inner") => JoinType::Inner,
                Some("left") => JoinType::Left,
                _ => return Err(TvError::Parse("join type must be inner or left".into())),
            };
            let keys = items[2]
                .list()
                .ok_or_else(|| TvError::Parse("join keys must be a list".into()))?;
            let mut on = Vec::with_capacity(keys.len());
            for k in keys {
                let pair = k
                    .list()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| TvError::Parse("join key must be (LCOL RCOL)".into()))?;
                on.push((
                    pair[0]
                        .atom()
                        .ok_or_else(|| TvError::Parse("join key columns must be names".into()))?
                        .to_string(),
                    pair[1]
                        .atom()
                        .ok_or_else(|| TvError::Parse("join key columns must be names".into()))?
                        .to_string(),
                ));
            }
            Ok(LogicalPlan::Join {
                left: Box::new(plan_from_sexp(&items[3])?),
                right: Box::new(plan_from_sexp(&items[4])?),
                on,
                join_type: jt,
            })
        }
        "aggregate" => {
            expect_len(items, 4, "(aggregate (groups) (aggs) plan)")?;
            let groups = items[1]
                .list()
                .ok_or_else(|| TvError::Parse("aggregate groups must be a list".into()))?;
            let mut group_by = Vec::with_capacity(groups.len());
            for g in groups {
                match g {
                    Sexp::Atom(name) => group_by.push((Expr::Column(name.clone()), name.clone())),
                    _ => group_by.push(named_expr(g)?),
                }
            }
            let aggs_list = items[2]
                .list()
                .ok_or_else(|| TvError::Parse("aggregate calls must be a list".into()))?;
            let mut aggs = Vec::with_capacity(aggs_list.len());
            for a in aggs_list {
                aggs.push(agg_from_sexp(a)?);
            }
            Ok(LogicalPlan::Aggregate {
                group_by,
                aggs,
                input: Box::new(plan_from_sexp(&items[3])?),
            })
        }
        "order" => {
            expect_len(items, 3, "(order (keys) plan)")?;
            Ok(LogicalPlan::Order {
                keys: sort_keys(&items[1])?,
                input: Box::new(plan_from_sexp(&items[2])?),
            })
        }
        "topn" => {
            expect_len(items, 4, "(topn N (keys) plan)")?;
            let n: usize = items[1]
                .atom()
                .and_then(|a| a.parse().ok())
                .ok_or_else(|| TvError::Parse("topn count must be an integer".into()))?;
            Ok(LogicalPlan::TopN {
                n,
                keys: sort_keys(&items[2])?,
                input: Box::new(plan_from_sexp(&items[3])?),
            })
        }
        "distinct" => {
            expect_len(items, 2, "(distinct plan)")?;
            Ok(LogicalPlan::Distinct {
                input: Box::new(plan_from_sexp(&items[1])?),
            })
        }
        other => Err(TvError::Parse(format!("unknown plan operator '{other}'"))),
    }
}

fn expect_len(items: &[Sexp], n: usize, usage: &str) -> Result<()> {
    if items.len() != n {
        return Err(TvError::Parse(format!("expected {usage}")));
    }
    Ok(())
}

/// `(EXPR as NAME)` or a bare column name.
fn named_expr(s: &Sexp) -> Result<(Expr, String)> {
    if let Some(name) = s.atom() {
        return Ok((Expr::Column(name.to_string()), name.to_string()));
    }
    let items = s
        .list()
        .ok_or_else(|| TvError::Parse("expected (EXPR as NAME)".into()))?;
    if items.len() == 1 {
        // `(carrier)` — a parenthesized bare item.
        return named_expr(&items[0]);
    }
    if items.len() >= 3 && items[items.len() - 2].atom() == Some("as") {
        let name = items[items.len() - 1]
            .atom()
            .ok_or_else(|| TvError::Parse("alias must be a name".into()))?;
        let inner = if items.len() == 3 {
            expr_from_sexp(&items[0])?
        } else {
            expr_from_sexp(&Sexp::List(items[..items.len() - 2].to_vec()))?
        };
        Ok((inner, name.to_string()))
    } else {
        let e = expr_from_sexp(s)?;
        let name = match &e {
            Expr::Column(c) => c.clone(),
            other => other.to_string(),
        };
        Ok((e, name))
    }
}

/// `(FUNC [EXPR] as NAME)`.
fn agg_from_sexp(s: &Sexp) -> Result<AggCall> {
    let items = s
        .list()
        .ok_or_else(|| TvError::Parse("aggregate call must be a list".into()))?;
    let func = items
        .first()
        .and_then(Sexp::atom)
        .and_then(AggFunc::from_name)
        .ok_or_else(|| TvError::Parse("unknown aggregate function".into()))?;
    // Forms: (count as n) | (sum delay as total) | (avg (expr..) as x)
    if items.len() < 3 || items[items.len() - 2].atom() != Some("as") {
        return Err(TvError::Parse("aggregate call needs 'as NAME'".into()));
    }
    let alias = items[items.len() - 1]
        .atom()
        .ok_or_else(|| TvError::Parse("aggregate alias must be a name".into()))?
        .to_string();
    let arg_items = &items[1..items.len() - 2];
    let arg = match arg_items.len() {
        0 => None,
        1 => Some(expr_from_sexp(&arg_items[0])?),
        _ => Some(expr_from_sexp(&Sexp::List(arg_items.to_vec()))?),
    };
    Ok(AggCall { func, arg, alias })
}

fn sort_keys(s: &Sexp) -> Result<Vec<SortKey>> {
    let items = s
        .list()
        .ok_or_else(|| TvError::Parse("sort keys must be a list".into()))?;
    let mut keys = Vec::with_capacity(items.len());
    for k in items {
        match k {
            Sexp::Atom(name) => keys.push(SortKey::asc(name.clone())),
            Sexp::List(pair) if pair.len() == 2 => {
                let name = pair[0]
                    .atom()
                    .ok_or_else(|| TvError::Parse("sort key column must be a name".into()))?;
                let asc = match pair[1].atom().map(str::to_ascii_lowercase).as_deref() {
                    Some("asc") => true,
                    Some("desc") => false,
                    _ => return Err(TvError::Parse("sort direction must be asc or desc".into())),
                };
                keys.push(SortKey {
                    column: name.to_string(),
                    asc,
                });
            }
            _ => {
                return Err(TvError::Parse(
                    "sort key must be NAME or (NAME asc|desc)".into(),
                ))
            }
        }
    }
    Ok(keys)
}

fn literal_from_sexp(s: &Sexp) -> Result<Value> {
    match s {
        Sexp::Str(v) => Ok(Value::Str(v.clone())),
        Sexp::Atom(a) => {
            atom_literal(a).ok_or_else(|| TvError::Parse(format!("expected a literal, got '{a}'")))
        }
        Sexp::List(_) => Err(TvError::Parse("expected a literal, got a list".into())),
    }
}

fn atom_literal(a: &str) -> Option<Value> {
    match a {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        "null" => return Some(Value::Null),
        _ => {}
    }
    if let Some(days) = a.strip_prefix("date@") {
        return days.parse::<i32>().ok().map(Value::Date);
    }
    if let Ok(i) = a.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(r) = a.parse::<f64>() {
        if a.contains('.') || a.contains('e') || a.contains('E') {
            return Some(Value::Real(r));
        }
    }
    None
}

fn expr_from_sexp(s: &Sexp) -> Result<Expr> {
    match s {
        Sexp::Str(v) => Ok(Expr::Literal(Value::Str(v.clone()))),
        Sexp::Atom(a) => {
            if let Some(v) = atom_literal(a) {
                Ok(Expr::Literal(v))
            } else {
                Ok(Expr::Column(a.clone()))
            }
        }
        Sexp::List(items) => {
            let head = items.first().and_then(Sexp::atom).ok_or_else(|| {
                TvError::Parse("expression list must start with an operator".into())
            })?;
            let binop = match head {
                "+" => Some(BinOp::Add),
                "-" => Some(BinOp::Sub),
                "*" => Some(BinOp::Mul),
                "/" => Some(BinOp::Div),
                "=" => Some(BinOp::Eq),
                "<>" | "!=" => Some(BinOp::Ne),
                "<" => Some(BinOp::Lt),
                "<=" => Some(BinOp::Le),
                ">" => Some(BinOp::Gt),
                ">=" => Some(BinOp::Ge),
                _ => None,
            };
            if let Some(op) = binop {
                expect_len(items, 3, "binary operator takes two operands")?;
                return Ok(Expr::Binary {
                    op,
                    left: Box::new(expr_from_sexp(&items[1])?),
                    right: Box::new(expr_from_sexp(&items[2])?),
                });
            }
            match head.to_ascii_lowercase().as_str() {
                "and" | "or" => {
                    if items.len() < 3 {
                        return Err(TvError::Parse(format!("{head} needs ≥2 operands")));
                    }
                    let op = if head.eq_ignore_ascii_case("and") {
                        BinOp::And
                    } else {
                        BinOp::Or
                    };
                    let mut operands = items[1..]
                        .iter()
                        .map(expr_from_sexp)
                        .collect::<Result<Vec<_>>>()?;
                    if op == BinOp::And {
                        Ok(and_all(operands))
                    } else {
                        let first = operands.remove(0);
                        Ok(operands.into_iter().fold(first, |acc, e| Expr::Binary {
                            op: BinOp::Or,
                            left: Box::new(acc),
                            right: Box::new(e),
                        }))
                    }
                }
                "not" => {
                    expect_len(items, 2, "(not EXPR)")?;
                    Ok(Expr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(expr_from_sexp(&items[1])?),
                    })
                }
                "neg" => {
                    expect_len(items, 2, "(neg EXPR)")?;
                    Ok(Expr::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(expr_from_sexp(&items[1])?),
                    })
                }
                "isnull" => {
                    expect_len(items, 2, "(isnull EXPR)")?;
                    Ok(Expr::Unary {
                        op: UnaryOp::IsNull,
                        expr: Box::new(expr_from_sexp(&items[1])?),
                    })
                }
                "notnull" => {
                    expect_len(items, 2, "(notnull EXPR)")?;
                    Ok(Expr::Unary {
                        op: UnaryOp::IsNotNull,
                        expr: Box::new(expr_from_sexp(&items[1])?),
                    })
                }
                "in" | "notin" => {
                    if items.len() < 3 {
                        return Err(TvError::Parse("(in EXPR lit+)".into()));
                    }
                    let list = items[2..]
                        .iter()
                        .map(literal_from_sexp)
                        .collect::<Result<Vec<_>>>()?;
                    Ok(Expr::In {
                        expr: Box::new(expr_from_sexp(&items[1])?),
                        list,
                        negated: head.eq_ignore_ascii_case("notin"),
                    })
                }
                "between" => {
                    expect_len(items, 4, "(between EXPR lo hi)")?;
                    Ok(Expr::Between {
                        expr: Box::new(expr_from_sexp(&items[1])?),
                        low: literal_from_sexp(&items[2])?,
                        high: literal_from_sexp(&items[3])?,
                    })
                }
                fname => {
                    let func = ScalarFunc::from_name(fname).ok_or_else(|| {
                        TvError::Parse(format!("unknown function or operator '{fname}'"))
                    })?;
                    let args = items[1..]
                        .iter()
                        .map(expr_from_sexp)
                        .collect::<Result<Vec<_>>>()?;
                    if args.len() != func.arity() {
                        return Err(TvError::Parse(format!(
                            "{} expects {} argument(s)",
                            func.name(),
                            func.arity()
                        )));
                    }
                    Ok(Expr::Func { func, args })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{bin, col, lit};

    #[test]
    fn parses_the_doc_example() {
        let plan = parse_plan(
            "(topn 5 ((flights desc))
               (aggregate ((carrier))
                          ((count as flights) (avg delay as avg_delay))
                 (select (> delay 10)
                   (scan flights))))",
        )
        .unwrap();
        let text = plan.canonical_text();
        assert!(text.contains("TopN 5 by flights DESC"));
        assert!(text.contains(
            "Aggregate [[carrier] AS carrier] [COUNT(*) AS flights, AVG([delay]) AS avg_delay]"
        ));
    }

    #[test]
    fn parses_expressions() {
        assert_eq!(
            parse_expr("(> delay 10)").unwrap(),
            bin(BinOp::Gt, col("delay"), lit(10i64))
        );
        let e = parse_expr("(and (> delay 10) (= carrier \"AA\") (< dist 3.5))").unwrap();
        assert_eq!(e.columns().len(), 3);
        let inl = parse_expr("(in carrier \"AA\" \"DL\")").unwrap();
        assert!(matches!(inl, Expr::In { negated: false, .. }));
        let b = parse_expr("(between day date@100 date@200)").unwrap();
        assert!(matches!(b, Expr::Between { .. }));
    }

    #[test]
    fn parses_join_and_project() {
        let p = parse_plan(
            "(project ((carrier) ((strlen name) as name_len))
               (join inner ((carrier code))
                 (scan flights)
                 (scan carriers)))",
        )
        .unwrap();
        let text = p.canonical_text();
        assert!(text.contains("InnerJoin on carrier=code"));
        assert!(text.contains("STRLEN([name]) AS name_len"));
    }

    #[test]
    fn parses_distinct_order_scan_projection() {
        let p = parse_plan(
            "(distinct (order ((carrier asc) (delay desc)) (scan flights carrier delay)))",
        )
        .unwrap();
        let text = p.canonical_text();
        assert!(text.contains("Distinct"));
        assert!(text.contains("Order carrier ASC, delay DESC"));
        assert!(text.contains("TableScan flights [carrier, delay]"));
    }

    #[test]
    fn literals() {
        assert_eq!(parse_expr("true").unwrap(), lit(true));
        assert_eq!(parse_expr("null").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(parse_expr("3.25").unwrap(), lit(3.25));
        assert_eq!(parse_expr("-7").unwrap(), lit(-7i64));
        assert_eq!(
            parse_expr("date@42").unwrap(),
            Expr::Literal(Value::Date(42))
        );
        assert_eq!(
            parse_expr("\"O'Hare \\\"ORD\\\"\"").unwrap(),
            Expr::Literal(Value::Str("O'Hare \"ORD\"".into()))
        );
    }

    #[test]
    fn comments_ignored() {
        let p = parse_plan("; top carriers\n(scan flights) ; trailing").unwrap();
        assert_eq!(p, LogicalPlan::scan("flights"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_plan("(scan)").is_err());
        assert!(parse_plan("(select (> a 1))").is_err()); // missing input
        assert!(parse_plan("(frobnicate (scan t))").is_err());
        assert!(parse_plan("(scan t) extra").is_err());
        assert!(parse_plan("(select (> a 1) (scan t)").is_err()); // unclosed
        assert!(parse_expr("(upper a b)").is_err()); // arity
        assert!(parse_expr("(in carrier (scan t))").is_err()); // non-literal in list
    }

    #[test]
    fn count_star_vs_count_col() {
        let p = parse_plan("(aggregate () ((count as n) (count delay as nd)) (scan t))").unwrap();
        if let LogicalPlan::Aggregate { aggs, .. } = &p {
            assert_eq!(aggs[0].arg, None);
            assert_eq!(aggs[1].arg, Some(col("delay")));
        } else {
            panic!("expected aggregate");
        }
    }
}
