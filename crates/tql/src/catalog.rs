//! Catalog abstraction: how logical plans see table metadata.
//!
//! The query compiler "incorporates information about cardinalities, domains,
//! and overall capabilities of the data source" (Sect. 3.1); the TDE's
//! parallel planner "relies on metadata, such as data volume stored in a
//! table" (Sect. 4.2.2). This trait is that metadata surface, implemented by
//! the TDE over its [`Database`](tabviz_storage) and by backends over their
//! simulated schemas.

use std::collections::BTreeSet;
use tabviz_common::{Result, SchemaRef};

/// Metadata for one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub schema: SchemaRef,
    pub row_count: usize,
    /// Names of the columns the table is sorted by, in order (possibly empty).
    pub sort_key: Vec<String>,
    /// Columns known to hold unique (candidate-key) values — the property
    /// that licenses join culling (Sect. 4.1.2).
    pub unique_columns: BTreeSet<String>,
}

impl TableMeta {
    pub fn new(schema: SchemaRef, row_count: usize) -> Self {
        TableMeta {
            schema,
            row_count,
            sort_key: vec![],
            unique_columns: BTreeSet::new(),
        }
    }
}

/// Resolve table names to metadata.
pub trait Catalog {
    fn table_meta(&self, name: &str) -> Result<TableMeta>;
}

/// A trivial in-memory catalog for tests and planning without a database.
#[derive(Debug, Default)]
pub struct MemoryCatalog {
    tables: std::collections::BTreeMap<String, TableMeta>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, name: impl Into<String>, meta: TableMeta) {
        self.tables.insert(name.into(), meta);
    }
}

impl Catalog for MemoryCatalog {
    fn table_meta(&self, name: &str) -> Result<TableMeta> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| tabviz_common::TvError::Bind(format!("unknown table '{name}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema};

    #[test]
    fn memory_catalog_lookup() {
        let mut cat = MemoryCatalog::new();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        cat.add("t", TableMeta::new(schema, 10));
        assert_eq!(cat.table_meta("t").unwrap().row_count, 10);
        assert!(cat.table_meta("missing").is_err());
    }
}
