//! Render plans and expressions back to parseable TQL text.
//!
//! `parse_plan(write_plan(p)) == p` — used by the persisted query cache
//! (Sect. 3.2: "In Tableau Desktop query caches get persisted") to serialize
//! query specifications, and by tests as a round-trip oracle.

use crate::agg::AggCall;
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::plan::{JoinType, LogicalPlan, SortKey};
use std::fmt::Write;
use tabviz_common::Value;

/// Render a logical plan as TQL text.
pub fn write_plan(plan: &LogicalPlan) -> String {
    let mut s = String::new();
    plan_text(plan, &mut s);
    s
}

/// Render an expression as TQL text.
pub fn write_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr_text(e, &mut s);
    s
}

fn lit_text(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Real(r) => {
            if r.fract() == 0.0 && r.is_finite() {
                let _ = write!(out, "{r:.1}");
            } else {
                let _ = write!(out, "{r}");
            }
        }
        Value::Date(d) => {
            let _ = write!(out, "date@{d}");
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                if c == '"' || c == '\\' {
                    out.push('\\');
                }
                out.push(c);
            }
            out.push('"');
        }
    }
}

fn expr_text(e: &Expr, out: &mut String) {
    match e {
        Expr::Column(c) => out.push_str(c),
        Expr::Literal(v) => lit_text(v, out),
        Expr::Unary { op, expr } => {
            let name = match op {
                UnaryOp::Not => "not",
                UnaryOp::Neg => "neg",
                UnaryOp::IsNull => "isnull",
                UnaryOp::IsNotNull => "notnull",
            };
            let _ = write!(out, "({name} ");
            expr_text(expr, out);
            out.push(')');
        }
        Expr::Binary { op, left, right } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "and",
                BinOp::Or => "or",
            };
            let _ = write!(out, "({sym} ");
            expr_text(left, out);
            out.push(' ');
            expr_text(right, out);
            out.push(')');
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let _ = write!(out, "({} ", if *negated { "notin" } else { "in" });
            expr_text(expr, out);
            for v in list {
                out.push(' ');
                lit_text(v, out);
            }
            out.push(')');
        }
        Expr::Between { expr, low, high } => {
            out.push_str("(between ");
            expr_text(expr, out);
            out.push(' ');
            lit_text(low, out);
            out.push(' ');
            lit_text(high, out);
            out.push(')');
        }
        Expr::Func { func, args } => {
            let _ = write!(out, "({}", func.name().to_ascii_lowercase());
            for a in args {
                out.push(' ');
                expr_text(a, out);
            }
            out.push(')');
        }
    }
}

fn named_expr_text(e: &Expr, name: &str, out: &mut String) {
    out.push('(');
    expr_text(e, out);
    let _ = write!(out, " as {name})");
}

fn agg_text(a: &AggCall, out: &mut String) {
    let _ = write!(out, "({}", a.func.name().to_ascii_lowercase());
    if let Some(arg) = &a.arg {
        out.push(' ');
        expr_text(arg, out);
    }
    let _ = write!(out, " as {})", a.alias);
}

fn keys_text(keys: &[SortKey], out: &mut String) {
    out.push('(');
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "({} {})", k.column, if k.asc { "asc" } else { "desc" });
    }
    out.push(')');
}

fn plan_text(plan: &LogicalPlan, out: &mut String) {
    match plan {
        LogicalPlan::TableScan { table, projection } => {
            let _ = write!(out, "(scan {table}");
            if let Some(p) = projection {
                for c in p {
                    let _ = write!(out, " {c}");
                }
            }
            out.push(')');
        }
        LogicalPlan::Select { input, predicate } => {
            out.push_str("(select ");
            expr_text(predicate, out);
            out.push(' ');
            plan_text(input, out);
            out.push(')');
        }
        LogicalPlan::Project { input, exprs } => {
            out.push_str("(project (");
            for (i, (e, n)) in exprs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                named_expr_text(e, n, out);
            }
            out.push_str(") ");
            plan_text(input, out);
            out.push(')');
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let jt = match join_type {
                JoinType::Inner => "inner",
                JoinType::Left => "left",
            };
            let _ = write!(out, "(join {jt} (");
            for (i, (l, r)) in on.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "({l} {r})");
            }
            out.push_str(") ");
            plan_text(left, out);
            out.push(' ');
            plan_text(right, out);
            out.push(')');
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            out.push_str("(aggregate (");
            for (i, (e, n)) in group_by.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                named_expr_text(e, n, out);
            }
            out.push_str(") (");
            for (i, a) in aggs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                agg_text(a, out);
            }
            out.push_str(") ");
            plan_text(input, out);
            out.push(')');
        }
        LogicalPlan::Order { input, keys } => {
            out.push_str("(order ");
            keys_text(keys, out);
            out.push(' ');
            plan_text(input, out);
            out.push(')');
        }
        LogicalPlan::TopN { input, keys, n } => {
            let _ = write!(out, "(topn {n} ");
            keys_text(keys, out);
            out.push(' ');
            plan_text(input, out);
            out.push(')');
        }
        LogicalPlan::Distinct { input } => {
            out.push_str("(distinct ");
            plan_text(input, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_plan};

    #[test]
    fn plan_roundtrip() {
        let text = "(topn 5 ((flights desc))
            (aggregate ((carrier) ((year day) as y))
                       ((count as flights) (avg delay as avg_delay) (countd origin as no))
              (select (and (> delay 10) (in carrier \"AA\" \"DL\"))
                (join left ((carrier code)) (scan flights carrier delay day origin) (scan carriers)))))";
        let plan = parse_plan(text).unwrap();
        let written = write_plan(&plan);
        let reparsed = parse_plan(&written).unwrap();
        assert_eq!(plan, reparsed, "written: {written}");
    }

    #[test]
    fn expr_roundtrip_with_escapes() {
        let cases = [
            "(= carrier \"O'Hare \\\"ORD\\\"\")",
            "(between day date@100 date@200)",
            "(notin x 1 2 3)",
            "(or (isnull a) (notnull b))",
            "(upper s)",
            "(ifnull a 0)",
            "(neg (+ a 1.5))",
        ];
        for c in cases {
            let e = parse_expr(c).unwrap();
            let w = write_expr(&e);
            assert_eq!(parse_expr(&w).unwrap(), e, "case {c} → {w}");
        }
    }

    #[test]
    fn distinct_and_order_roundtrip() {
        let text = "(distinct (order ((a asc) (b desc)) (scan t)))";
        let plan = parse_plan(text).unwrap();
        assert_eq!(parse_plan(&write_plan(&plan)).unwrap(), plan);
    }
}
