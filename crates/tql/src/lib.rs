//! Tableau Query Language (TQL).
//!
//! Sect. 4.1.2 of the paper: "The TDE uses a logical tree style language
//! called Tableau Query Language (TQL). It supports logical operators present
//! in most databases, such as TableScan, Select, Project, Join, Aggregate,
//! Order, and TopN. It has a classic query compiler that accepts a TQL query
//! as text and translates it into some logical operator tree structure."
//!
//! This crate defines:
//! * [`expr`] — scalar expressions with vectorized evaluation over chunks,
//!   SQL three-valued logic, scalar functions, and date part extraction;
//! * [`agg`] — aggregate function descriptors (SUM/COUNT/COUNTD/MIN/MAX/AVG)
//!   including their roll-up decompositions (used both by the parallel
//!   local/global aggregation of Sect. 4.2.3 and the intelligent cache's
//!   post-processing of Sect. 3.2);
//! * [`plan`] — the logical operator tree with schema derivation;
//! * [`parser`] — the textual TQL front end (an s-expression grammar,
//!   matching the "logical tree style" description);
//! * [`catalog`] — the trait through which plans see table metadata.

pub mod agg;
pub mod catalog;
pub mod datefn;
pub mod expr;
pub mod parser;
pub mod plan;
pub mod writer;

pub use agg::{AggCall, AggFunc};
pub use catalog::{Catalog, TableMeta};
pub use expr::{BinOp, Expr, ScalarFunc, UnaryOp};
pub use parser::parse_plan;
pub use plan::{JoinType, LogicalPlan, SortKey};
pub use writer::{write_expr, write_plan};
