//! The TQL logical operator tree.
//!
//! "It supports logical operators present in most databases, such as
//! TableScan, Select, Project, Join, Aggregate, Order, and TopN"
//! (Sect. 4.1.2). `Distinct` exists only as parser sugar — the compiler
//! rewrites it to a grouping aggregate ("expressing SELECT DISTINCT as a
//! GROUP BY query").

use crate::agg::AggCall;
use crate::catalog::Catalog;
use crate::expr::Expr;
use std::fmt;
use std::sync::Arc;
use tabviz_common::{Collation, Field, Result, Schema, SchemaRef, TvError};

/// Join variants. Tableau's joins are "usually between the fact table and
/// multiple dimension tables" (Sect. 4.2.2); inner and left-outer cover the
/// star/snowflake shapes the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    Left,
}

/// One ORDER BY / TopN key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortKey {
    pub column: String,
    pub asc: bool,
}

impl SortKey {
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            asc: true,
        }
    }

    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            asc: false,
        }
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf scan of a stored table, optionally pre-projected.
    TableScan {
        table: String,
        projection: Option<Vec<String>>,
    },
    /// Row filter.
    Select {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Computed projection: `(expr AS name)*`.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Equi-join on column-name pairs.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<(String, String)>,
        join_type: JoinType,
    },
    /// Grouping aggregate: `(group expr AS name)*` + aggregate calls.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
    },
    /// Total order.
    Order {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// Top-N by sort keys.
    TopN {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
        n: usize,
    },
    /// Parser-level sugar, compiled away into `Aggregate`.
    Distinct { input: Box<LogicalPlan> },
}

impl LogicalPlan {
    /// Derive the output schema against a catalog.
    pub fn schema(&self, catalog: &dyn Catalog) -> Result<SchemaRef> {
        match self {
            LogicalPlan::TableScan { table, projection } => {
                let meta = catalog.table_meta(table)?;
                match projection {
                    None => Ok(meta.schema),
                    Some(cols) => {
                        let idx: Vec<usize> = cols
                            .iter()
                            .map(|c| meta.schema.index_of(c))
                            .collect::<Result<_>>()?;
                        Ok(Arc::new(meta.schema.project(&idx)))
                    }
                }
            }
            LogicalPlan::Select { input, predicate } => {
                let schema = input.schema(catalog)?;
                // Validate column references eagerly (binder behavior).
                for c in predicate.columns() {
                    schema.index_of(&c)?;
                }
                Ok(schema)
            }
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let dtype = e.data_type(&in_schema)?;
                    let collation = match e {
                        Expr::Column(c) => in_schema.field_by_name(c)?.collation,
                        _ => Collation::Binary,
                    };
                    fields.push(Field::new(name.clone(), dtype).with_collation(collation));
                }
                Ok(Arc::new(Schema::new(fields)?))
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type: _,
            } => {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                for (l, r) in on {
                    ls.index_of(l)?;
                    rs.index_of(r)?;
                }
                Ok(Arc::new(ls.join(&rs)))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for (e, name) in group_by {
                    let dtype = e.data_type(&in_schema)?;
                    let collation = match e {
                        Expr::Column(c) => in_schema.field_by_name(c)?.collation,
                        _ => Collation::Binary,
                    };
                    fields.push(Field::new(name.clone(), dtype).with_collation(collation));
                }
                for a in aggs {
                    fields.push(Field::new(a.alias.clone(), a.output_type(&in_schema)?));
                }
                Ok(Arc::new(Schema::new(fields)?))
            }
            LogicalPlan::Order { input, keys } | LogicalPlan::TopN { input, keys, .. } => {
                let schema = input.schema(catalog)?;
                for k in keys {
                    schema.index_of(&k.column)?;
                }
                Ok(schema)
            }
            LogicalPlan::Distinct { input } => input.schema(catalog),
        }
    }

    /// Immediate children, for generic traversal.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Order { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Names of all tables scanned anywhere in the plan.
    pub fn tables(&self) -> Vec<String> {
        let mut out = vec![];
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        if let LogicalPlan::TableScan { table, .. } = self {
            out.push(table.clone());
        }
        for c in self.children() {
            c.collect_tables(out);
        }
    }

    /// A canonical, whitespace-stable text rendering. Used as the *literal*
    /// cache key (Sect. 3.2: "keyed on the query text") and in explain
    /// output.
    pub fn canonical_text(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, 0);
        s
    }

    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::TableScan { table, projection } => {
                let _ = write!(out, "{pad}TableScan {table}");
                if let Some(p) = projection {
                    let _ = write!(out, " [{}]", p.join(", "));
                }
                let _ = writeln!(out);
            }
            LogicalPlan::Select { input, predicate } => {
                let _ = writeln!(out, "{pad}Select {predicate}");
                input.render(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let items: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let _ = writeln!(out, "{pad}Project {}", items.join(", "));
                input.render(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
            } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                let _ = writeln!(out, "{pad}{join_type:?}Join on {}", keys.join(" AND "));
                left.render(out, depth + 1);
                right.render(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let gb: Vec<String> = group_by
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect();
                let ag: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate [{}] [{}]",
                    gb.join(", "),
                    ag.join(", ")
                );
                input.render(out, depth + 1);
            }
            LogicalPlan::Order { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.column, if k.asc { "ASC" } else { "DESC" }))
                    .collect();
                let _ = writeln!(out, "{pad}Order {}", ks.join(", "));
                input.render(out, depth + 1);
            }
            LogicalPlan::TopN { input, keys, n } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.column, if k.asc { "ASC" } else { "DESC" }))
                    .collect();
                let _ = writeln!(out, "{pad}TopN {n} by {}", ks.join(", "));
                input.render(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.render(out, depth + 1);
            }
        }
    }

    /// Convenience builders for fluent plan construction.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: table.into(),
            projection: None,
        }
    }

    pub fn select(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    pub fn aggregate(self, group_by: Vec<(Expr, String)>, aggs: Vec<AggCall>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    pub fn order(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Order {
            input: Box::new(self),
            keys,
        }
    }

    pub fn topn(self, n: usize, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::TopN {
            input: Box::new(self),
            keys,
            n,
        }
    }

    pub fn join(
        self,
        right: LogicalPlan,
        on: Vec<(String, String)>,
        join_type: JoinType,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
            join_type,
        }
    }

    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_text())
    }
}

/// Validate that a plan binds correctly against a catalog; returns the output
/// schema (the binder / semantic-analysis step of the "classic query
/// compiler", Sect. 4.1.2).
pub fn bind(plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<SchemaRef> {
    plan.schema(catalog).map_err(|e| match e {
        TvError::Schema(m) => TvError::Bind(m),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggCall, AggFunc};
    use crate::catalog::{MemoryCatalog, TableMeta};
    use crate::expr::{bin, col, lit, BinOp};
    use tabviz_common::DataType;

    fn catalog() -> MemoryCatalog {
        let mut cat = MemoryCatalog::new();
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
                Field::new("origin", DataType::Str),
            ])
            .unwrap(),
        );
        cat.add("flights", TableMeta::new(schema, 1000));
        let dim = Arc::new(
            Schema::new(vec![
                Field::new("code", DataType::Str),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        );
        cat.add("carriers", TableMeta::new(dim, 20));
        cat
    }

    fn sample_plan() -> LogicalPlan {
        LogicalPlan::scan("flights")
            .select(bin(BinOp::Gt, col("delay"), lit(10i64)))
            .aggregate(
                vec![(col("carrier"), "carrier".into())],
                vec![
                    AggCall::new(AggFunc::Count, None, "flights"),
                    AggCall::new(AggFunc::Avg, Some(col("delay")), "avg_delay"),
                ],
            )
            .topn(5, vec![SortKey::desc("flights")])
    }

    #[test]
    fn schema_derivation() {
        let cat = catalog();
        let schema = sample_plan().schema(&cat).unwrap();
        assert_eq!(schema.names(), vec!["carrier", "flights", "avg_delay"]);
        assert_eq!(
            schema.field_by_name("flights").unwrap().dtype,
            DataType::Int
        );
        assert_eq!(
            schema.field_by_name("avg_delay").unwrap().dtype,
            DataType::Real
        );
    }

    #[test]
    fn binder_rejects_unknown_columns() {
        let cat = catalog();
        let bad = LogicalPlan::scan("flights").select(bin(BinOp::Eq, col("nope"), lit(1i64)));
        assert!(bind(&bad, &cat).is_err());
        let bad_table = LogicalPlan::scan("missing");
        assert!(bind(&bad_table, &cat).is_err());
        let bad_key = LogicalPlan::scan("flights").order(vec![SortKey::asc("nope")]);
        assert!(bind(&bad_key, &cat).is_err());
    }

    #[test]
    fn join_schema_concats() {
        let cat = catalog();
        let j = LogicalPlan::scan("flights").join(
            LogicalPlan::scan("carriers"),
            vec![("carrier".into(), "code".into())],
            JoinType::Inner,
        );
        let s = j.schema(&cat).unwrap();
        assert_eq!(
            s.names(),
            vec!["carrier", "delay", "origin", "code", "name"]
        );
    }

    #[test]
    fn projection_scan_schema() {
        let cat = catalog();
        let p = LogicalPlan::TableScan {
            table: "flights".into(),
            projection: Some(vec!["delay".into()]),
        };
        assert_eq!(p.schema(&cat).unwrap().names(), vec!["delay"]);
    }

    #[test]
    fn canonical_text_is_stable() {
        let a = sample_plan().canonical_text();
        let b = sample_plan().canonical_text();
        assert_eq!(a, b);
        assert!(a.contains("TopN 5 by flights DESC"));
        assert!(a.contains("Select ([delay] > 10)"));
        assert!(a.contains("TableScan flights"));
    }

    #[test]
    fn tables_collects_all_scans() {
        let j = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![], JoinType::Inner);
        assert_eq!(j.tables(), vec!["a", "b"]);
    }

    #[test]
    fn distinct_passes_schema_through() {
        let cat = catalog();
        let d = LogicalPlan::scan("flights").distinct();
        assert_eq!(d.schema(&cat).unwrap().len(), 3);
    }
}
