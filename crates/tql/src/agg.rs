//! Aggregate functions, their accumulators, and roll-up algebra.
//!
//! Two parts of the paper depend on aggregates being *re-aggregatable*:
//!
//! * the parallel local/global aggregation of Sect. 4.2.3 ("apply the
//!   aggregate on each partition in parallel ... and again apply the
//!   aggregate on top of the output of the Exchange operator"), and
//! * the intelligent cache's post-processing roll-up of Sect. 3.2.
//!
//! [`AggFunc::rollup_func`] encodes which function re-aggregates partial
//! results (`SUM` of `COUNT`s, etc.). `AVG` decomposes into `SUM`+`COUNT`;
//! `COUNTD` does not decompose at all — both facts shape what the optimizer
//! and the cache are allowed to do.

use crate::expr::Expr;
use std::collections::HashSet;
use std::fmt;
use tabviz_common::{DataType, Result, Schema, TvError, Value};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Sum,
    Count,
    /// COUNT(DISTINCT ..)
    CountD,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::CountD => "COUNTD",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "SUM" => AggFunc::Sum,
            "COUNT" => AggFunc::Count,
            "COUNTD" => AggFunc::CountD,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// The function that combines *partial* results of this aggregate, or
    /// `None` when partials cannot be combined value-wise (AVG needs its
    /// SUM/COUNT decomposition; COUNTD needs the full distinct sets).
    pub fn rollup_func(self) -> Option<AggFunc> {
        match self {
            AggFunc::Sum | AggFunc::Count => Some(AggFunc::Sum),
            AggFunc::Min => Some(AggFunc::Min),
            AggFunc::Max => Some(AggFunc::Max),
            AggFunc::Avg | AggFunc::CountD => None,
        }
    }

    /// Whether the local/global split of Sect. 4.2.3 applies. `AVG` counts
    /// because the planner rewrites it via SUM/COUNT; `COUNTD` does not.
    pub fn supports_local_global(self) -> bool {
        !matches!(self, AggFunc::CountD)
    }
}

/// One aggregate call in an Aggregate operator: `func(arg) AS alias`.
/// `arg = None` encodes `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<Expr>,
    pub alias: String,
}

impl AggCall {
    pub fn new(func: AggFunc, arg: Option<Expr>, alias: impl Into<String>) -> Self {
        AggCall {
            func,
            arg,
            alias: alias.into(),
        }
    }

    /// Output type given the input schema.
    pub fn output_type(&self, schema: &Schema) -> Result<DataType> {
        match self.func {
            AggFunc::Count | AggFunc::CountD => Ok(DataType::Int),
            AggFunc::Avg => Ok(DataType::Real),
            AggFunc::Sum => match &self.arg {
                Some(e) => {
                    let t = e.data_type(schema)?;
                    if !t.is_numeric() {
                        return Err(TvError::Type(format!("SUM over non-numeric {t}")));
                    }
                    Ok(t)
                }
                None => Err(TvError::Bind("SUM requires an argument".into())),
            },
            AggFunc::Min | AggFunc::Max => match &self.arg {
                Some(e) => e.data_type(schema),
                None => Err(TvError::Bind(format!(
                    "{} requires an argument",
                    self.func.name()
                ))),
            },
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(e) => write!(f, "{}({e}) AS {}", self.func.name(), self.alias),
            None => write!(f, "{}(*) AS {}", self.func.name(), self.alias),
        }
    }
}

/// A running accumulator for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum AggState {
    Sum {
        int: i64,
        real: f64,
        is_real: bool,
        seen: bool,
    },
    Count(i64),
    CountD(HashSet<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
}

impl AggState {
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => AggState::Sum {
                int: 0,
                real: 0.0,
                is_real: false,
                seen: false,
            },
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountD => AggState::CountD(HashSet::new()),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Feed one row. `v = None` means the aggregate has no argument
    /// (`COUNT(*)` counts every row); NULL arguments are skipped by all
    /// functions except `COUNT(*)`.
    pub fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(c) => match v {
                None => *c += 1,
                Some(val) if !val.is_null() => *c += 1,
                _ => {}
            },
            AggState::Sum {
                int,
                real,
                is_real,
                seen,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Null => {}
                        Value::Int(i) => {
                            *int += i;
                            *real += *i as f64;
                            *seen = true;
                        }
                        Value::Real(r) => {
                            *real += r;
                            *is_real = true;
                            *seen = true;
                        }
                        other => {
                            return Err(TvError::Type(format!("SUM over {other:?}")));
                        }
                    }
                }
            }
            AggState::CountD(set) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        set.insert(val.clone());
                    }
                }
            }
            AggState::Min(m) => {
                if let Some(val) = v {
                    if !val.is_null() && m.as_ref().is_none_or(|cur| val < cur) {
                        *m = Some(val.clone());
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(val) = v {
                    if !val.is_null() && m.as_ref().is_none_or(|cur| val > cur) {
                        *m = Some(val.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *sum += val.as_real()?;
                        *count += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge another partial state into this one (the "global" half of
    /// local/global aggregation).
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Sum {
                    int,
                    real,
                    is_real,
                    seen,
                },
                AggState::Sum {
                    int: bi,
                    real: br,
                    is_real: bir,
                    seen: bs,
                },
            ) => {
                *int += bi;
                *real += br;
                *is_real |= bir;
                *seen |= bs;
            }
            (AggState::CountD(a), AggState::CountD(b)) => a.extend(b.iter().cloned()),
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv < av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv > av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: bs, count: bc }) => {
                *sum += bs;
                *count += bc;
            }
            _ => return Err(TvError::Exec("merging mismatched aggregate states".into())),
        }
        Ok(())
    }

    /// Produce the final value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c),
            AggState::Sum {
                int,
                real,
                is_real,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if *is_real {
                    Value::Real(*real)
                } else {
                    Value::Int(*int)
                }
            }
            AggState::CountD(set) => Value::Int(set.len() as i64),
            AggState::Min(m) | AggState::Max(m) => m.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Real(sum / *count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut st = AggState::new(func);
        for v in vals {
            st.update(Some(v)).unwrap();
        }
        st.finish()
    }

    #[test]
    fn sum_int_and_real() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Real(0.5)]),
            Value::Real(1.5)
        );
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn count_star_vs_count_arg() {
        let mut star = AggState::new(AggFunc::Count);
        star.update(None).unwrap();
        star.update(None).unwrap();
        assert_eq!(star.finish(), Value::Int(2));
        assert_eq!(
            run(AggFunc::Count, &[Value::Int(1), Value::Null]),
            Value::Int(1)
        );
    }

    #[test]
    fn countd_dedups() {
        assert_eq!(
            run(
                AggFunc::CountD,
                &[
                    Value::Str("a".into()),
                    Value::Str("a".into()),
                    Value::Str("b".into())
                ]
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn min_max_skip_nulls() {
        assert_eq!(
            run(AggFunc::Min, &[Value::Null, Value::Int(5), Value::Int(2)]),
            Value::Int(2)
        );
        assert_eq!(
            run(AggFunc::Max, &[Value::Int(5), Value::Null, Value::Int(9)]),
            Value::Int(9)
        );
        assert_eq!(run(AggFunc::Min, &[Value::Null]), Value::Null);
    }

    #[test]
    fn avg_divides() {
        assert_eq!(
            run(AggFunc::Avg, &[Value::Int(1), Value::Int(2), Value::Null]),
            Value::Real(1.5)
        );
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn merge_equals_single_pass() {
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::CountD,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let vals: Vec<Value> = (0..10).map(|i| Value::Int(i % 4)).collect();
            let mut whole = AggState::new(func);
            for v in &vals {
                whole.update(Some(v)).unwrap();
            }
            let mut a = AggState::new(func);
            let mut b = AggState::new(func);
            for v in &vals[..5] {
                a.update(Some(v)).unwrap();
            }
            for v in &vals[5..] {
                b.update(Some(v)).unwrap();
            }
            a.merge(&b).unwrap();
            assert_eq!(a.finish(), whole.finish(), "{func:?}");
        }
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = AggState::new(AggFunc::Sum);
        assert!(a.merge(&AggState::new(AggFunc::Count)).is_err());
    }

    #[test]
    fn rollup_algebra() {
        assert_eq!(AggFunc::Count.rollup_func(), Some(AggFunc::Sum));
        assert_eq!(AggFunc::Sum.rollup_func(), Some(AggFunc::Sum));
        assert_eq!(AggFunc::Min.rollup_func(), Some(AggFunc::Min));
        assert_eq!(AggFunc::Avg.rollup_func(), None);
        assert_eq!(AggFunc::CountD.rollup_func(), None);
        assert!(AggFunc::Avg.supports_local_global());
        assert!(!AggFunc::CountD.supports_local_global());
    }

    #[test]
    fn output_types() {
        use crate::expr::col;
        let schema = Schema::new(vec![
            tabviz_common::Field::new("i", DataType::Int),
            tabviz_common::Field::new("s", DataType::Str),
        ])
        .unwrap();
        assert_eq!(
            AggCall::new(AggFunc::Sum, Some(col("i")), "x")
                .output_type(&schema)
                .unwrap(),
            DataType::Int
        );
        assert_eq!(
            AggCall::new(AggFunc::Avg, Some(col("i")), "x")
                .output_type(&schema)
                .unwrap(),
            DataType::Real
        );
        assert_eq!(
            AggCall::new(AggFunc::Min, Some(col("s")), "x")
                .output_type(&schema)
                .unwrap(),
            DataType::Str
        );
        assert!(AggCall::new(AggFunc::Sum, Some(col("s")), "x")
            .output_type(&schema)
            .is_err());
        assert!(AggCall::new(AggFunc::Sum, None, "x")
            .output_type(&schema)
            .is_err());
    }
}
