//! Property tests: writer→parser round trips for random expressions and
//! plans, and evaluation invariants.

use proptest::prelude::*;
use std::sync::Arc;
use tabviz_common::{Chunk, DataType, Field, Schema, Value};
use tabviz_tql::expr::{Expr, UnaryOp};
use tabviz_tql::parser::{parse_expr, parse_plan};
use tabviz_tql::{write_expr, write_plan, AggCall, AggFunc, BinOp, LogicalPlan, SortKey};

fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-5.0f64..5.0).prop_map(|r| Value::Real((r * 4.0).round() / 4.0)),
        any::<bool>().prop_map(Value::Bool),
        (-100i32..100).prop_map(Value::Date),
        proptest::sample::select(vec!["AA", "x y", "quo\"te", "back\\slash", ""])
            .prop_map(|s| Value::Str(s.to_string())),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(|c| Expr::Column(c.to_string())),
        arb_literal().prop_map(Expr::Literal),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                proptest::sample::select(vec![
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ]),
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(op, l, r)| Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r)
                }),
            (
                proptest::sample::select(vec![
                    UnaryOp::Not,
                    UnaryOp::Neg,
                    UnaryOp::IsNull,
                    UnaryOp::IsNotNull
                ]),
                inner.clone(),
            )
                .prop_map(|(op, e)| Expr::Unary {
                    op,
                    expr: Box::new(e)
                }),
            (
                inner.clone(),
                proptest::collection::vec(arb_literal(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::In {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner, arb_literal(), arb_literal()).prop_map(|(e, lo, hi)| Expr::Between {
                expr: Box::new(e),
                low: lo,
                high: hi
            }),
        ]
    })
}

fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    let scan = proptest::sample::select(vec!["t", "u"]).prop_map(LogicalPlan::scan);
    scan.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (arb_expr(), inner.clone()).prop_map(|(p, i)| i.select(p)),
            (inner.clone(), proptest::sample::select(vec!["a", "b"])).prop_map(|(i, g)| {
                i.aggregate(
                    vec![(Expr::Column(g.to_string()), g.to_string())],
                    vec![AggCall::new(AggFunc::Count, None, "n")],
                )
            }),
            (inner.clone(), 1usize..10).prop_map(|(i, n)| i.topn(n, vec![SortKey::desc("a")])),
            (inner.clone()).prop_map(|i| i.order(vec![SortKey::asc("a"), SortKey::desc("b")])),
            (inner.clone(), inner).prop_map(|(l, r)| l.join(
                r,
                vec![("a".to_string(), "b".to_string())],
                tabviz_tql::JoinType::Left
            )),
        ]
    })
}

proptest! {
    #[test]
    fn expr_write_parse_roundtrip(e in arb_expr()) {
        let text = write_expr(&e);
        let parsed = parse_expr(&text).unwrap();
        prop_assert_eq!(parsed, e, "text: {}", text);
    }

    #[test]
    fn plan_write_parse_roundtrip(p in arb_plan()) {
        let text = write_plan(&p);
        let parsed = parse_plan(&text).unwrap();
        prop_assert_eq!(parsed, p, "text: {}", text);
    }

    /// Predicate evaluation is deterministic and mask length == chunk length.
    #[test]
    fn eval_is_total_and_deterministic(e in arb_expr(), rows in 0usize..20) {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
                Field::new("c", DataType::Str),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    if i % 5 == 0 { Value::Null } else { Value::Int(i as i64 - 6) },
                    Value::Int((i * 3) as i64 % 7),
                    Value::Str(["AA", "x y", ""][i % 3].to_string()),
                ]
            })
            .collect();
        let chunk = Chunk::from_rows(schema, &data).unwrap();
        // Evaluation may fail on type mismatches (random trees); when it
        // succeeds it must be shape-correct and repeatable.
        if let Ok(out1) = e.eval(&chunk) {
            let out2 = e.eval(&chunk).unwrap();
            prop_assert_eq!(out1.len(), rows);
            for i in 0..rows {
                prop_assert_eq!(out1.get(i), out2.get(i));
            }
        }
    }

    /// AggState::merge is associative-compatible with sequential update for
    /// arbitrary splits.
    #[test]
    fn agg_merge_any_split(values in proptest::collection::vec(-50i64..50, 0..60), cut in 0usize..60) {
        use tabviz_tql::agg::AggState;
        let cut = cut.min(values.len());
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max, AggFunc::Avg, AggFunc::CountD] {
            let mut whole = AggState::new(func);
            for v in &values {
                whole.update(Some(&Value::Int(*v))).unwrap();
            }
            let mut left = AggState::new(func);
            for v in &values[..cut] {
                left.update(Some(&Value::Int(*v))).unwrap();
            }
            let mut right = AggState::new(func);
            for v in &values[cut..] {
                right.update(Some(&Value::Int(*v))).unwrap();
            }
            left.merge(&right).unwrap();
            prop_assert_eq!(left.finish(), whole.finish(), "func {:?}", func);
        }
    }
}
