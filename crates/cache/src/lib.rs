//! Query caching (Sect. 3.2 of the paper).
//!
//! "Tableau incorporates two levels of query caching: intelligent and
//! literal. The intelligent cache maps the internal query structure to a key
//! that is associated with the query results. ... When looking for matches,
//! we attempt to prove that results of the stored query subsume the
//! requested data. ... The literal query cache ... is keyed on the query
//! text."
//!
//! * [`spec`] — the normalized internal query form ([`spec::QuerySpec`])
//!   that both caches and the query processor share;
//! * [`implication`] — the predicate-implication prover behind subsumption;
//! * [`intelligent`] — the view-matching cache with roll-up / filter /
//!   projection post-processing;
//! * [`literal`] — the text-keyed cache;
//! * [`caches`] — the two levels combined, with shared eviction policy;
//! * [`persist`] — Desktop-style cache persistence across sessions;
//! * [`distributed`] — the Server-style external (Redis/Cassandra-like)
//!   layer with node-local memory;
//! * [`tier`] — the L2 abstraction composing the node-local caches with a
//!   shared store into a true L1 → L2 hierarchy;
//! * [`tags`] — dependency tags (source + table) for precise invalidation
//!   across both tiers.

pub mod caches;
pub mod distributed;
pub mod implication;
pub mod intelligent;
pub mod literal;
pub mod persist;
pub mod spec;
pub mod tags;
pub mod tier;

pub use caches::{CacheOutcome, QueryCaches, TierStats};
pub use distributed::{decode_chunk, encode_chunk, ExternalStore, ServerNodeCache};
pub use intelligent::{subsumes, IntelligentCache};
pub use literal::LiteralCache;
pub use spec::QuerySpec;
pub use tags::{source_tag, table_tag, tables_of, tags_for_spec};
pub use tier::{L2Cache, SingleStoreL2};

use tabviz_tql::expr::Expr;
use tabviz_tql::BinOp;

/// Split a conjunction into conjuncts (shared by spec decomposition and
/// matching).
pub(crate) fn split_and(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_and(left);
            out.extend(split_and(right));
            out
        }
        other => vec![other.clone()],
    }
}
