//! The normalized internal query form.
//!
//! Sect. 3.1: internal queries "express aggregate-select-project scenarios"
//! against a view that is "a single table [or] multi-table joins". A
//! [`QuerySpec`] is that shape, normalized: a relation (scans/joins only), a
//! conjunctive filter set, plain-column grouping, aggregate calls, and an
//! optional ordering/top-n. The intelligent cache matches over this
//! structure; the query processor compiles it to backend dialects.

use tabviz_common::{Result, TvError};
use tabviz_tql::expr::{and_all, Expr};
use tabviz_tql::{write_expr, write_plan, AggCall, LogicalPlan, SortKey};

/// A normalized aggregate-select-project query against one data source.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Data-source identity (cache entries never cross sources).
    pub source: String,
    /// The FROM part: `TableScan`s and `Join`s only.
    pub relation: LogicalPlan,
    /// Conjunctive predicates over detail rows.
    pub filters: Vec<Expr>,
    /// Grouping columns (plain column names — Tableau dimensions).
    pub group_by: Vec<String>,
    /// Aggregate calls (Tableau measures).
    pub aggs: Vec<AggCall>,
    pub order: Vec<SortKey>,
    pub topn: Option<usize>,
}

impl QuerySpec {
    pub fn new(source: impl Into<String>, relation: LogicalPlan) -> Self {
        QuerySpec {
            source: source.into(),
            relation,
            filters: vec![],
            group_by: vec![],
            aggs: vec![],
            order: vec![],
            topn: None,
        }
    }

    pub fn filter(mut self, e: Expr) -> Self {
        self.filters.push(e);
        self
    }

    pub fn group(mut self, col: impl Into<String>) -> Self {
        self.group_by.push(col.into());
        self
    }

    pub fn agg(mut self, call: AggCall) -> Self {
        self.aggs.push(call);
        self
    }

    pub fn order_by(mut self, keys: Vec<SortKey>) -> Self {
        self.order = keys;
        self
    }

    pub fn top(mut self, n: usize) -> Self {
        self.topn = Some(n);
        self
    }

    /// Output column names: group columns then aggregate aliases.
    pub fn output_columns(&self) -> Vec<String> {
        self.group_by
            .iter()
            .cloned()
            .chain(self.aggs.iter().map(|a| a.alias.clone()))
            .collect()
    }

    /// Sort filters into a canonical order and drop duplicates. Two specs
    /// that differ only in conjunct order normalize identically.
    pub fn normalize(&mut self) {
        self.filters.sort_by_key(write_expr);
        self.filters.dedup();
    }

    /// The executable logical plan.
    pub fn to_plan(&self) -> Result<LogicalPlan> {
        if self.group_by.is_empty() && self.aggs.is_empty() {
            return Err(TvError::Plan(
                "query spec needs grouping or aggregates".into(),
            ));
        }
        let mut plan = self.relation.clone();
        if !self.filters.is_empty() {
            plan = plan.select(and_all(self.filters.clone()));
        }
        let group_by = self
            .group_by
            .iter()
            .map(|g| (Expr::Column(g.clone()), g.clone()))
            .collect();
        plan = plan.aggregate(group_by, self.aggs.clone());
        if !self.order.is_empty() {
            plan = plan.order(self.order.clone());
        }
        if let Some(n) = self.topn {
            // TopN subsumes the explicit order when both are present.
            plan = match plan {
                LogicalPlan::Order { input, keys } => input.topn(n, keys),
                other => other.topn(n, self.order.clone()),
            };
        }
        Ok(plan)
    }

    /// Decompose a plan of the supported shape back into a spec. Returns
    /// `None` for shapes outside the aggregate-select-project pattern.
    pub fn from_plan(source: &str, plan: &LogicalPlan) -> Option<QuerySpec> {
        let mut topn = None;
        let mut order = vec![];
        let mut node = plan;
        if let LogicalPlan::TopN { input, keys, n } = node {
            topn = Some(*n);
            order = keys.clone();
            node = input;
        }
        if let LogicalPlan::Order { input, keys } = node {
            order = keys.clone();
            node = input;
        }
        let LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } = node
        else {
            return None;
        };
        let mut group_cols = Vec::with_capacity(group_by.len());
        for (e, name) in group_by {
            match e {
                Expr::Column(c) if c == name => group_cols.push(c.clone()),
                _ => return None,
            }
        }
        let mut filters = vec![];
        let mut rel = input.as_ref();
        while let LogicalPlan::Select { input, predicate } = rel {
            filters.extend(crate::split_and(predicate));
            rel = input;
        }
        if !relation_only(rel) {
            return None;
        }
        let mut spec = QuerySpec {
            source: source.to_string(),
            relation: rel.clone(),
            filters,
            group_by: group_cols,
            aggs: aggs.clone(),
            order,
            topn,
        };
        spec.normalize();
        Some(spec)
    }

    /// Bucket key: entries can only subsume each other within the same
    /// source + relation (the index the paper plans "to maintain over the
    /// cache to minimize the lookup time").
    pub fn bucket_key(&self) -> String {
        format!("{}\u{1}{}", self.source, write_plan(&self.relation))
    }

    /// Full canonical text: equal iff the specs are structurally identical
    /// (after normalization). This keys exact-match lookups, the distributed
    /// cache, and persistence.
    pub fn canonical_text(&self) -> String {
        let mut spec = self.clone();
        spec.normalize();
        let plan = spec.to_plan().map(|p| write_plan(&p)).unwrap_or_default();
        format!("{}\u{1}{}", spec.source, plan)
    }
}

/// True when the subtree is only scans and joins.
fn relation_only(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::TableScan { .. } => true,
        LogicalPlan::Join { left, right, .. } => relation_only(left) && relation_only(right),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggFunc, JoinType};

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(10i64)))
            .filter(Expr::In {
                expr: Box::new(col("carrier")),
                list: vec!["AA".into(), "DL".into()],
                negated: false,
            })
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
            .order_by(vec![SortKey::desc("n")])
            .top(5)
    }

    #[test]
    fn to_plan_shape() {
        let plan = spec().to_plan().unwrap();
        let text = plan.canonical_text();
        assert!(text.contains("TopN 5 by n DESC"));
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Select"));
        assert!(text.contains("TableScan flights"));
    }

    #[test]
    fn plan_spec_roundtrip() {
        let s = spec();
        let plan = s.to_plan().unwrap();
        let back = QuerySpec::from_plan("faa", &plan).unwrap();
        assert_eq!(back.group_by, s.group_by);
        assert_eq!(back.aggs, s.aggs);
        assert_eq!(back.topn, s.topn);
        assert_eq!(back.filters.len(), 2);
        assert_eq!(back.canonical_text(), s.canonical_text());
    }

    #[test]
    fn filter_order_normalizes_away() {
        let a = QuerySpec::new("s", LogicalPlan::scan("t"))
            .filter(bin(BinOp::Gt, col("x"), lit(1i64)))
            .filter(bin(BinOp::Lt, col("y"), lit(9i64)))
            .group("g");
        let b = QuerySpec::new("s", LogicalPlan::scan("t"))
            .filter(bin(BinOp::Lt, col("y"), lit(9i64)))
            .filter(bin(BinOp::Gt, col("x"), lit(1i64)))
            .group("g");
        assert_eq!(a.canonical_text(), b.canonical_text());
    }

    #[test]
    fn different_sources_never_share_buckets() {
        let a = QuerySpec::new("s1", LogicalPlan::scan("t")).group("g");
        let b = QuerySpec::new("s2", LogicalPlan::scan("t")).group("g");
        assert_ne!(a.bucket_key(), b.bucket_key());
    }

    #[test]
    fn join_relations_supported() {
        let rel = LogicalPlan::scan("flights").join(
            LogicalPlan::scan("carriers"),
            vec![("carrier".into(), "code".into())],
            JoinType::Inner,
        );
        let s =
            QuerySpec::new("faa", rel)
                .group("name")
                .agg(AggCall::new(AggFunc::Count, None, "n"));
        let plan = s.to_plan().unwrap();
        let back = QuerySpec::from_plan("faa", &plan).unwrap();
        assert_eq!(back.bucket_key(), s.bucket_key());
    }

    #[test]
    fn from_plan_rejects_unsupported_shapes() {
        // Projection between select and aggregate: not the ASP pattern.
        let plan = LogicalPlan::scan("t")
            .project(vec![(col("a"), "a".into())])
            .aggregate(vec![(col("a"), "a".into())], vec![]);
        assert!(QuerySpec::from_plan("s", &plan).is_none());
        // Computed group expression.
        let plan2 = LogicalPlan::scan("t").aggregate(
            vec![(bin(BinOp::Add, col("a"), lit(1i64)), "a1".into())],
            vec![],
        );
        assert!(QuerySpec::from_plan("s", &plan2).is_none());
    }

    #[test]
    fn empty_spec_rejected() {
        let s = QuerySpec::new("s", LogicalPlan::scan("t"));
        assert!(s.to_plan().is_err());
    }

    #[test]
    fn output_columns_order() {
        assert_eq!(spec().output_columns(), vec!["carrier", "n"]);
    }
}
