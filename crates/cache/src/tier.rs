//! The L2 tier abstraction of the multi-tier cache hierarchy.
//!
//! L1 is the node-local pair of intelligent + literal caches
//! ([`crate::caches::QueryCaches`]); L2 is a shared, byte-valued store
//! reachable from every node — one [`ExternalStore`] standalone, or the
//! cluster's ring-routed replicated peer tier. The processor consults L2
//! only after both L1 probes miss, promotes L2 hits into L1, and publishes
//! fresh backend results to both tiers with dependency tags so one refresh
//! event can purge dependents everywhere (see [`crate::tags`]).
//!
//! The trait lives here (not in the cluster crate) so `tabviz-core` can
//! depend on it without a dependency cycle: the cluster implements it over
//! its ring + peer tier and injects it into each node's caches at attach
//! time.

use bytes::Bytes;
use std::sync::Arc;

use crate::distributed::ExternalStore;

/// A shared second cache tier keyed by canonical query text. Values are
/// encoded chunks ([`crate::encode_chunk`]); implementations pay their own
/// transport latency and may drop operations under faults — the caller
/// treats every miss identically.
pub trait L2Cache: Send + Sync {
    /// Fetch the encoded result for `key`, if any replica holds it.
    fn get(&self, key: &str) -> Option<Bytes>;

    /// Publish an encoded result under `key` with its dependency tags.
    fn put(&self, key: &str, value: Bytes, tags: &[String]);

    /// Purge every entry carrying `tag` across the tier; returns entries
    /// removed (summed over shards/replicas).
    fn purge_tag(&self, tag: &str) -> usize;

    /// Entries currently held (summed over shards; replicas count once
    /// per shard — used for purge-fraction accounting, not capacity).
    fn entry_count(&self) -> usize;
}

/// The standalone L2: one shared [`ExternalStore`], as a single-node
/// deployment (or a test) would run Redis next to the server.
pub struct SingleStoreL2 {
    store: Arc<ExternalStore>,
}

impl SingleStoreL2 {
    pub fn new(store: Arc<ExternalStore>) -> Self {
        SingleStoreL2 { store }
    }

    pub fn store(&self) -> &Arc<ExternalStore> {
        &self.store
    }
}

impl L2Cache for SingleStoreL2 {
    fn get(&self, key: &str) -> Option<Bytes> {
        self.store.get(key)
    }

    fn put(&self, key: &str, value: Bytes, tags: &[String]) {
        self.store.put_tagged(key.to_string(), value, tags);
    }

    fn purge_tag(&self, tag: &str) -> usize {
        self.store.purge_tag(tag)
    }

    fn entry_count(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn single_store_round_trip_and_tag_purge() {
        let l2 = SingleStoreL2::new(Arc::new(ExternalStore::new(Duration::ZERO)));
        let tags = vec!["src:s".to_string(), "tbl:s\u{1}a".to_string()];
        l2.put("k1", Bytes::from_static(b"v1"), &tags);
        l2.put("k2", Bytes::from_static(b"v2"), &["src:s".to_string()]);
        assert_eq!(l2.get("k1").unwrap(), Bytes::from_static(b"v1"));
        assert_eq!(l2.entry_count(), 2);
        // Table-scoped purge removes only the tagged dependent.
        assert_eq!(l2.purge_tag("tbl:s\u{1}a"), 1);
        assert!(l2.get("k1").is_none());
        assert!(l2.get("k2").is_some());
        // Source-scoped purge sweeps the rest.
        assert_eq!(l2.purge_tag("src:s"), 1);
        assert_eq!(l2.entry_count(), 0);
    }
}
