//! Predicate implication for cache subsumption.
//!
//! Sect. 3.2: "When looking for matches, we attempt to prove that results of
//! the stored query subsume the requested data. ... The applicability of the
//! intelligent cache is limited by proving capabilities and efficiency, e.g.
//! analyzing implications of predicates, potentially large or formulated in
//! different equivalent ways." The prover here is sound but deliberately
//! incomplete: syntactic equality, plus single-column set/range reasoning
//! (`IN ⊆ IN`, `= ∈ IN`, range containment, point-in-range). Anything it
//! cannot prove is a cache miss — never a wrong answer.

use std::collections::BTreeSet;
use tabviz_common::Value;
use tabviz_tql::expr::Expr;
use tabviz_tql::{write_expr, BinOp};

/// Does `premise` (the new query's conjunct) imply `conclusion` (the cached
/// query's conjunct)? Sound: `true` only when every row satisfying `premise`
/// satisfies `conclusion`.
pub fn implies(premise: &Expr, conclusion: &Expr) -> bool {
    if let Expr::Literal(Value::Bool(true)) = conclusion {
        return true;
    }
    if write_expr(premise) == write_expr(conclusion) {
        return true;
    }
    let (Some(p), Some(c)) = (Constraint::of(premise), Constraint::of(conclusion)) else {
        return false;
    };
    if p.column != c.column {
        return false;
    }
    c.contains(&p)
}

/// A single-column value constraint: a finite set, a range, or both absent
/// (just non-null).
#[derive(Debug, Clone)]
struct Constraint {
    column: String,
    /// Finite admissible set (from `=` / `IN`).
    set: Option<BTreeSet<Value>>,
    /// Lower bound (value, inclusive).
    low: Option<(Value, bool)>,
    /// Upper bound (value, inclusive).
    high: Option<(Value, bool)>,
}

impl Constraint {
    fn of(e: &Expr) -> Option<Constraint> {
        match e {
            Expr::Binary { op, left, right } => {
                let (col, lit, flipped) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), Expr::Literal(v)) => (c, v, false),
                    (Expr::Literal(v), Expr::Column(c)) => (c, v, true),
                    _ => return None,
                };
                if lit.is_null() {
                    return None;
                }
                let op = if flipped { flip(*op)? } else { *op };
                let mut k = Constraint {
                    column: col.clone(),
                    set: None,
                    low: None,
                    high: None,
                };
                match op {
                    BinOp::Eq => {
                        k.set = Some(std::iter::once(lit.clone()).collect());
                    }
                    BinOp::Lt => k.high = Some((lit.clone(), false)),
                    BinOp::Le => k.high = Some((lit.clone(), true)),
                    BinOp::Gt => k.low = Some((lit.clone(), false)),
                    BinOp::Ge => k.low = Some((lit.clone(), true)),
                    _ => return None,
                }
                Some(k)
            }
            Expr::In {
                expr,
                list,
                negated,
            } => {
                if *negated {
                    return None;
                }
                let Expr::Column(c) = expr.as_ref() else {
                    return None;
                };
                Some(Constraint {
                    column: c.clone(),
                    set: Some(list.iter().filter(|v| !v.is_null()).cloned().collect()),
                    low: None,
                    high: None,
                })
            }
            Expr::Between { expr, low, high } => {
                let Expr::Column(c) = expr.as_ref() else {
                    return None;
                };
                Some(Constraint {
                    column: c.clone(),
                    set: None,
                    low: Some((low.clone(), true)),
                    high: Some((high.clone(), true)),
                })
            }
            _ => None,
        }
    }

    /// Does every value admitted by `other` satisfy `self`?
    fn contains(&self, other: &Constraint) -> bool {
        match (&self.set, &other.set) {
            // set ⊇ set
            (Some(mine), Some(theirs)) => theirs.is_subset(mine),
            // range ⊇ set: every value in range
            (None, Some(theirs)) => theirs.iter().all(|v| self.admits(v)),
            // set can never contain a (dense) range
            (Some(_), None) => false,
            // range ⊇ range
            (None, None) => bound_le(&self.low, &other.low) && bound_ge(&self.high, &other.high),
        }
    }

    fn admits(&self, v: &Value) -> bool {
        if let Some((lo, incl)) = &self.low {
            match v.cmp(lo) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal if !incl => return false,
                _ => {}
            }
        }
        if let Some((hi, incl)) = &self.high {
            match v.cmp(hi) {
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal if !incl => return false,
                _ => {}
            }
        }
        true
    }
}

/// mine.low ≤ other.low (mine admits everything other's lower bound admits).
fn bound_le(mine: &Option<(Value, bool)>, other: &Option<(Value, bool)>) -> bool {
    match (mine, other) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some((mv, mi)), Some((ov, oi))) => match mv.cmp(ov) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => *mi || !*oi,
            std::cmp::Ordering::Greater => false,
        },
    }
}

/// mine.high ≥ other.high.
fn bound_ge(mine: &Option<(Value, bool)>, other: &Option<(Value, bool)>) -> bool {
    match (mine, other) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some((mv, mi)), Some((ov, oi))) => match mv.cmp(ov) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => *mi || !*oi,
            std::cmp::Ordering::Less => false,
        },
    }
}

fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_tql::parser::parse_expr;

    fn imp(p: &str, c: &str) -> bool {
        implies(&parse_expr(p).unwrap(), &parse_expr(c).unwrap())
    }

    #[test]
    fn syntactic_equality() {
        assert!(imp("(> delay 10)", "(> delay 10)"));
        assert!(imp("(upper s)", "(upper s)")); // even unanalyzable shapes
    }

    #[test]
    fn anything_implies_true() {
        assert!(imp("(> delay 10)", "true"));
    }

    #[test]
    fn in_subset() {
        assert!(imp("(in c \"AA\")", "(in c \"AA\" \"DL\")"));
        assert!(imp("(= c \"AA\")", "(in c \"AA\" \"DL\")"));
        assert!(!imp("(in c \"AA\" \"WN\")", "(in c \"AA\" \"DL\")"));
        assert!(!imp("(in c \"AA\" \"DL\")", "(in c \"AA\")"));
    }

    #[test]
    fn range_containment() {
        assert!(imp("(> x 10)", "(> x 5)"));
        assert!(imp("(> x 10)", "(>= x 10)"));
        assert!(!imp("(>= x 10)", "(> x 10)"));
        assert!(imp("(between x 3 7)", "(between x 0 10)"));
        assert!(!imp("(between x 0 10)", "(between x 3 7)"));
        assert!(imp("(< x 5)", "(<= x 5)"));
    }

    #[test]
    fn set_in_range_and_vice_versa() {
        assert!(imp("(in x 3 4 5)", "(between x 1 10)"));
        assert!(!imp("(in x 3 40)", "(between x 1 10)"));
        assert!(imp("(= x 5)", "(> x 1)"));
        // A range never proves membership in a finite set.
        assert!(!imp("(between x 3 4)", "(in x 3 4)"));
    }

    #[test]
    fn flipped_literal_side() {
        assert!(imp("(< 10 x)", "(> x 5)")); // 10 < x ≡ x > 10 ⇒ x > 5
        assert!(imp("(= 5 x)", "(in x 5 6)"));
    }

    #[test]
    fn different_columns_never_imply() {
        assert!(!imp("(> x 10)", "(> y 5)"));
    }

    #[test]
    fn unprovable_is_false_not_wrong() {
        assert!(!imp("(and (> x 10) (< x 20))", "(> x 5)")); // conjunctions unanalyzed
        assert!(!imp("(notin c \"AA\")", "(notin c \"AA\" \"DL\")"));
        assert!(!imp("(> x 10)", "(isnull x)"));
    }

    #[test]
    fn null_literals_rejected() {
        assert!(!imp("(= x null)", "(= x null)") || imp("(= x null)", "(= x null)"));
        // (text equality still allows exact match)
        assert!(imp("(= x null)", "(= x null)"));
    }
}
