//! The intelligent (view-matching) query cache.
//!
//! Sect. 3.2: "The intelligent cache can be treated as a database
//! view-matching component. It keeps the application highly responsive as
//! long as covering data is available and can be post-processed. ... The
//! latter includes roll-up, filtering, calculation projection, and column
//! restriction."
//!
//! Matching rules (sound under the ASP query model):
//! * same source and identical relation (FROM) subtree;
//! * every cached filter conjunct is implied by some requested conjunct;
//! * the requested grouping is a subset of the cached grouping (roll-up);
//! * every requested aggregate is derivable: identical call when groupings
//!   match, a roll-up function otherwise (`SUM` of `SUM`s, `SUM` of
//!   `COUNT`s, `MIN`/`MAX` of themselves, `AVG` from cached `SUM`+`COUNT`);
//!   `COUNTD` only at identical grouping;
//! * residual filter conjuncts reference cached *group* columns only (a
//!   detail-level filter cannot be applied to aggregated rows);
//! * a cached Top-N result is reusable only for the structurally identical
//!   request (truncation loses rows).
//!
//! Post-processing executes a real TDE plan over the cached chunk, reusing
//! the tested engine rather than a second aggregation path.

use crate::implication::implies;
use crate::spec::QuerySpec;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tabviz_common::{Chunk, Result, TvError};
use tabviz_obs::{stage, Counter, Histogram, Registry};
use tabviz_storage::{Database, Table};
use tabviz_tde::{ExecOptions, Tde};
use tabviz_tql::expr::{and_all, bin, col, Expr};
use tabviz_tql::{write_expr, AggCall, AggFunc, BinOp, LogicalPlan};

/// How a requested aggregate is produced from the cached columns.
#[derive(Debug, Clone)]
enum AggSource {
    /// Same grouping: copy the cached column.
    Column(String),
    /// Coarser grouping: re-aggregate the cached column with this function.
    Rollup(AggFunc, String),
    /// AVG at coarser grouping: SUM(sum_col) / SUM(count_col).
    AvgOf { sum_col: String, cnt_col: String },
}

/// A successful match, ready for post-processing.
#[derive(Debug, Clone)]
struct MatchPlan {
    residual: Vec<Expr>,
    same_grouping: bool,
    sources: Vec<AggSource>,
}

/// One cached result.
struct Entry {
    spec: QuerySpec,
    result: Chunk,
    bytes: usize,
    created: Instant,
    last_used: Instant,
    use_count: u64,
    /// What re-evaluating this query cost (eviction prefers keeping
    /// expensive entries).
    cost: Duration,
    /// Set when the source was refreshed while its backend was unreachable:
    /// the entry no longer serves normal lookups but remains available for
    /// degraded (stale) serving until a fresh result replaces it.
    stale: bool,
    /// When the entry went stale. Within [`CacheConfig::swr_grace`] of this
    /// instant, a stale entry still serves *normal* lookups
    /// (stale-while-revalidate) while the maintenance lane refreshes it.
    stale_since: Option<Instant>,
    /// Dependency tags (see [`crate::tags`]) for precise invalidation.
    tags: Vec<String>,
}

impl Entry {
    /// Eviction score: higher = more worth keeping. "Cache entries ... are
    /// purged based upon a combination of entry age, usage, and the expense
    /// of re-evaluating the query."
    fn score(&self, now: Instant) -> f64 {
        let age = now.duration_since(self.created).as_secs_f64() + 1.0;
        let idle = now.duration_since(self.last_used).as_secs_f64() + 1.0;
        let cost = self.cost.as_secs_f64() * 1e3 + 1.0;
        cost * (self.use_count as f64 + 1.0) / (age * idle)
    }
}

/// Counters for experiments.
#[derive(Debug, Clone, Default)]
pub struct IntelligentStats {
    pub exact_hits: u64,
    pub subsumption_hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub rejected_inserts: u64,
    pub evictions: u64,
    /// Degraded lookups answered from an entry marked stale.
    pub stale_serves: u64,
    /// Normal lookups answered from a stale entry inside the SWR grace
    /// window (served immediately, refreshed in the background).
    pub swr_serves: u64,
}

/// Live counters, kept OUTSIDE the entry-map mutex so hot-path bookkeeping
/// and [`IntelligentCache::stats`] snapshots never contend with lookups
/// holding the lock. Relaxed ordering suffices: these are monotone counts,
/// not synchronization points.
#[derive(Default)]
struct AtomicStats {
    exact_hits: AtomicU64,
    subsumption_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    rejected_inserts: AtomicU64,
    evictions: AtomicU64,
    stale_serves: AtomicU64,
    swr_serves: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> IntelligentStats {
        IntelligentStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            subsumption_hits: self.subsumption_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            rejected_inserts: self.rejected_inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            swr_serves: self.swr_serves.load(Ordering::Relaxed),
        }
    }
}

#[inline]
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total result-byte budget.
    pub capacity_bytes: usize,
    /// "we cache all the query results unless ... the results are
    /// excessively large".
    pub max_entry_bytes: usize,
    /// "... unless computation time is comparable with a cache lookup time".
    pub min_cost: Duration,
    /// Accept the first match instead of ranking by post-processing effort
    /// (the paper's shipped 9.0 behavior; ranking is its stated plan).
    pub first_match: bool,
    /// Stale-while-revalidate grace window: a stale entry younger (as
    /// stale) than this still answers normal lookups immediately — flagged
    /// with the `cache_swr_serve` reason — while the Background-priority
    /// revalidation lane refreshes it. `ZERO` disables SWR: stale entries
    /// then only serve the explicit degraded path, the pre-hierarchy
    /// behavior.
    pub swr_grace: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
            max_entry_bytes: 8 << 20,
            min_cost: Duration::from_micros(50),
            first_match: false,
            swr_grace: Duration::ZERO,
        }
    }
}

struct Inner {
    /// bucket key → entry ids (the relation-level index).
    buckets: HashMap<String, Vec<u64>>,
    entries: HashMap<u64, Entry>,
    next_id: u64,
    bytes: usize,
}

/// Pre-resolved `tv_cache_intelligent_*` metric handles (see
/// [`IntelligentCache::bind_obs`]). `stale_age` records age-at-serve of
/// every degraded (stale) answer — the data the stale-TTL policy needs.
struct CacheMetrics {
    exact_hits: Counter,
    subsumption_hits: Counter,
    misses: Counter,
    inserts: Counter,
    rejected_inserts: Counter,
    evictions: Counter,
    stale_serves: Counter,
    swr_serves: Counter,
    stale_age: Histogram,
}

impl CacheMetrics {
    fn bind(registry: &Registry) -> Self {
        CacheMetrics {
            exact_hits: registry.counter("tv_cache_intelligent_exact_hits_total"),
            subsumption_hits: registry.counter("tv_cache_intelligent_subsumption_hits_total"),
            misses: registry.counter("tv_cache_intelligent_misses_total"),
            inserts: registry.counter("tv_cache_intelligent_inserts_total"),
            rejected_inserts: registry.counter("tv_cache_intelligent_rejected_inserts_total"),
            evictions: registry.counter("tv_cache_intelligent_evictions_total"),
            stale_serves: registry.counter("tv_cache_intelligent_stale_serves_total"),
            swr_serves: registry.counter("tv_cache_intelligent_swr_serves_total"),
            stale_age: registry.histogram("tv_cache_stale_age_seconds"),
        }
    }
}

/// The intelligent cache. Thread-safe.
pub struct IntelligentCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
    stats: AtomicStats,
    metrics: OnceLock<CacheMetrics>,
}

impl Default for IntelligentCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl IntelligentCache {
    pub fn new(config: CacheConfig) -> Self {
        IntelligentCache {
            config,
            inner: Mutex::new(Inner {
                buckets: HashMap::new(),
                entries: HashMap::new(),
                next_id: 0,
                bytes: 0,
            }),
            stats: AtomicStats::default(),
            metrics: OnceLock::new(),
        }
    }

    /// Resolve this cache's `tv_cache_intelligent_*` metrics against a
    /// registry. Idempotent; the first binding wins.
    pub fn bind_obs(&self, registry: &Registry) {
        let _ = self.metrics.set(CacheMetrics::bind(registry));
    }

    fn obs(&self) -> Option<&CacheMetrics> {
        self.metrics.get()
    }

    /// Lock-free snapshot of the live counters.
    pub fn stats(&self) -> IntelligentStats {
        self.stats.snapshot()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Look up a query; on a subsumption hit the cached chunk is
    /// post-processed into the requested shape.
    ///
    /// The paper's shipped version "accept[s] the first match"; its stated
    /// plan — "choose the entry that requires the least post-processing" —
    /// is implemented here (and is the default): all matches in the bucket
    /// are ranked by post-processing effort (exact < project/filter <
    /// roll-up, ties broken by fewer cached rows) and the cheapest wins.
    /// Set [`CacheConfig::first_match`] to reproduce the paper's shipped
    /// behavior.
    pub fn get(&self, spec: &QuerySpec) -> Option<Chunk> {
        self.lookup(spec, false, false).0
    }

    /// [`IntelligentCache::get`] with decision attribution: also returns
    /// the verdict reason code (see [`tabviz_obs::reason`]) — which kind of
    /// hit, or for a miss *which subsumption check* rejected the closest
    /// candidate.
    pub fn get_explained(&self, spec: &QuerySpec) -> (Option<Chunk>, &'static str) {
        self.lookup(spec, false, false)
    }

    /// [`IntelligentCache::get_explained`] with stale-within-grace (SWR)
    /// serving disabled: only genuinely fresh entries answer. This is the
    /// lookup the Background revalidation lane must use — it *is* the
    /// refresh SWR serving counts on, so letting a grace-window entry
    /// answer it would mark stale data fresh and the entry would never
    /// actually revalidate.
    pub fn get_explained_fresh_only(&self, spec: &QuerySpec) -> (Option<Chunk>, &'static str) {
        self.lookup(spec, false, true)
    }

    /// Degraded-path lookup: also considers entries marked stale by
    /// [`IntelligentCache::mark_source_stale`]. Used when the backend is
    /// unreachable and a stale answer beats a failed dashboard. Serves count
    /// as `stale_serves`; misses here do not inflate the miss counter (the
    /// normal lookup already recorded one).
    pub fn get_stale(&self, spec: &QuerySpec) -> Option<Chunk> {
        self.lookup(spec, true, false).0
    }

    fn lookup(
        &self,
        spec: &QuerySpec,
        allow_stale: bool,
        fresh_only: bool,
    ) -> (Option<Chunk>, &'static str) {
        let mut inner = self.inner.lock();
        let bucket = spec.bucket_key();
        let ids: Vec<u64> = inner.buckets.get(&bucket).cloned().unwrap_or_default();
        // Decision attribution: remember the furthest-advancing rejection
        // across candidates, so a miss names the subsumption check that
        // failed on the *closest* entry rather than an arbitrary one.
        let mut miss_reason = tabviz_obs::reason::CACHE_MISS_NO_CANDIDATE;
        // Collect candidate matches (most recent first — interactions tend
        // to refine the latest view, so recency breaks exact ties). The
        // final bool marks SWR candidates: stale, but inside the grace
        // window, so servable on the normal path while revalidation runs.
        let grace = self.config.swr_grace;
        let mut candidates: Vec<(u64, MatchPlan, u32, usize, bool)> = Vec::new();
        for &id in ids.iter().rev() {
            let entry = match inner.entries.get(&id) {
                Some(e) => e,
                None => continue,
            };
            let swr = entry.stale
                && !allow_stale
                && !fresh_only
                && !grace.is_zero()
                && entry.stale_since.is_some_and(|t| t.elapsed() <= grace);
            if entry.stale && !allow_stale && !swr {
                continue;
            }
            let plan = match match_specs_explained(&entry.spec, spec) {
                Ok(plan) => plan,
                Err(why) => {
                    if miss_rank(why) > miss_rank(miss_reason) {
                        miss_reason = why;
                    }
                    continue;
                }
            };
            // Exact only if the cached chunk is column-for-column the
            // requested shape: same groups, and the SAME NUMBER of
            // aggregates (a fused/widened superset entry must be projected,
            // not returned verbatim with its extra columns).
            let exact =
                plan.residual.is_empty()
                    && plan.same_grouping
                    && spec.topn.is_none()
                    && spec.order.is_empty()
                    && entry.spec.aggs.len() == spec.aggs.len()
                    && plan.sources.iter().enumerate().all(
                        |(i, s)| matches!(s, AggSource::Column(c) if *c == spec.aggs[i].alias),
                    )
                    && entry.spec.group_by == spec.group_by;
            // Post-processing effort rank.
            let effort: u32 = if exact {
                0
            } else if plan.same_grouping {
                1 + u32::from(!plan.residual.is_empty())
            } else {
                3 + u32::from(!plan.residual.is_empty())
            };
            candidates.push((id, plan, effort, entry.result.len(), swr));
            if self.config.first_match || (effort == 0 && !swr) {
                break;
            }
        }
        // Fresh entries before SWR ones, then least post-processing first;
        // among equals, the smaller input.
        candidates.sort_by_key(|&(_, _, effort, rows, swr)| (swr, effort, rows));

        for (id, plan, effort, _, swr) in candidates {
            let entry = match inner.entries.get(&id) {
                Some(e) => e,
                None => continue,
            };
            let cached = entry.result.clone();
            let cached_spec = entry.spec.clone();
            let created = entry.created;
            // Update usage accounting.
            let e = inner.entries.get_mut(&id).expect("entry exists");
            e.use_count += 1;
            e.last_used = Instant::now();
            if effort == 0 {
                if allow_stale {
                    bump(&self.stats.stale_serves);
                    self.observe_stale_serve(created);
                    return (Some(cached), tabviz_obs::reason::CACHE_HIT_STALE);
                }
                if swr {
                    bump(&self.stats.swr_serves);
                    self.observe_swr_serve(created);
                    return (Some(cached), tabviz_obs::reason::CACHE_SWR_SERVE);
                }
                bump(&self.stats.exact_hits);
                if let Some(m) = self.obs() {
                    m.exact_hits.inc();
                }
                return (Some(cached), tabviz_obs::reason::CACHE_HIT_EXACT);
            }
            let same_grouping = plan.same_grouping;
            match post_process(&cached_spec, cached, spec, &plan) {
                Ok(out) => {
                    if allow_stale {
                        bump(&self.stats.stale_serves);
                        self.observe_stale_serve(created);
                        return (Some(out), tabviz_obs::reason::CACHE_HIT_STALE);
                    }
                    if swr {
                        bump(&self.stats.swr_serves);
                        self.observe_swr_serve(created);
                        return (Some(out), tabviz_obs::reason::CACHE_SWR_SERVE);
                    }
                    bump(&self.stats.subsumption_hits);
                    if let Some(m) = self.obs() {
                        m.subsumption_hits.inc();
                    }
                    let why = if same_grouping {
                        tabviz_obs::reason::CACHE_HIT_RESIDUAL
                    } else {
                        tabviz_obs::reason::CACHE_HIT_ROLLUP
                    };
                    return (Some(out), why);
                }
                Err(_) => continue, // be conservative: treat as non-match
            }
        }
        if !allow_stale {
            bump(&self.stats.misses);
            if let Some(m) = self.obs() {
                m.misses.inc();
            }
        }
        (None, miss_reason)
    }

    /// A stale entry was served degraded: record its age-at-serve (the data
    /// a future stale-TTL policy needs) and tag the current trace.
    fn observe_stale_serve(&self, created: Instant) {
        let age = created.elapsed();
        if let Some(m) = self.obs() {
            m.stale_serves.inc();
            m.stale_age.observe(age);
        }
        tabviz_obs::event_with(
            stage::STALE_SERVE,
            Some("intelligent"),
            Some(age.as_micros().min(u64::MAX as u128) as u64),
            Some(tabviz_obs::reason::CACHE_HIT_STALE),
        );
    }

    /// A stale-within-grace entry answered a normal lookup (SWR): the serve
    /// is immediate, the entry stays on the stale list so the maintenance
    /// lane revalidates it in the Background class.
    fn observe_swr_serve(&self, created: Instant) {
        let age = created.elapsed();
        if let Some(m) = self.obs() {
            m.swr_serves.inc();
            m.stale_age.observe(age);
        }
        tabviz_obs::event_with(
            stage::STALE_SERVE,
            Some("swr"),
            Some(age.as_micros().min(u64::MAX as u128) as u64),
            Some(tabviz_obs::reason::CACHE_SWR_SERVE),
        );
    }

    /// Insert a result. `cost` is what computing it took.
    pub fn put(&self, spec: QuerySpec, result: Chunk, cost: Duration) {
        let bytes = result.approx_bytes();
        if bytes > self.config.max_entry_bytes || cost < self.config.min_cost {
            bump(&self.stats.rejected_inserts);
            if let Some(m) = self.obs() {
                m.rejected_inserts.inc();
            }
            return;
        }
        let mut inner = self.inner.lock();
        let mut spec = spec;
        spec.normalize();
        let bucket = spec.bucket_key();
        // A fresh result replaces ANY existing entry for the same spec:
        // stale ones by the revalidation contract ("until a fresh result
        // replaces it"), fresh ones so concurrent threads racing to store
        // the same (e.g. widened) result converge on one entry instead of
        // accumulating duplicates — put is idempotent per spec.
        let superseded: Vec<u64> = inner
            .buckets
            .get(&bucket)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|id| inner.entries.get(id).is_some_and(|e| e.spec == spec))
                    .collect()
            })
            .unwrap_or_default();
        for old in superseded {
            if let Some(e) = inner.entries.remove(&old) {
                inner.bytes -= e.bytes;
            }
            if let Some(ids) = inner.buckets.get_mut(&bucket) {
                ids.retain(|&i| i != old);
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let now = Instant::now();
        let tags = crate::tags::tags_for_spec(&spec);
        inner.entries.insert(
            id,
            Entry {
                spec,
                result,
                bytes,
                created: now,
                last_used: now,
                use_count: 0,
                cost,
                stale: false,
                stale_since: None,
                tags,
            },
        );
        inner.buckets.entry(bucket).or_default().push(id);
        inner.bytes += bytes;
        bump(&self.stats.inserts);
        if let Some(m) = self.obs() {
            m.inserts.inc();
        }
        self.enforce_capacity(&mut inner);
    }

    fn enforce_capacity(&self, inner: &mut Inner) {
        while inner.bytes > self.config.capacity_bytes && inner.entries.len() > 1 {
            let now = Instant::now();
            let victim = inner
                .entries
                .iter()
                .min_by(|a, b| {
                    a.1.score(now)
                        .partial_cmp(&b.1.score(now))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(id, _)| *id);
            let Some(id) = victim else { break };
            if let Some(e) = inner.entries.remove(&id) {
                inner.bytes -= e.bytes;
                bump(&self.stats.evictions);
                if let Some(m) = self.obs() {
                    m.evictions.inc();
                }
                let bucket = e.spec.bucket_key();
                if let Some(ids) = inner.buckets.get_mut(&bucket) {
                    ids.retain(|&i| i != id);
                }
            }
        }
    }

    /// Mark every entry of a source stale instead of purging it: the data
    /// may be outdated (refresh signalled while the backend was unreachable)
    /// but is still worth serving in degraded mode. Returns how many entries
    /// were newly marked.
    pub fn mark_source_stale(&self, source: &str) -> usize {
        let mut inner = self.inner.lock();
        let prefix = format!("{source}\u{1}");
        let ids: Vec<u64> = inner
            .buckets
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        let mut marked = 0;
        let now = Instant::now();
        for id in ids {
            if let Some(e) = inner.entries.get_mut(&id) {
                if !e.stale {
                    e.stale = true;
                    e.stale_since = Some(now);
                    marked += 1;
                }
            }
        }
        marked
    }

    /// Mark every entry carrying `tag` stale (see [`crate::tags`]) — the
    /// SWR-friendly half of tag invalidation: dependents keep serving
    /// inside the grace window while revalidation refreshes them. Returns
    /// how many entries were newly marked.
    pub fn mark_tag_stale(&self, tag: &str) -> usize {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        let mut marked = 0;
        for e in inner.entries.values_mut() {
            if !e.stale && e.tags.iter().any(|t| t == tag) {
                e.stale = true;
                e.stale_since = Some(now);
                marked += 1;
            }
        }
        marked
    }

    /// Remove every entry carrying `tag`; returns how many were removed.
    /// This is the precise replacement for wholesale [`purge_source`]: a
    /// table refresh purges exactly its dependents.
    ///
    /// [`purge_source`]: IntelligentCache::purge_source
    pub fn purge_tag(&self, tag: &str) -> usize {
        let mut inner = self.inner.lock();
        let victims: Vec<u64> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.tags.iter().any(|t| t == tag))
            .map(|(id, _)| *id)
            .collect();
        for id in &victims {
            if let Some(e) = inner.entries.remove(id) {
                inner.bytes -= e.bytes;
                let bucket = e.spec.bucket_key();
                if let Some(ids) = inner.buckets.get_mut(&bucket) {
                    ids.retain(|i| i != id);
                    if ids.is_empty() {
                        inner.buckets.remove(&bucket);
                    }
                }
            }
        }
        victims.len()
    }

    /// Purge every entry belonging to a source ("entries are also purged
    /// when a connection to a data source is closed or refreshed").
    pub fn purge_source(&self, source: &str) {
        let mut inner = self.inner.lock();
        let prefix = format!("{source}\u{1}");
        let buckets: Vec<String> = inner
            .buckets
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        for b in buckets {
            if let Some(ids) = inner.buckets.remove(&b) {
                for id in ids {
                    if let Some(e) = inner.entries.remove(&id) {
                        inner.bytes -= e.bytes;
                    }
                }
            }
        }
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buckets.clear();
        inner.entries.clear();
        inner.bytes = 0;
    }

    /// Stale entries with their age since creation, oldest first — the
    /// work list for the background revalidation lane. (Age is measured
    /// from entry creation: an entry that outlives the staleness budget is
    /// overdue for a re-fetch regardless of when the refresh happened.)
    pub fn stale_entries(&self) -> Vec<(QuerySpec, Duration)> {
        let inner = self.inner.lock();
        let now = Instant::now();
        let mut out: Vec<(QuerySpec, Duration)> = inner
            .entries
            .values()
            .filter(|e| e.stale)
            .map(|e| (e.spec.clone(), now.duration_since(e.created)))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// Snapshot all entries (persistence).
    pub fn snapshot(&self) -> Vec<(QuerySpec, Chunk, Duration)> {
        let inner = self.inner.lock();
        inner
            .entries
            .values()
            .map(|e| (e.spec.clone(), e.result.clone(), e.cost))
            .collect()
    }

    /// The top-`k` fresh entries by use count (ties: higher eviction score
    /// first) — the popularity list cache warming replays into a joining
    /// node's L1.
    pub fn hot_entries(&self, k: usize) -> Vec<(QuerySpec, Chunk, Duration)> {
        let inner = self.inner.lock();
        let now = Instant::now();
        let mut hot: Vec<&Entry> = inner.entries.values().filter(|e| !e.stale).collect();
        hot.sort_by(|a, b| {
            b.use_count.cmp(&a.use_count).then(
                b.score(now)
                    .partial_cmp(&a.score(now))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        hot.truncate(k);
        hot.iter()
            .map(|e| (e.spec.clone(), e.result.clone(), e.cost))
            .collect()
    }
}

/// Public subsumption test: can a (hypothetical) cached result of `cached`
/// answer `req` after post-processing? Used by the batch processor to build
/// the Fig. 3 cache-hit-opportunity graph ("the latter is determined by the
/// matching logic of the intelligent query cache", Sect. 3.3).
pub fn subsumes(cached: &QuerySpec, req: &QuerySpec) -> bool {
    match_specs(cached, req).is_some()
}

/// Try to match a cached spec against a request.
fn match_specs(cached: &QuerySpec, req: &QuerySpec) -> Option<MatchPlan> {
    match_specs_explained(cached, req).ok()
}

/// How far a rejection got through the subsumption checks — used to pick
/// the most informative miss reason across candidates.
fn miss_rank(reason: &'static str) -> u32 {
    use tabviz_obs::reason as r;
    match reason {
        r::CACHE_MISS_NO_CANDIDATE => 0,
        r::CACHE_MISS_TOPN => 1,
        r::CACHE_MISS_GROUP_NOT_SUBSET => 2,
        r::CACHE_MISS_FILTER_NOT_IMPLIED => 3,
        r::CACHE_MISS_RESIDUAL_COLUMN => 4,
        r::CACHE_MISS_AGG_NOT_DERIVABLE => 5,
        _ => 0,
    }
}

/// [`match_specs`] with the failed check named: `Err` carries the
/// [`tabviz_obs::reason`] code of the first subsumption rule that rejected
/// this candidate.
fn match_specs_explained(
    cached: &QuerySpec,
    req: &QuerySpec,
) -> std::result::Result<MatchPlan, &'static str> {
    use tabviz_obs::reason as why;
    if cached.source != req.source {
        return Err(why::CACHE_MISS_NO_CANDIDATE);
    }
    // Top-N cached results only serve identical requests.
    if cached.topn.is_some() && cached.canonical_text() != req.canonical_text() {
        return Err(why::CACHE_MISS_TOPN);
    }
    // Grouping must coarsen: every requested group column is cached.
    if !req.group_by.iter().all(|g| cached.group_by.contains(g)) {
        return Err(why::CACHE_MISS_GROUP_NOT_SUBSET);
    }
    let same_grouping = req.group_by.len() == cached.group_by.len();

    // Filters: every cached conjunct must be implied by some requested one.
    for c in &cached.filters {
        if !req.filters.iter().any(|r| implies(r, c)) {
            return Err(why::CACHE_MISS_FILTER_NOT_IMPLIED);
        }
    }
    // Residual: requested conjuncts not already enforced verbatim.
    let cached_texts: Vec<String> = cached.filters.iter().map(write_expr).collect();
    let residual: Vec<Expr> = req
        .filters
        .iter()
        .filter(|r| !cached_texts.contains(&write_expr(r)))
        .cloned()
        .collect();
    // Residual conjuncts must be evaluable on the aggregated cache rows:
    // they may touch cached group columns only.
    for r in &residual {
        if !r.columns().iter().all(|c| cached.group_by.contains(c)) {
            return Err(why::CACHE_MISS_RESIDUAL_COLUMN);
        }
    }

    // Aggregates.
    let not_derivable = why::CACHE_MISS_AGG_NOT_DERIVABLE;
    let mut sources = Vec::with_capacity(req.aggs.len());
    for a in &req.aggs {
        let found = cached
            .aggs
            .iter()
            .find(|c| c.func == a.func && c.arg == a.arg);
        let source = match (found, same_grouping) {
            (Some(c), true) => AggSource::Column(c.alias.clone()),
            (Some(c), false) => match a.func.rollup_func() {
                Some(f) => AggSource::Rollup(f, c.alias.clone()),
                None if a.func == AggFunc::Avg => avg_parts(cached, a).ok_or(not_derivable)?,
                None => return Err(not_derivable), // COUNTD at coarser grouping
            },
            // AVG derivable from cached SUM+COUNT even when AVG itself is
            // not cached (at either grouping).
            (None, _) if a.func == AggFunc::Avg => avg_parts(cached, a).ok_or(not_derivable)?,
            (None, _) => return Err(not_derivable),
        };
        sources.push(source);
    }
    Ok(MatchPlan {
        residual,
        same_grouping,
        sources,
    })
}

/// Locate cached SUM(arg) and COUNT(arg) columns for deriving an AVG.
fn avg_parts(cached: &QuerySpec, avg: &AggCall) -> Option<AggSource> {
    let sum = cached
        .aggs
        .iter()
        .find(|c| c.func == AggFunc::Sum && c.arg == avg.arg)?;
    let cnt = cached
        .aggs
        .iter()
        .find(|c| c.func == AggFunc::Count && c.arg == avg.arg)?;
    Some(AggSource::AvgOf {
        sum_col: sum.alias.clone(),
        cnt_col: cnt.alias.clone(),
    })
}

/// Execute the post-processing (filter → roll-up → project → order/top-n)
/// over the cached chunk with a throwaway TDE.
fn post_process(
    cached_spec: &QuerySpec,
    cached: Chunk,
    req: &QuerySpec,
    mp: &MatchPlan,
) -> Result<Chunk> {
    let db = Arc::new(Database::new("__cache"));
    db.put(Table::from_chunk("__cached", &cached, &[])?)?;
    let mut plan = LogicalPlan::scan("__cached");
    if !mp.residual.is_empty() {
        plan = plan.select(and_all(mp.residual.clone()));
    }
    let _ = cached_spec;
    if mp.same_grouping {
        // Pure filter + projection.
        let mut exprs: Vec<(Expr, String)> = req
            .group_by
            .iter()
            .map(|g| (col(g.clone()), g.clone()))
            .collect();
        for (a, src) in req.aggs.iter().zip(&mp.sources) {
            let e = match src {
                AggSource::Column(c) => col(c.clone()),
                AggSource::AvgOf { sum_col, cnt_col } => {
                    bin(BinOp::Div, col(sum_col.clone()), col(cnt_col.clone()))
                }
                AggSource::Rollup(..) => {
                    return Err(TvError::Plan("rollup with same grouping".into()))
                }
            };
            exprs.push((e, a.alias.clone()));
        }
        plan = plan.project(exprs);
    } else {
        // Roll up to the coarser grouping.
        let group_by: Vec<(Expr, String)> = req
            .group_by
            .iter()
            .map(|g| (col(g.clone()), g.clone()))
            .collect();
        let mut calls: Vec<AggCall> = Vec::new();
        let mut avg_fixups: Vec<(String, String, String)> = Vec::new(); // (alias, sum, cnt)
        for (a, src) in req.aggs.iter().zip(&mp.sources) {
            match src {
                AggSource::Rollup(f, c) => {
                    calls.push(AggCall::new(*f, Some(col(c.clone())), a.alias.clone()));
                }
                AggSource::AvgOf { sum_col, cnt_col } => {
                    let s_alias = format!("__{}_s", a.alias);
                    let c_alias = format!("__{}_c", a.alias);
                    calls.push(AggCall::new(
                        AggFunc::Sum,
                        Some(col(sum_col.clone())),
                        s_alias.clone(),
                    ));
                    calls.push(AggCall::new(
                        AggFunc::Sum,
                        Some(col(cnt_col.clone())),
                        c_alias.clone(),
                    ));
                    avg_fixups.push((a.alias.clone(), s_alias, c_alias));
                }
                AggSource::Column(_) => {
                    return Err(TvError::Plan(
                        "column passthrough at coarser grouping".into(),
                    ))
                }
            }
        }
        plan = plan.aggregate(group_by, calls);
        if !avg_fixups.is_empty() {
            let mut exprs: Vec<(Expr, String)> = req
                .group_by
                .iter()
                .map(|g| (col(g.clone()), g.clone()))
                .collect();
            for a in &req.aggs {
                if let Some((_, s, c)) = avg_fixups.iter().find(|(al, _, _)| al == &a.alias) {
                    exprs.push((
                        bin(BinOp::Div, col(s.clone()), col(c.clone())),
                        a.alias.clone(),
                    ));
                } else {
                    exprs.push((col(&a.alias), a.alias.clone()));
                }
            }
            plan = plan.project(exprs);
        }
    }
    if !req.order.is_empty() {
        plan = plan.order(req.order.clone());
    }
    if let Some(n) = req.topn {
        plan = match plan {
            LogicalPlan::Order { input, keys } => input.topn(n, keys),
            other => other.topn(n, req.order.clone()),
        };
    }
    Tde::new(db).execute_plan(&plan, &ExecOptions::serial())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::expr::lit;
    use tabviz_tql::SortKey;

    /// Ten rows per (carrier, origin) pair over 3 carriers × 2 origins.
    fn detail_chunk() -> Chunk {
        let schema = StdArc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("origin", DataType::Str),
                Field::new("n", DataType::Int),
                Field::new("total", DataType::Int),
                Field::new("cnt", DataType::Int),
            ])
            .unwrap(),
        );
        // Pre-aggregated at (carrier, origin): n = COUNT, total = SUM(delay),
        // cnt = COUNT(delay).
        let mut rows = Vec::new();
        for c in ["AA", "DL", "WN"] {
            for o in ["JFK", "LAX"] {
                let base = (c.len() + o.len()) as i64;
                rows.push(vec![
                    Value::Str(c.into()),
                    Value::Str(o.into()),
                    Value::Int(10),
                    Value::Int(base * 10),
                    Value::Int(10),
                ]);
            }
        }
        Chunk::from_rows(schema, &rows).unwrap()
    }

    fn cached_spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .group("origin")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "total"))
            .agg(AggCall::new(AggFunc::Count, Some(col("delay")), "cnt"))
    }

    fn cache_with_entry() -> IntelligentCache {
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        });
        cache.put(cached_spec(), detail_chunk(), Duration::from_millis(100));
        cache
    }

    #[test]
    fn exact_hit() {
        let cache = cache_with_entry();
        let out = cache.get(&cached_spec()).unwrap();
        assert_eq!(out.len(), 6);
        let st = cache.stats();
        assert_eq!(st.exact_hits, 1);
        assert_eq!(st.subsumption_hits, 0);
    }

    #[test]
    fn filter_on_group_column_subsumes() {
        // Fig. 1 scenario: deselecting filter values is answered locally
        // "as long as the filtering columns are included".
        let cache = cache_with_entry();
        let req = cached_spec().filter(bin(BinOp::Eq, col("origin"), lit("JFK")));
        let out = cache.get(&req).unwrap();
        assert_eq!(out.len(), 3);
        for r in out.to_rows() {
            assert_eq!(r[1], Value::Str("JFK".into()));
        }
        assert_eq!(cache.stats().subsumption_hits, 1);
    }

    #[test]
    fn rollup_to_coarser_grouping() {
        let cache = cache_with_entry();
        let req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "total"));
        let out = cache.get(&req).unwrap();
        assert_eq!(out.len(), 3);
        let rows = out.to_rows();
        let aa = rows
            .iter()
            .find(|r| r[0] == Value::Str("AA".into()))
            .unwrap();
        // COUNT rolls up as SUM: 10 + 10 = 20.
        assert_eq!(aa[1], Value::Int(20));
        // SUM(delay): AA bases: (2+3)*10 + (2+3)*10 = 100.
        assert_eq!(aa[2], Value::Int(100));
    }

    #[test]
    fn avg_derived_from_sum_and_count() {
        let cache = cache_with_entry();
        let req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "avg_delay"));
        let out = cache.get(&req).unwrap();
        let rows = out.to_rows();
        let aa = rows
            .iter()
            .find(|r| r[0] == Value::Str("AA".into()))
            .unwrap();
        assert_eq!(aa[1], Value::Real(5.0)); // 100 / 20
    }

    #[test]
    fn narrower_filter_via_implication() {
        let cache = cache_with_entry();
        // delay > 5 implies the cached delay > 0 — but it is a residual
        // referencing a NON-group column, so it cannot be applied.
        let req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(5i64)))
            .group("carrier")
            .group("origin")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        assert!(cache.get(&req).is_none(), "detail-level residual must miss");
    }

    #[test]
    fn wider_filter_misses() {
        let cache = cache_with_entry();
        // delay > -5 does NOT imply cached delay > 0.
        let req = cached_spec();
        let mut req = req;
        req.filters = vec![bin(BinOp::Gt, col("delay"), lit(-5i64))];
        assert!(cache.get(&req).is_none());
    }

    #[test]
    fn countd_never_rolls_up() {
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        });
        let spec = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .group("origin")
            .agg(AggCall::new(AggFunc::CountD, Some(col("dest")), "nd"));
        let schema = StdArc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("origin", DataType::Str),
                Field::new("nd", DataType::Int),
            ])
            .unwrap(),
        );
        let chunk =
            Chunk::from_rows(schema, &[vec!["AA".into(), "JFK".into(), Value::Int(5)]]).unwrap();
        cache.put(spec.clone(), chunk, Duration::from_millis(10));
        // Same grouping: fine.
        assert!(cache.get(&spec).is_some());
        // Coarser: COUNTD cannot re-aggregate.
        let coarse = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::CountD, Some(col("dest")), "nd"));
        assert!(cache.get(&coarse).is_none());
    }

    #[test]
    fn topn_entries_only_serve_identical_requests() {
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        });
        let spec = cached_spec().order_by(vec![SortKey::desc("n")]).top(2);
        cache.put(
            spec.clone(),
            detail_chunk().slice(0, 2),
            Duration::from_millis(10),
        );
        assert!(cache.get(&spec).is_some());
        let broader = cached_spec();
        assert!(
            cache.get(&broader).is_none(),
            "truncated result must not serve supersets"
        );
    }

    #[test]
    fn request_with_order_post_processes() {
        let cache = cache_with_entry();
        let req = cached_spec().order_by(vec![SortKey::desc("total")]).top(2);
        let out = cache.get(&req).unwrap();
        assert_eq!(out.len(), 2);
        let t0 = out.row(0)[3].as_int().unwrap();
        let t1 = out.row(1)[3].as_int().unwrap();
        assert!(t0 >= t1);
    }

    #[test]
    fn different_relation_or_source_misses() {
        let cache = cache_with_entry();
        let other_rel = QuerySpec::new("faa", LogicalPlan::scan("airports"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .group("origin")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        assert!(cache.get(&other_rel).is_none());
        let mut other_src = cached_spec();
        other_src.source = "other".into();
        assert!(cache.get(&other_src).is_none());
    }

    #[test]
    fn insert_policy_rejects_cheap_and_huge() {
        let cache = IntelligentCache::new(CacheConfig {
            capacity_bytes: 1 << 20,
            max_entry_bytes: 64,
            min_cost: Duration::from_millis(1),
            first_match: false,
            swr_grace: Duration::ZERO,
        });
        cache.put(cached_spec(), detail_chunk(), Duration::from_micros(1)); // too cheap
        assert_eq!(cache.len(), 0);
        cache.put(cached_spec(), detail_chunk(), Duration::from_millis(5)); // too big (>64B)
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().rejected_inserts, 2);
    }

    #[test]
    fn eviction_under_pressure() {
        let cache = IntelligentCache::new(CacheConfig {
            capacity_bytes: 600,
            max_entry_bytes: 1 << 20,
            min_cost: Duration::ZERO,
            first_match: false,
            swr_grace: Duration::ZERO,
        });
        for i in 0..10 {
            let spec = QuerySpec::new("faa", LogicalPlan::scan(format!("t{i}")))
                .group("carrier")
                .agg(AggCall::new(AggFunc::Count, None, "n"));
            cache.put(spec, detail_chunk(), Duration::from_millis(10));
        }
        assert!(cache.bytes() <= 600 || cache.len() == 1);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn best_match_prefers_least_post_processing() {
        // Two entries can answer the same request: a fine-grained one that
        // needs a roll-up, and an exact one. Least-effort ranking must pick
        // the exact entry even though the fine one is more recent.
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            ..Default::default()
        });
        let coarse_req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        // Exact result for the coarse request: marker value 777 lets us see
        // which entry served the answer.
        let coarse_schema = StdArc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        let exact_chunk = Chunk::from_rows(
            StdArc::clone(&coarse_schema),
            &[vec!["AA".into(), Value::Int(777)]],
        )
        .unwrap();
        cache.put(coarse_req.clone(), exact_chunk, Duration::from_millis(10));
        // The fine entry (would roll up to n=20 for AA) inserted AFTER, so
        // first-match-by-recency would pick it.
        cache.put(cached_spec(), detail_chunk(), Duration::from_millis(10));

        let out = cache.get(&coarse_req).unwrap();
        assert_eq!(out.row(0)[1], Value::Int(777), "exact entry must win");

        // With first_match (the paper's shipped behavior) the most recent
        // matching entry — the fine one — answers via roll-up instead.
        let shipped = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            first_match: true,
            ..Default::default()
        });
        let exact_chunk2 =
            Chunk::from_rows(coarse_schema, &[vec!["AA".into(), Value::Int(777)]]).unwrap();
        shipped.put(coarse_req.clone(), exact_chunk2, Duration::from_millis(10));
        shipped.put(cached_spec(), detail_chunk(), Duration::from_millis(10));
        let out2 = shipped.get(&coarse_req).unwrap();
        let aa = out2
            .to_rows()
            .into_iter()
            .find(|r| r[0] == Value::Str("AA".into()))
            .unwrap();
        assert_eq!(aa[1], Value::Int(20), "first-match rolls up the fine entry");
    }

    #[test]
    fn superset_entry_is_projected_not_returned_verbatim() {
        // A fused/widened entry caches MORE aggregate columns than the
        // request asks for; the answer must be projected down to exactly
        // the requested shape, never served verbatim with extra columns.
        let cache = cache_with_entry();
        let req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .group("origin")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let out = cache.get(&req).unwrap();
        assert_eq!(
            out.schema().fields().len(),
            3,
            "got columns {:?}",
            out.schema().fields()
        );
        assert_eq!(out.len(), 6);
        for r in out.to_rows() {
            assert_eq!(r[2], Value::Int(10));
        }
    }

    #[test]
    fn concurrent_lookups_keep_stats_consistent() {
        // Stats live outside the entry-map mutex; hammer lookups from many
        // threads (with concurrent lock-free stats reads) and check the
        // atomically-counted totals add up exactly.
        let cache = StdArc::new(cache_with_entry());
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = StdArc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        if (t + i) % 2 == 0 {
                            assert!(cache.get(&cached_spec()).is_some());
                        } else {
                            let miss = QuerySpec::new("faa", LogicalPlan::scan("nowhere"))
                                .group("carrier")
                                .agg(AggCall::new(AggFunc::Count, None, "n"));
                            assert!(cache.get(&miss).is_none());
                        }
                        // Lock-free snapshot must never block or tear.
                        let _ = cache.stats();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let st = cache.stats();
        let total = (threads * per_thread) as u64;
        assert_eq!(st.exact_hits + st.misses, total);
        assert_eq!(st.exact_hits, total / 2);
        assert_eq!(st.misses, total / 2);
    }

    #[test]
    fn put_is_idempotent_per_spec() {
        let cache = cache_with_entry();
        assert_eq!(cache.len(), 1);
        // Concurrent threads racing to store the same result must converge
        // on one entry, not accumulate duplicates.
        cache.put(cached_spec(), detail_chunk(), Duration::from_millis(100));
        cache.put(cached_spec(), detail_chunk(), Duration::from_millis(100));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn swr_grace_serves_stale_then_hides() {
        let cache = IntelligentCache::new(CacheConfig {
            min_cost: Duration::ZERO,
            swr_grace: Duration::from_millis(80),
            ..Default::default()
        });
        cache.put(cached_spec(), detail_chunk(), Duration::from_millis(100));
        assert_eq!(cache.mark_source_stale("faa"), 1);
        // Inside the grace window the NORMAL path serves, flagged SWR.
        let (hit, why) = cache.get_explained(&cached_spec());
        assert!(hit.is_some());
        assert_eq!(why, tabviz_obs::reason::CACHE_SWR_SERVE);
        assert_eq!(cache.stats().swr_serves, 1);
        // The entry stays on the revalidation work list meanwhile.
        assert_eq!(cache.stale_entries().len(), 1);
        std::thread::sleep(Duration::from_millis(100));
        // Past the grace window: normal lookups miss, degraded still works.
        assert!(cache.get(&cached_spec()).is_none());
        assert!(cache.get_stale(&cached_spec()).is_some());
    }

    #[test]
    fn tag_purge_hits_only_dependents() {
        let cache = cache_with_entry(); // reads faa / flights
        let other = QuerySpec::new("faa", LogicalPlan::scan("airports"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        cache.put(other.clone(), detail_chunk(), Duration::from_millis(10));
        let purged = cache.purge_tag(&crate::tags::table_tag("faa", "flights"));
        assert_eq!(purged, 1);
        assert!(cache.get(&cached_spec()).is_none());
        assert!(cache.get(&other).is_some(), "airports entry must survive");
    }

    #[test]
    fn purge_source_clears_only_that_source() {
        let cache = cache_with_entry();
        let other = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        cache.put(other.clone(), detail_chunk(), Duration::from_millis(10));
        cache.purge_source("faa");
        assert!(cache.get(&cached_spec()).is_none());
        assert!(cache.get(&other).is_some());
    }
}
