//! The Server-side distributed cache layer.
//!
//! Sect. 3.2: "Tableau Server does not persist the caches but it utilizes a
//! distributed layer based on REDIS or Cassandra depending on the
//! configuration. This allows sharing data across nodes in the cluster and
//! keeping data warm regardless of which node handles particular requests.
//! For efficiency, recent entries are also stored in memory on the nodes
//! processing particular queries."
//!
//! [`ExternalStore`] simulates the external key-value service: a shared map
//! with per-operation network latency and serialization (values cross the
//! wire as encoded bytes, exactly like Redis values would). Structural
//! subsumption matching is only possible against the node-local in-memory
//! caches — the external layer is a dumb KV and serves exact (canonical-key)
//! matches, which is how the real deployment behaves.

use crate::caches::{CacheOutcome, QueryCaches};
use crate::intelligent::CacheConfig;
use crate::spec::QuerySpec;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;
use tabviz_common::{Chunk, Result};
use tabviz_storage::pack::{pack_table, unpack_table};
use tabviz_storage::Table;

/// Counters for the external KV service.
#[derive(Debug, Clone, Default)]
pub struct ExternalStats {
    pub gets: u64,
    pub get_hits: u64,
    pub puts: u64,
    pub bytes_stored: u64,
}

/// The Redis/Cassandra-like shared store.
pub struct ExternalStore {
    map: Mutex<HashMap<String, Bytes>>,
    stats: Mutex<ExternalStats>,
    /// Round-trip latency per operation.
    pub op_latency: Duration,
}

impl ExternalStore {
    pub fn new(op_latency: Duration) -> Self {
        ExternalStore {
            map: Mutex::new(HashMap::new()),
            stats: Mutex::new(ExternalStats::default()),
            op_latency,
        }
    }

    fn simulate_rtt(&self) {
        if !self.op_latency.is_zero() {
            std::thread::sleep(self.op_latency);
        }
    }

    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.simulate_rtt();
        let out = self.map.lock().get(key).cloned();
        let mut st = self.stats.lock();
        st.gets += 1;
        if out.is_some() {
            st.get_hits += 1;
        }
        out
    }

    pub fn put(&self, key: String, value: Bytes) {
        self.simulate_rtt();
        let mut st = self.stats.lock();
        st.puts += 1;
        st.bytes_stored += value.len() as u64;
        drop(st);
        self.map.lock().insert(key, value);
    }

    pub fn stats(&self) -> ExternalStats {
        self.stats.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-node counters.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    pub local_hits: u64,
    pub external_hits: u64,
    pub misses: u64,
}

/// One Tableau Server node's cache stack: local two-level caches over the
/// shared external store.
pub struct ServerNodeCache {
    pub node_id: String,
    pub local: QueryCaches,
    external: std::sync::Arc<ExternalStore>,
    stats: Mutex<NodeStats>,
}

impl ServerNodeCache {
    pub fn new(node_id: impl Into<String>, external: std::sync::Arc<ExternalStore>) -> Self {
        ServerNodeCache {
            node_id: node_id.into(),
            local: QueryCaches::new(
                CacheConfig {
                    min_cost: Duration::ZERO,
                    ..Default::default()
                },
                64 << 20,
            ),
            external,
            stats: Mutex::new(NodeStats::default()),
        }
    }

    /// Node lookup path: local intelligent/literal first, then the external
    /// store by canonical key. External hits are pulled into local memory
    /// ("recent entries are also stored in memory on the nodes").
    pub fn lookup(&self, spec: &QuerySpec, text: &str) -> (Option<Chunk>, CacheOutcome) {
        if let (Some(hit), outcome) = self.local.lookup(spec, text) {
            self.stats.lock().local_hits += 1;
            return (Some(hit), outcome);
        }
        let key = spec.canonical_text();
        if let Some(bytes) = self.external.get(&key) {
            if let Ok(chunk) = decode_chunk(&bytes) {
                self.stats.lock().external_hits += 1;
                self.local
                    .store(spec.clone(), text, &chunk, Duration::from_millis(1));
                return (Some(chunk), CacheOutcome::LiteralHit);
            }
        }
        self.stats.lock().misses += 1;
        (None, CacheOutcome::Miss)
    }

    /// Store a computed result locally and publish it cluster-wide.
    pub fn store(&self, spec: QuerySpec, text: &str, result: &Chunk, cost: Duration) {
        let key = spec.canonical_text();
        self.local.store(spec, text, result, cost);
        if let Ok(bytes) = encode_chunk(result) {
            self.external.put(key, bytes);
        }
    }

    pub fn stats(&self) -> NodeStats {
        self.stats.lock().clone()
    }
}

fn encode_chunk(chunk: &Chunk) -> Result<Bytes> {
    Ok(pack_table(&Table::from_chunk("__d", chunk, &[])?))
}

fn decode_chunk(bytes: &[u8]) -> Result<Chunk> {
    unpack_table(bytes)?.scan(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        Chunk::from_rows(schema, &[vec!["AA".into(), Value::Int(3)]]).unwrap()
    }

    #[test]
    fn cross_node_sharing() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node1 = ServerNodeCache::new("n1", Arc::clone(&external));
        let node2 = ServerNodeCache::new("n2", Arc::clone(&external));

        // Node 1 computes and publishes.
        node1.store(spec(), "Q", &chunk(), Duration::from_millis(20));
        // Node 2 never saw the query, but the external layer has it.
        let (hit, _) = node2.lookup(&spec(), "Q");
        assert_eq!(hit.unwrap().to_rows(), chunk().to_rows());
        assert_eq!(node2.stats().external_hits, 1);

        // Second lookup on node 2 is now node-local.
        let (hit2, outcome) = node2.lookup(&spec(), "Q");
        assert!(hit2.is_some());
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
        assert_eq!(node2.stats().local_hits, 1);
        // Only one external get round-trip happened on node2's path.
        assert_eq!(external.stats().get_hits, 1);
    }

    #[test]
    fn miss_path_counts() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node = ServerNodeCache::new("n", external);
        let (hit, outcome) = node.lookup(&spec(), "Q");
        assert!(hit.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(node.stats().misses, 1);
    }

    #[test]
    fn external_values_are_serialized_bytes() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node = ServerNodeCache::new("n", Arc::clone(&external));
        node.store(spec(), "Q", &chunk(), Duration::from_millis(20));
        assert_eq!(external.len(), 1);
        assert!(external.stats().bytes_stored > 0);
    }

    #[test]
    fn latency_is_charged_per_operation() {
        let external = Arc::new(ExternalStore::new(Duration::from_millis(5)));
        let t0 = std::time::Instant::now();
        external.get("missing");
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
