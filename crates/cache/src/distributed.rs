//! The Server-side distributed cache layer.
//!
//! Sect. 3.2: "Tableau Server does not persist the caches but it utilizes a
//! distributed layer based on REDIS or Cassandra depending on the
//! configuration. This allows sharing data across nodes in the cluster and
//! keeping data warm regardless of which node handles particular requests.
//! For efficiency, recent entries are also stored in memory on the nodes
//! processing particular queries."
//!
//! [`ExternalStore`] simulates the external key-value service: a shared map
//! with per-operation network latency and serialization (values cross the
//! wire as encoded bytes, exactly like Redis values would). Structural
//! subsumption matching is only possible against the node-local in-memory
//! caches — the external layer is a dumb KV and serves exact (canonical-key)
//! matches, which is how the real deployment behaves.

use crate::caches::{CacheOutcome, QueryCaches};
use crate::intelligent::CacheConfig;
use crate::spec::QuerySpec;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tabviz_backend::{FaultPlan, SITE_CACHE_GET, SITE_CACHE_PUT};
use tabviz_common::{Chunk, Result};
use tabviz_storage::pack::{pack_table, unpack_table};
use tabviz_storage::Table;

/// Counters for the external KV service.
#[derive(Debug, Clone, Default)]
pub struct ExternalStats {
    pub gets: u64,
    pub get_hits: u64,
    pub puts: u64,
    pub bytes_stored: u64,
    /// Gets that came back empty because the targeted node was unreachable
    /// (the value may well exist on a healthy replica).
    pub outage_misses: u64,
    /// Puts silently dropped by an unreachable node.
    pub dropped_puts: u64,
    /// Operations that paid a slow-node penalty on top of the normal RTT.
    pub slowed_ops: u64,
}

/// The Redis/Cassandra-like shared store. In a cluster each node hosts one
/// of these as its *shard* of the replicated peer tier; the cluster layer
/// owns placement (which shard a key lives on) while the shard owns the KV
/// semantics, latency and fault behavior.
pub struct ExternalStore {
    map: Mutex<HashMap<String, Bytes>>,
    /// Dependency tags per key (see [`crate::tags`]): the shard-local half
    /// of tag-based invalidation. Only tagged keys participate in
    /// [`ExternalStore::purge_tag`].
    tags: Mutex<HashMap<String, Vec<String>>>,
    stats: Mutex<ExternalStats>,
    /// Round-trip latency per operation.
    pub op_latency: Duration,
    /// Deterministic fault schedule (node outage / slow node), same
    /// mechanism as the simulated backends.
    faults: Mutex<Option<FaultPlan>>,
    /// Hard outage switch: a downed shard drops every get/put (the
    /// cluster flips this when it marks the hosting node dead, on top of
    /// any probabilistic [`FaultPlan`] outage).
    down: std::sync::atomic::AtomicBool,
    /// Per-site operation ordinals for the fault rolls.
    get_ordinal: AtomicU64,
    put_ordinal: AtomicU64,
}

impl ExternalStore {
    pub fn new(op_latency: Duration) -> Self {
        ExternalStore {
            map: Mutex::new(HashMap::new()),
            tags: Mutex::new(HashMap::new()),
            stats: Mutex::new(ExternalStats::default()),
            op_latency,
            faults: Mutex::new(None),
            down: std::sync::atomic::AtomicBool::new(false),
            get_ordinal: AtomicU64::new(0),
            put_ordinal: AtomicU64::new(0),
        }
    }

    /// Hard-down this shard (node death) or bring it back. Unlike a
    /// [`FaultPlan`] outage this is total and instantaneous; the data
    /// survives — a revived node serves its old keys again, exactly like a
    /// Redis node rejoining with a warm RDB.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Install (or clear) a fault plan at runtime. Like the backend sims,
    /// ordinals are not reset, so a replaced plan continues the
    /// deterministic schedule from the current position.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.faults.lock() = plan;
    }

    fn simulate_rtt(&self) {
        if !self.op_latency.is_zero() {
            std::thread::sleep(self.op_latency);
        }
    }

    /// Fault decision for one operation at `site`: pays the slow-node
    /// penalty inline, returns whether the node is unreachable.
    fn roll_faults(&self, site: u64, ordinal: &AtomicU64) -> bool {
        let plan = self.faults.lock().clone();
        let Some(plan) = plan else {
            return false;
        };
        let n = ordinal.fetch_add(1, Ordering::Relaxed);
        if plan.cache_slow_node > 0.0 && plan.roll(site.wrapping_add(100), n) < plan.cache_slow_node
        {
            self.stats.lock().slowed_ops += 1;
            if !plan.cache_slow_delay.is_zero() {
                std::thread::sleep(plan.cache_slow_delay);
            }
        }
        plan.cache_node_outage > 0.0 && plan.roll(site, n) < plan.cache_node_outage
    }

    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.simulate_rtt();
        if self.is_down() || self.roll_faults(SITE_CACHE_GET, &self.get_ordinal) {
            let mut st = self.stats.lock();
            st.gets += 1;
            st.outage_misses += 1;
            return None;
        }
        let out = self.map.lock().get(key).cloned();
        let mut st = self.stats.lock();
        st.gets += 1;
        if out.is_some() {
            st.get_hits += 1;
        }
        out
    }

    pub fn put(&self, key: String, value: Bytes) {
        self.simulate_rtt();
        if self.is_down() || self.roll_faults(SITE_CACHE_PUT, &self.put_ordinal) {
            let mut st = self.stats.lock();
            st.puts += 1;
            st.dropped_puts += 1;
            return;
        }
        let mut st = self.stats.lock();
        st.puts += 1;
        st.bytes_stored += value.len() as u64;
        drop(st);
        self.map.lock().insert(key, value);
    }

    /// [`ExternalStore::put`] plus dependency-tag registration. Tags are
    /// recorded only when the value actually landed (a dropped put must not
    /// leave a phantom tag entry).
    pub fn put_tagged(&self, key: String, value: Bytes, tags: &[String]) {
        self.simulate_rtt();
        if self.is_down() || self.roll_faults(SITE_CACHE_PUT, &self.put_ordinal) {
            let mut st = self.stats.lock();
            st.puts += 1;
            st.dropped_puts += 1;
            return;
        }
        let mut st = self.stats.lock();
        st.puts += 1;
        st.bytes_stored += value.len() as u64;
        drop(st);
        self.tags.lock().insert(key.clone(), tags.to_vec());
        self.map.lock().insert(key, value);
    }

    /// Remove every key carrying `tag`; returns how many were removed.
    /// Administrative (no RTT, no faults) — invalidation is a control-plane
    /// event fanned out by the owner, not a client operation.
    pub fn purge_tag(&self, tag: &str) -> usize {
        let mut tags = self.tags.lock();
        let victims: Vec<String> = tags
            .iter()
            .filter(|(_, ts)| ts.iter().any(|t| t == tag))
            .map(|(k, _)| k.clone())
            .collect();
        let mut map = self.map.lock();
        for key in &victims {
            tags.remove(key);
            map.remove(key);
        }
        victims.len()
    }

    /// Administrative read of a key's tags (rebalance carries them along
    /// with the value so invalidation survives migration).
    pub fn peek_tags(&self, key: &str) -> Vec<String> {
        self.tags.lock().get(key).cloned().unwrap_or_default()
    }

    /// Administrative raw write including tags (key migration).
    pub fn insert_raw_tagged(&self, key: String, value: Bytes, tags: Vec<String>) {
        if !tags.is_empty() {
            self.tags.lock().insert(key.clone(), tags);
        }
        self.map.lock().insert(key, value);
    }

    /// Every key this shard holds. Administrative (no RTT, no faults):
    /// the cluster's rebalancer walks shards directly, the way a Redis
    /// Cluster migration uses `SCAN` on the node rather than client gets.
    pub fn keys(&self) -> Vec<String> {
        self.map.lock().keys().cloned().collect()
    }

    /// Administrative raw read for key migration — bypasses RTT, fault
    /// rolls and the hit/miss counters.
    pub fn peek(&self, key: &str) -> Option<Bytes> {
        self.map.lock().get(key).cloned()
    }

    /// Administrative removal (rebalance moved the key elsewhere).
    pub fn remove(&self, key: &str) -> Option<Bytes> {
        self.tags.lock().remove(key);
        self.map.lock().remove(key)
    }

    /// Administrative raw write for key migration (no RTT/faults/stats).
    pub fn insert_raw(&self, key: String, value: Bytes) {
        self.map.lock().insert(key, value);
    }

    pub fn stats(&self) -> ExternalStats {
        self.stats.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-node counters.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    pub local_hits: u64,
    pub external_hits: u64,
    pub misses: u64,
}

/// One Tableau Server node's cache stack: local two-level caches over the
/// shared external store.
pub struct ServerNodeCache {
    pub node_id: String,
    pub local: QueryCaches,
    external: std::sync::Arc<ExternalStore>,
    stats: Mutex<NodeStats>,
}

impl ServerNodeCache {
    pub fn new(node_id: impl Into<String>, external: std::sync::Arc<ExternalStore>) -> Self {
        ServerNodeCache {
            node_id: node_id.into(),
            local: QueryCaches::new(
                CacheConfig {
                    min_cost: Duration::ZERO,
                    ..Default::default()
                },
                64 << 20,
            ),
            external,
            stats: Mutex::new(NodeStats::default()),
        }
    }

    /// Node lookup path: local intelligent/literal first, then the external
    /// store by canonical key. External hits are pulled into local memory
    /// ("recent entries are also stored in memory on the nodes").
    pub fn lookup(&self, spec: &QuerySpec, text: &str) -> (Option<Chunk>, CacheOutcome) {
        if let (Some(hit), outcome) = self.local.lookup(spec, text) {
            self.stats.lock().local_hits += 1;
            return (Some(hit), outcome);
        }
        let key = spec.canonical_text();
        if let Some(bytes) = self.external.get(&key) {
            if let Ok(chunk) = decode_chunk(&bytes) {
                self.stats.lock().external_hits += 1;
                self.local
                    .store(spec.clone(), text, &chunk, Duration::from_millis(1));
                return (Some(chunk), CacheOutcome::LiteralHit);
            }
        }
        self.stats.lock().misses += 1;
        (None, CacheOutcome::Miss)
    }

    /// Store a computed result locally and publish it cluster-wide.
    pub fn store(&self, spec: QuerySpec, text: &str, result: &Chunk, cost: Duration) {
        let key = spec.canonical_text();
        self.local.store(spec, text, result, cost);
        if let Ok(bytes) = encode_chunk(result) {
            self.external.put(key, bytes);
        }
    }

    pub fn stats(&self) -> NodeStats {
        self.stats.lock().clone()
    }
}

/// Wire encoding for a result chunk crossing the peer tier (the pack
/// format the extract layer already speaks).
pub fn encode_chunk(chunk: &Chunk) -> Result<Bytes> {
    Ok(pack_table(&Table::from_chunk("__d", chunk, &[])?))
}

/// Inverse of [`encode_chunk`].
pub fn decode_chunk(bytes: &[u8]) -> Result<Chunk> {
    unpack_table(bytes)?.scan(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        Chunk::from_rows(schema, &[vec!["AA".into(), Value::Int(3)]]).unwrap()
    }

    #[test]
    fn cross_node_sharing() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node1 = ServerNodeCache::new("n1", Arc::clone(&external));
        let node2 = ServerNodeCache::new("n2", Arc::clone(&external));

        // Node 1 computes and publishes.
        node1.store(spec(), "Q", &chunk(), Duration::from_millis(20));
        // Node 2 never saw the query, but the external layer has it.
        let (hit, _) = node2.lookup(&spec(), "Q");
        assert_eq!(hit.unwrap().to_rows(), chunk().to_rows());
        assert_eq!(node2.stats().external_hits, 1);

        // Second lookup on node 2 is now node-local.
        let (hit2, outcome) = node2.lookup(&spec(), "Q");
        assert!(hit2.is_some());
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
        assert_eq!(node2.stats().local_hits, 1);
        // Only one external get round-trip happened on node2's path.
        assert_eq!(external.stats().get_hits, 1);
    }

    #[test]
    fn miss_path_counts() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node = ServerNodeCache::new("n", external);
        let (hit, outcome) = node.lookup(&spec(), "Q");
        assert!(hit.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(node.stats().misses, 1);
    }

    #[test]
    fn external_values_are_serialized_bytes() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node = ServerNodeCache::new("n", Arc::clone(&external));
        node.store(spec(), "Q", &chunk(), Duration::from_millis(20));
        assert_eq!(external.len(), 1);
        assert!(external.stats().bytes_stored > 0);
    }

    #[test]
    fn latency_is_charged_per_operation() {
        let external = Arc::new(ExternalStore::new(Duration::from_millis(5)));
        let t0 = std::time::Instant::now();
        external.get("missing");
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn node_outage_drops_puts_and_blinds_gets() {
        let external = Arc::new(ExternalStore::new(Duration::ZERO));
        let node = ServerNodeCache::new("n", Arc::clone(&external));
        let mut plan = FaultPlan::seeded(9);
        plan.cache_node_outage = 1.0;
        external.set_fault_plan(Some(plan));
        // The publish is dropped by the unreachable node...
        node.store(spec(), "Q", &chunk(), Duration::from_millis(20));
        assert!(external.is_empty());
        assert_eq!(external.stats().dropped_puts, 1);
        // ...and even a value that made it in earlier is invisible.
        external.set_fault_plan(None);
        external.put("k".into(), Bytes::from_static(b"v"));
        let mut plan = FaultPlan::seeded(9);
        plan.cache_node_outage = 1.0;
        external.set_fault_plan(Some(plan));
        assert!(external.get("k").is_none());
        assert_eq!(external.stats().outage_misses, 1);
        // The node-local copy from store() still answers; only the shared
        // layer is degraded.
        let (hit, _) = node.lookup(&spec(), "Q");
        assert!(hit.is_some());
        // Recovery restores the shared layer.
        external.set_fault_plan(None);
        assert!(external.get("k").is_some());
    }

    #[test]
    fn outage_schedule_is_deterministic() {
        let outcomes = |seed: u64| {
            let external = ExternalStore::new(Duration::ZERO);
            let mut plan = FaultPlan::seeded(seed);
            plan.cache_node_outage = 0.5;
            external.set_fault_plan(Some(plan));
            external.put("k".into(), Bytes::from_static(b"v"));
            (0..32)
                .map(|_| {
                    if external.get("k").is_some() {
                        'h'
                    } else {
                        'm'
                    }
                })
                .collect::<String>()
        };
        let a = outcomes(4);
        assert_eq!(a, outcomes(4), "same seed, same schedule");
        assert_ne!(a, outcomes(5), "different seed, different schedule");
        assert!(
            a.contains('h') && a.contains('m'),
            "both outcomes fire: {a}"
        );
    }

    #[test]
    fn slow_node_pays_the_penalty() {
        let external = ExternalStore::new(Duration::ZERO);
        let mut plan = FaultPlan::seeded(2);
        plan.cache_slow_node = 1.0;
        plan.cache_slow_delay = Duration::from_millis(5);
        external.set_fault_plan(Some(plan));
        let t0 = std::time::Instant::now();
        external.get("missing");
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(external.stats().slowed_ops, 1);
        // Slow is not gone: values still round-trip.
        external.put("k".into(), Bytes::from_static(b"v"));
        assert!(external.get("k").is_some());
    }
}
