//! The two cache levels combined.
//!
//! The lookup path mirrors Sect. 3.2: structural (intelligent) matching
//! first; if that fails the query is compiled to text and the literal cache
//! is consulted; only then does the query go to the backend. Both levels are
//! populated on the way back.
//!
//! Together the pair forms **L1** of the multi-tier hierarchy. An optional
//! shared **L2** ([`crate::tier::L2Cache`]) can be attached with
//! [`QueryCaches::set_l2`]: the processor consults it after both L1 probes
//! miss, promotes L2 hits into L1, and publishes fresh backend results to
//! both tiers with dependency tags (see [`crate::tags`]).

use crate::intelligent::{CacheConfig, IntelligentCache, IntelligentStats};
use crate::literal::{LiteralCache, LiteralStats};
use crate::spec::QuerySpec;
use crate::tier::L2Cache;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tabviz_common::Chunk;
use tabviz_obs::{Counter, Registry};

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    IntelligentHit,
    LiteralHit,
    Miss,
}

/// Lock-free snapshot of the tier-boundary counters: traffic crossing the
/// L1→L2 seam plus precise-invalidation and warm-start work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// L2 probes that returned (and decoded) a value.
    pub l2_hits: u64,
    /// L2 probes that came back empty (or undecodable).
    pub l2_misses: u64,
    /// L2 hits copied forward into L1.
    pub promotes: u64,
    /// Fresh backend results published to L2.
    pub l2_stores: u64,
    /// Entries removed by tag-scoped purges (both tiers summed).
    pub tag_purged: u64,
    /// Entries seeded into L1 by cache warming (node join / restart).
    pub warmed: u64,
}

#[derive(Default)]
struct AtomicTierStats {
    l2_hits: AtomicU64,
    l2_misses: AtomicU64,
    promotes: AtomicU64,
    l2_stores: AtomicU64,
    tag_purged: AtomicU64,
    warmed: AtomicU64,
}

impl AtomicTierStats {
    fn snapshot(&self) -> TierStats {
        TierStats {
            l2_hits: self.l2_hits.load(Ordering::Relaxed),
            l2_misses: self.l2_misses.load(Ordering::Relaxed),
            promotes: self.promotes.load(Ordering::Relaxed),
            l2_stores: self.l2_stores.load(Ordering::Relaxed),
            tag_purged: self.tag_purged.load(Ordering::Relaxed),
            warmed: self.warmed.load(Ordering::Relaxed),
        }
    }
}

/// Pre-resolved `tv_cache_tier_*` metric handles (see
/// [`QueryCaches::bind_obs`]).
struct TierMetrics {
    l2_hits: Counter,
    l2_misses: Counter,
    promotes: Counter,
    l2_stores: Counter,
    tag_purged: Counter,
    warmed: Counter,
}

impl TierMetrics {
    fn bind(registry: &Registry) -> Self {
        TierMetrics {
            l2_hits: registry.counter("tv_cache_tier_l2_hits_total"),
            l2_misses: registry.counter("tv_cache_tier_l2_misses_total"),
            promotes: registry.counter("tv_cache_tier_promotes_total"),
            l2_stores: registry.counter("tv_cache_tier_stores_total"),
            tag_purged: registry.counter("tv_cache_tier_tag_purged_total"),
            warmed: registry.counter("tv_cache_tier_warmed_total"),
        }
    }
}

/// Intelligent + literal cache pair (L1), with an optional shared L2 tier.
#[derive(Default)]
pub struct QueryCaches {
    pub intelligent: IntelligentCache,
    pub literal: LiteralCache,
    l2: RwLock<Option<Arc<dyn L2Cache>>>,
    tier_stats: AtomicTierStats,
    tier_metrics: OnceLock<TierMetrics>,
}

impl QueryCaches {
    pub fn new(config: CacheConfig, literal_capacity: usize) -> Self {
        QueryCaches {
            intelligent: IntelligentCache::new(config),
            literal: LiteralCache::new(literal_capacity),
            l2: RwLock::new(None),
            tier_stats: AtomicTierStats::default(),
            tier_metrics: OnceLock::new(),
        }
    }

    /// Resolve both levels' `tv_cache_*` metrics (plus the `tv_cache_tier_*`
    /// seam counters) against a registry. Idempotent; the first binding wins.
    pub fn bind_obs(&self, registry: &tabviz_obs::Registry) {
        self.intelligent.bind_obs(registry);
        self.literal.bind_obs(registry);
        let _ = self.tier_metrics.set(TierMetrics::bind(registry));
    }

    /// Attach (or replace) the shared L2 tier. Standalone deployments use
    /// [`crate::tier::SingleStoreL2`]; the cluster injects its ring-routed
    /// peer tier at node attach time.
    pub fn set_l2(&self, l2: Arc<dyn L2Cache>) {
        *self.l2.write() = Some(l2);
    }

    /// The attached L2 tier, if any.
    pub fn l2(&self) -> Option<Arc<dyn L2Cache>> {
        self.l2.read().clone()
    }

    pub fn has_l2(&self) -> bool {
        self.l2.read().is_some()
    }

    /// The L2 key for a spec: its full canonical text (source included).
    /// RLS is preserved because [`QuerySpec`] carries the user's row-level
    /// filters folded into `filters` — users with different entitlements
    /// canonicalize to different keys, equivalent ones share.
    pub fn l2_key(spec: &QuerySpec) -> String {
        spec.canonical_text()
    }

    /// Probe L2 for an exact canonical match. Counts a hit only when the
    /// payload also decodes; transport faults and codec damage both read as
    /// misses so the caller can fall through to the backend.
    pub fn l2_lookup(&self, spec: &QuerySpec) -> Option<Chunk> {
        let l2 = self.l2()?;
        match l2
            .get(&Self::l2_key(spec))
            .and_then(|raw| crate::distributed::decode_chunk(&raw).ok())
        {
            Some(chunk) => {
                self.tier_stats.l2_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.tier_metrics.get() {
                    m.l2_hits.inc();
                }
                Some(chunk)
            }
            None => {
                self.tier_stats.l2_misses.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.tier_metrics.get() {
                    m.l2_misses.inc();
                }
                None
            }
        }
    }

    /// Copy an L2 hit forward into both L1 levels so the next request on
    /// this node is answered locally (and subsumption can reuse it).
    pub fn l2_promote(&self, spec: QuerySpec, text: &str, result: &Chunk, cost: Duration) {
        self.tier_stats.promotes.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.tier_metrics.get() {
            m.promotes.inc();
        }
        self.store(spec, text, result, cost);
    }

    /// Publish a fresh backend result to L2 under its canonical key, tagged
    /// with its source + table dependencies. No-op without an attached L2.
    pub fn l2_store(&self, spec: &QuerySpec, result: &Chunk) {
        let Some(l2) = self.l2() else { return };
        let Ok(raw) = crate::distributed::encode_chunk(result) else {
            return;
        };
        l2.put(&Self::l2_key(spec), raw, &crate::tags::tags_for_spec(spec));
        self.tier_stats.l2_stores.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.tier_metrics.get() {
            m.l2_stores.inc();
        }
    }

    /// Seed L1 with an entry replayed from another node's hot set (cache
    /// warming on node join). Counted separately from organic stores.
    pub fn warm(&self, spec: QuerySpec, result: &Chunk, cost: Duration) {
        self.tier_stats.warmed.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.tier_metrics.get() {
            m.warmed.inc();
        }
        self.intelligent.put(spec, result.clone(), cost);
    }

    /// Purge every entry (both tiers) that depends on `source.table` —
    /// the precise replacement for wholesale source purges when a single
    /// table refreshes. Returns entries removed.
    pub fn purge_table(&self, source: &str, table: &str) -> usize {
        self.purge_tag(&crate::tags::table_tag(source, table))
    }

    /// Demote (to stale) every L1 entry depending on `source.table`,
    /// keeping it available for degraded/SWR serving, and purge the L2
    /// copies (L2 has no stale state — a dropped entry is just a miss).
    pub fn mark_table_stale(&self, source: &str, table: &str) -> usize {
        let tag = crate::tags::table_tag(source, table);
        let marked = self.intelligent.mark_tag_stale(&tag) + self.literal.mark_tag_stale(&tag);
        if let Some(l2) = self.l2() {
            let purged = l2.purge_tag(&tag);
            self.count_tag_purged(purged);
        }
        marked
    }

    /// Purge every entry carrying `tag` from both tiers. Returns entries
    /// removed.
    pub fn purge_tag(&self, tag: &str) -> usize {
        let mut purged = self.intelligent.purge_tag(tag) + self.literal.purge_tag(tag);
        if let Some(l2) = self.l2() {
            purged += l2.purge_tag(tag);
        }
        self.count_tag_purged(purged);
        purged
    }

    fn count_tag_purged(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.tier_stats
            .tag_purged
            .fetch_add(n as u64, Ordering::Relaxed);
        if let Some(m) = self.tier_metrics.get() {
            m.tag_purged.add(n as u64);
        }
    }

    /// Tier-boundary counters snapshot.
    pub fn tier_stats(&self) -> TierStats {
        self.tier_stats.snapshot()
    }

    /// Two-level lookup. `text` is the compiled query text (produced anyway
    /// before dispatch, so the literal probe is free).
    pub fn lookup(&self, spec: &QuerySpec, text: &str) -> (Option<Chunk>, CacheOutcome) {
        if let Some(hit) = self.intelligent.get(spec) {
            return (Some(hit), CacheOutcome::IntelligentHit);
        }
        if let Some(hit) = self.literal.get(&spec.source, text) {
            return (Some(hit), CacheOutcome::LiteralHit);
        }
        (None, CacheOutcome::Miss)
    }

    /// Record a freshly computed result in both levels, tagged with the
    /// spec's source + table dependencies so either tag scope can find it.
    pub fn store(&self, spec: QuerySpec, text: &str, result: &Chunk, cost: Duration) {
        let tags = crate::tags::tags_for_spec(&spec);
        self.literal
            .put_tagged(&spec.source, text, result.clone(), cost, tags);
        self.intelligent.put(spec, result.clone(), cost);
    }

    /// Degraded two-level lookup: consulted only after the backend failed,
    /// it also serves entries marked stale. The caller is responsible for
    /// flagging the answer as stale to the user.
    pub fn lookup_stale(&self, spec: &QuerySpec, text: &str) -> Option<Chunk> {
        if let Some(hit) = self.intelligent.get_stale(spec) {
            return Some(hit);
        }
        self.literal.get_stale(&spec.source, text)
    }

    /// Source refreshed while its backend is unreachable: demote both
    /// levels' entries to stale instead of purging, keeping them available
    /// for degraded serving. Returns how many entries were marked.
    pub fn mark_source_stale(&self, source: &str) -> usize {
        self.intelligent.mark_source_stale(source) + self.literal.mark_source_stale(source)
    }

    /// Stale intelligent-cache entries (spec + age), oldest first — the
    /// revalidation lane's work list. Literal entries are not listed: a
    /// revalidated spec refreshes the literal level as a side effect.
    pub fn stale_entries(&self) -> Vec<(QuerySpec, std::time::Duration)> {
        self.intelligent.stale_entries()
    }

    /// Connection closed/refreshed: purge both L1 levels for the source,
    /// and the shared L2 via its source tag.
    pub fn purge_source(&self, source: &str) {
        self.intelligent.purge_source(source);
        self.literal.purge_source(source);
        if let Some(l2) = self.l2() {
            let purged = l2.purge_tag(&crate::tags::source_tag(source));
            self.count_tag_purged(purged);
        }
    }

    pub fn clear(&self) {
        self.intelligent.clear();
        self.literal.clear();
    }

    pub fn stats(&self) -> (IntelligentStats, LiteralStats) {
        (self.intelligent.stats(), self.literal.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::expr::col;
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        Chunk::from_rows(schema, &[vec!["AA".into(), Value::Int(7)]]).unwrap()
    }

    #[test]
    fn lookup_order_intelligent_first() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        let (none, outcome) = caches.lookup(&spec(), "SQL");
        assert!(none.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        let (hit, outcome) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
    }

    #[test]
    fn literal_catches_post_compilation_collisions() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.store(spec(), "SELECT ...", &chunk(), Duration::from_millis(5));
        // A structurally different spec (different relation ⇒ intelligent
        // miss) that compiled to the same text — e.g. after join culling.
        let other = QuerySpec::new("faa", LogicalPlan::scan("flights_joined"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let (hit, outcome) = caches.lookup(&other, "SELECT ...");
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::LiteralHit);
    }

    #[test]
    fn purge_source_affects_both() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        caches.purge_source("faa");
        let (hit, _) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_none());
    }

    #[test]
    fn stale_entries_hide_from_lookup_but_serve_degraded() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        assert_eq!(caches.mark_source_stale("faa"), 2); // both levels
                                                        // Normal lookup refuses stale data.
        let (hit, outcome) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        // The degraded path still serves it.
        let stale = caches.lookup_stale(&spec(), "SQL").unwrap();
        assert_eq!(stale.row(0)[1], Value::Int(7));
        assert_eq!(caches.intelligent.stats().stale_serves, 1);
        // A fresh store supersedes the stale entry for normal lookups.
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        let (hit, _) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_some());
        // Other sources are untouched by the marking.
        let other = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        caches.store(other.clone(), "W", &chunk(), Duration::from_millis(5));
        caches.mark_source_stale("faa");
        let (hit, _) = caches.lookup(&other, "W");
        assert!(hit.is_some());
    }

    #[test]
    fn literal_stale_marking() {
        let c = crate::literal::LiteralCache::default();
        c.put("s", "Q", chunk(), Duration::from_millis(5));
        assert_eq!(c.mark_source_stale("s"), 1);
        assert_eq!(c.mark_source_stale("s"), 0, "already stale");
        assert!(c.get("s", "Q").is_none());
        assert!(c.get_stale("s", "Q").is_some());
        assert!(c.get_stale("s", "missing").is_none());
        assert_eq!(c.stats().stale_serves, 1);
    }

    #[test]
    fn l2_round_trip_promote_and_tag_purge() {
        use crate::distributed::ExternalStore;
        use crate::tier::SingleStoreL2;
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        // No L2 attached: probe is a no-op, not a counted miss.
        assert!(caches.l2_lookup(&spec()).is_none());
        assert_eq!(caches.tier_stats(), TierStats::default());

        let store = Arc::new(ExternalStore::new(Duration::ZERO));
        caches.set_l2(Arc::new(SingleStoreL2::new(store)));
        assert!(caches.l2_lookup(&spec()).is_none());
        assert_eq!(caches.tier_stats().l2_misses, 1);

        caches.l2_store(&spec(), &chunk());
        let hit = caches.l2_lookup(&spec()).expect("published to L2");
        assert_eq!(hit.row(0)[1], Value::Int(7));
        caches.l2_promote(spec(), "SQL", &hit, Duration::from_millis(5));
        let (l1, outcome) = caches.lookup(&spec(), "SQL");
        assert!(l1.is_some());
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
        let stats = caches.tier_stats();
        assert_eq!((stats.l2_hits, stats.l2_stores, stats.promotes), (1, 1, 1));

        // A table-scoped purge clears both tiers.
        assert!(caches.purge_table("faa", "flights") >= 2);
        assert!(caches.l2_lookup(&spec()).is_none());
        let (l1, _) = caches.lookup(&spec(), "SQL");
        assert!(l1.is_none());
        assert!(caches.tier_stats().tag_purged >= 2);
    }

    #[test]
    fn mark_table_stale_keeps_l1_for_degraded_serving() {
        use crate::distributed::ExternalStore;
        use crate::tier::SingleStoreL2;
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.set_l2(Arc::new(SingleStoreL2::new(Arc::new(ExternalStore::new(
            Duration::ZERO,
        )))));
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        caches.l2_store(&spec(), &chunk());
        assert_eq!(caches.mark_table_stale("faa", "flights"), 2);
        // L1 demoted, still reachable degraded; L2 copy dropped outright.
        let (hit, _) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_none());
        assert!(caches.lookup_stale(&spec(), "SQL").is_some());
        assert!(caches.l2_lookup(&spec()).is_none());
    }

    #[test]
    fn agg_arg_reuse_via_avg() {
        // A stored SUM+COUNT query answers a later AVG request — the paper's
        // "query processor might choose to adjust queries before sending, in
        // order to make the results more useful for future reuse".
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        let stored = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "s"))
            .agg(AggCall::new(AggFunc::Count, Some(col("delay")), "c"));
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("s", DataType::Int),
                Field::new("c", DataType::Int),
            ])
            .unwrap(),
        );
        let data = Chunk::from_rows(
            schema,
            &[vec!["AA".into(), Value::Int(100), Value::Int(20)]],
        )
        .unwrap();
        caches.store(stored, "Q1", &data, Duration::from_millis(5));
        let avg_req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "a"));
        let (hit, outcome) = caches.lookup(&avg_req, "Q2");
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
        assert_eq!(hit.unwrap().row(0)[1], Value::Real(5.0));
    }
}
