//! The two cache levels combined.
//!
//! The lookup path mirrors Sect. 3.2: structural (intelligent) matching
//! first; if that fails the query is compiled to text and the literal cache
//! is consulted; only then does the query go to the backend. Both levels are
//! populated on the way back.

use crate::intelligent::{CacheConfig, IntelligentCache, IntelligentStats};
use crate::literal::{LiteralCache, LiteralStats};
use crate::spec::QuerySpec;
use std::time::Duration;
use tabviz_common::Chunk;

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    IntelligentHit,
    LiteralHit,
    Miss,
}

/// Intelligent + literal cache pair.
#[derive(Default)]
pub struct QueryCaches {
    pub intelligent: IntelligentCache,
    pub literal: LiteralCache,
}

impl QueryCaches {
    pub fn new(config: CacheConfig, literal_capacity: usize) -> Self {
        QueryCaches {
            intelligent: IntelligentCache::new(config),
            literal: LiteralCache::new(literal_capacity),
        }
    }

    /// Resolve both levels' `tv_cache_*` metrics against a registry.
    /// Idempotent; the first binding wins.
    pub fn bind_obs(&self, registry: &tabviz_obs::Registry) {
        self.intelligent.bind_obs(registry);
        self.literal.bind_obs(registry);
    }

    /// Two-level lookup. `text` is the compiled query text (produced anyway
    /// before dispatch, so the literal probe is free).
    pub fn lookup(&self, spec: &QuerySpec, text: &str) -> (Option<Chunk>, CacheOutcome) {
        if let Some(hit) = self.intelligent.get(spec) {
            return (Some(hit), CacheOutcome::IntelligentHit);
        }
        if let Some(hit) = self.literal.get(&spec.source, text) {
            return (Some(hit), CacheOutcome::LiteralHit);
        }
        (None, CacheOutcome::Miss)
    }

    /// Record a freshly computed result in both levels.
    pub fn store(&self, spec: QuerySpec, text: &str, result: &Chunk, cost: Duration) {
        self.literal.put(&spec.source, text, result.clone(), cost);
        self.intelligent.put(spec, result.clone(), cost);
    }

    /// Degraded two-level lookup: consulted only after the backend failed,
    /// it also serves entries marked stale. The caller is responsible for
    /// flagging the answer as stale to the user.
    pub fn lookup_stale(&self, spec: &QuerySpec, text: &str) -> Option<Chunk> {
        if let Some(hit) = self.intelligent.get_stale(spec) {
            return Some(hit);
        }
        self.literal.get_stale(&spec.source, text)
    }

    /// Source refreshed while its backend is unreachable: demote both
    /// levels' entries to stale instead of purging, keeping them available
    /// for degraded serving. Returns how many entries were marked.
    pub fn mark_source_stale(&self, source: &str) -> usize {
        self.intelligent.mark_source_stale(source) + self.literal.mark_source_stale(source)
    }

    /// Stale intelligent-cache entries (spec + age), oldest first — the
    /// revalidation lane's work list. Literal entries are not listed: a
    /// revalidated spec refreshes the literal level as a side effect.
    pub fn stale_entries(&self) -> Vec<(QuerySpec, std::time::Duration)> {
        self.intelligent.stale_entries()
    }

    /// Connection closed/refreshed: purge both levels for the source.
    pub fn purge_source(&self, source: &str) {
        self.intelligent.purge_source(source);
        self.literal.purge_source(source);
    }

    pub fn clear(&self) {
        self.intelligent.clear();
        self.literal.clear();
    }

    pub fn stats(&self) -> (IntelligentStats, LiteralStats) {
        (self.intelligent.stats(), self.literal.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::expr::col;
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        Chunk::from_rows(schema, &[vec!["AA".into(), Value::Int(7)]]).unwrap()
    }

    #[test]
    fn lookup_order_intelligent_first() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        let (none, outcome) = caches.lookup(&spec(), "SQL");
        assert!(none.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        let (hit, outcome) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
    }

    #[test]
    fn literal_catches_post_compilation_collisions() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.store(spec(), "SELECT ...", &chunk(), Duration::from_millis(5));
        // A structurally different spec (different relation ⇒ intelligent
        // miss) that compiled to the same text — e.g. after join culling.
        let other = QuerySpec::new("faa", LogicalPlan::scan("flights_joined"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let (hit, outcome) = caches.lookup(&other, "SELECT ...");
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::LiteralHit);
    }

    #[test]
    fn purge_source_affects_both() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        caches.purge_source("faa");
        let (hit, _) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_none());
    }

    #[test]
    fn stale_entries_hide_from_lookup_but_serve_degraded() {
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        assert_eq!(caches.mark_source_stale("faa"), 2); // both levels
                                                        // Normal lookup refuses stale data.
        let (hit, outcome) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        // The degraded path still serves it.
        let stale = caches.lookup_stale(&spec(), "SQL").unwrap();
        assert_eq!(stale.row(0)[1], Value::Int(7));
        assert_eq!(caches.intelligent.stats().stale_serves, 1);
        // A fresh store supersedes the stale entry for normal lookups.
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        let (hit, _) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_some());
        // Other sources are untouched by the marking.
        let other = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        caches.store(other.clone(), "W", &chunk(), Duration::from_millis(5));
        caches.mark_source_stale("faa");
        let (hit, _) = caches.lookup(&other, "W");
        assert!(hit.is_some());
    }

    #[test]
    fn literal_stale_marking() {
        let c = crate::literal::LiteralCache::default();
        c.put("s", "Q", chunk(), Duration::from_millis(5));
        assert_eq!(c.mark_source_stale("s"), 1);
        assert_eq!(c.mark_source_stale("s"), 0, "already stale");
        assert!(c.get("s", "Q").is_none());
        assert!(c.get_stale("s", "Q").is_some());
        assert!(c.get_stale("s", "missing").is_none());
        assert_eq!(c.stats().stale_serves, 1);
    }

    #[test]
    fn agg_arg_reuse_via_avg() {
        // A stored SUM+COUNT query answers a later AVG request — the paper's
        // "query processor might choose to adjust queries before sending, in
        // order to make the results more useful for future reuse".
        let caches = QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        );
        let stored = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "s"))
            .agg(AggCall::new(AggFunc::Count, Some(col("delay")), "c"));
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("s", DataType::Int),
                Field::new("c", DataType::Int),
            ])
            .unwrap(),
        );
        let data = Chunk::from_rows(
            schema,
            &[vec!["AA".into(), Value::Int(100), Value::Int(20)]],
        )
        .unwrap();
        caches.store(stored, "Q1", &data, Duration::from_millis(5));
        let avg_req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "a"));
        let (hit, outcome) = caches.lookup(&avg_req, "Q2");
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
        assert_eq!(hit.unwrap().row(0)[1], Value::Real(5.0));
    }
}
