//! The two cache levels combined.
//!
//! The lookup path mirrors Sect. 3.2: structural (intelligent) matching
//! first; if that fails the query is compiled to text and the literal cache
//! is consulted; only then does the query go to the backend. Both levels are
//! populated on the way back.

use crate::intelligent::{CacheConfig, IntelligentCache, IntelligentStats};
use crate::literal::{LiteralCache, LiteralStats};
use crate::spec::QuerySpec;
use std::time::Duration;
use tabviz_common::Chunk;

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    IntelligentHit,
    LiteralHit,
    Miss,
}

/// Intelligent + literal cache pair.
#[derive(Default)]
pub struct QueryCaches {
    pub intelligent: IntelligentCache,
    pub literal: LiteralCache,
}


impl QueryCaches {
    pub fn new(config: CacheConfig, literal_capacity: usize) -> Self {
        QueryCaches {
            intelligent: IntelligentCache::new(config),
            literal: LiteralCache::new(literal_capacity),
        }
    }

    /// Two-level lookup. `text` is the compiled query text (produced anyway
    /// before dispatch, so the literal probe is free).
    pub fn lookup(&self, spec: &QuerySpec, text: &str) -> (Option<Chunk>, CacheOutcome) {
        if let Some(hit) = self.intelligent.get(spec) {
            return (Some(hit), CacheOutcome::IntelligentHit);
        }
        if let Some(hit) = self.literal.get(&spec.source, text) {
            return (Some(hit), CacheOutcome::LiteralHit);
        }
        (None, CacheOutcome::Miss)
    }

    /// Record a freshly computed result in both levels.
    pub fn store(&self, spec: QuerySpec, text: &str, result: &Chunk, cost: Duration) {
        self.literal.put(&spec.source, text, result.clone(), cost);
        self.intelligent.put(spec, result.clone(), cost);
    }

    /// Connection closed/refreshed: purge both levels for the source.
    pub fn purge_source(&self, source: &str) {
        self.intelligent.purge_source(source);
        self.literal.purge_source(source);
    }

    pub fn clear(&self) {
        self.intelligent.clear();
        self.literal.clear();
    }

    pub fn stats(&self) -> (IntelligentStats, LiteralStats) {
        (self.intelligent.stats(), self.literal.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::expr::col;
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        Chunk::from_rows(schema, &[vec!["AA".into(), Value::Int(7)]]).unwrap()
    }

    #[test]
    fn lookup_order_intelligent_first() {
        let caches = QueryCaches::new(
            CacheConfig { min_cost: Duration::ZERO, ..Default::default() },
            1 << 20,
        );
        let (none, outcome) = caches.lookup(&spec(), "SQL");
        assert!(none.is_none());
        assert_eq!(outcome, CacheOutcome::Miss);
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        let (hit, outcome) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
    }

    #[test]
    fn literal_catches_post_compilation_collisions() {
        let caches = QueryCaches::new(
            CacheConfig { min_cost: Duration::ZERO, ..Default::default() },
            1 << 20,
        );
        caches.store(spec(), "SELECT ...", &chunk(), Duration::from_millis(5));
        // A structurally different spec (different relation ⇒ intelligent
        // miss) that compiled to the same text — e.g. after join culling.
        let other = QuerySpec::new("faa", LogicalPlan::scan("flights_joined"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"));
        let (hit, outcome) = caches.lookup(&other, "SELECT ...");
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::LiteralHit);
    }

    #[test]
    fn purge_source_affects_both() {
        let caches = QueryCaches::new(
            CacheConfig { min_cost: Duration::ZERO, ..Default::default() },
            1 << 20,
        );
        caches.store(spec(), "SQL", &chunk(), Duration::from_millis(5));
        caches.purge_source("faa");
        let (hit, _) = caches.lookup(&spec(), "SQL");
        assert!(hit.is_none());
    }

    #[test]
    fn agg_arg_reuse_via_avg() {
        // A stored SUM+COUNT query answers a later AVG request — the paper's
        // "query processor might choose to adjust queries before sending, in
        // order to make the results more useful for future reuse".
        let caches = QueryCaches::new(
            CacheConfig { min_cost: Duration::ZERO, ..Default::default() },
            1 << 20,
        );
        let stored = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Sum, Some(col("delay")), "s"))
            .agg(AggCall::new(AggFunc::Count, Some(col("delay")), "c"));
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("s", DataType::Int),
                Field::new("c", DataType::Int),
            ])
            .unwrap(),
        );
        let data = Chunk::from_rows(
            schema,
            &[vec!["AA".into(), Value::Int(100), Value::Int(20)]],
        )
        .unwrap();
        caches.store(stored, "Q1", &data, Duration::from_millis(5));
        let avg_req = QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Avg, Some(col("delay")), "a"));
        let (hit, outcome) = caches.lookup(&avg_req, "Q2");
        assert_eq!(outcome, CacheOutcome::IntelligentHit);
        assert_eq!(hit.unwrap().row(0)[1], Value::Real(5.0));
    }
}
