//! Dependency tags for precise cache invalidation.
//!
//! Every cached result depends on the data of one source and the set of
//! tables its relation reads. Tagging entries with those dependencies at
//! store time turns invalidation from "connection closed — purge the whole
//! source" into "table `flights` refreshed — purge exactly its dependents",
//! across both the node-local L1 and the shared L2 tier.
//!
//! Tags are plain strings with two namespaces:
//!
//! - `src:{source}` — every entry derived from the source (superset tag;
//!   purging it is the old wholesale behaviour, kept for source removal).
//! - `tbl:{source}\u{1}{table}` — entries reading a specific table, the
//!   granularity a refresh event actually has.

use tabviz_tql::LogicalPlan;

use crate::spec::QuerySpec;

/// Tag carried by every entry of `source` (wholesale-purge superset).
pub fn source_tag(source: &str) -> String {
    format!("src:{source}")
}

/// Tag carried by entries reading `table` of `source`.
pub fn table_tag(source: &str, table: &str) -> String {
    format!("tbl:{source}\u{1}{table}")
}

/// Every table a relation tree reads, sorted and deduplicated.
pub fn tables_of(plan: &LogicalPlan) -> Vec<String> {
    fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
        match plan {
            LogicalPlan::TableScan { table, .. } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Order { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::Distinct { input } => walk(input, out),
            LogicalPlan::Join { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out.sort();
    out
}

/// The full dependency tag set of a query spec: its source tag plus one
/// table tag per table its relation reads.
pub fn tags_for_spec(spec: &QuerySpec) -> Vec<String> {
    let mut tags = vec![source_tag(&spec.source)];
    for table in tables_of(&spec.relation) {
        tags.push(table_tag(&spec.source, &table));
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_tql::JoinType;

    #[test]
    fn tags_cover_source_and_every_table() {
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("flights")),
            right: Box::new(LogicalPlan::scan("carriers")),
            on: vec![("carrier".into(), "code".into())],
            join_type: JoinType::Inner,
        };
        let spec = QuerySpec::new("faa", plan);
        let tags = tags_for_spec(&spec);
        assert_eq!(tags[0], source_tag("faa"));
        assert!(tags.contains(&table_tag("faa", "flights")));
        assert!(tags.contains(&table_tag("faa", "carriers")));
        assert_eq!(tags.len(), 3);
    }

    #[test]
    fn nested_plans_dedup_tables() {
        let plan = LogicalPlan::Select {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(LogicalPlan::scan("flights")),
            }),
            predicate: tabviz_tql::expr::col("carrier"),
        };
        assert_eq!(tables_of(&plan), vec!["flights".to_string()]);
    }
}
