//! The literal query cache.
//!
//! Sect. 3.2: "The literal query cache contains low-level queries ...; it is
//! keyed on the query text. It is used to match internal queries that end up
//! having the same textual representation but where a match could not be
//! proven upfront without performing complete query compilation. Predicate
//! simplification based on domains or join culling are some examples of this
//! scenario."

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use tabviz_common::Chunk;
use tabviz_obs::{stage, Counter, Histogram, Registry};

struct Entry {
    result: Chunk,
    bytes: usize,
    created: Instant,
    last_used: Instant,
    use_count: u64,
    cost: Duration,
    /// Marked by [`LiteralCache::mark_source_stale`]: hidden from normal
    /// lookups, still available for degraded serving.
    stale: bool,
    /// Dependency tags (see [`crate::tags`]) for precise invalidation.
    tags: Vec<String>,
}

impl Entry {
    fn score(&self, now: Instant) -> f64 {
        let age = now.duration_since(self.created).as_secs_f64() + 1.0;
        let idle = now.duration_since(self.last_used).as_secs_f64() + 1.0;
        let cost = self.cost.as_secs_f64() * 1e3 + 1.0;
        cost * (self.use_count as f64 + 1.0) / (age * idle)
    }
}

#[derive(Debug, Clone, Default)]
pub struct LiteralStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Degraded lookups answered from an entry marked stale.
    pub stale_serves: u64,
}

/// Live counters, outside the entry-map mutex (see the matching comment in
/// `intelligent.rs`): stats snapshots and hot-path bumps never contend with
/// lookups holding the lock.
#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    stale_serves: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> LiteralStats {
        LiteralStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
        }
    }
}

#[inline]
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

struct Inner {
    entries: HashMap<String, Entry>,
    bytes: usize,
}

/// Pre-resolved `tv_cache_literal_*` metric handles (see
/// [`LiteralCache::bind_obs`]). `stale_age` shares the cross-cache
/// `tv_cache_stale_age_seconds` histogram.
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
    stale_serves: Counter,
    stale_age: Histogram,
}

impl CacheMetrics {
    fn bind(registry: &Registry) -> Self {
        CacheMetrics {
            hits: registry.counter("tv_cache_literal_hits_total"),
            misses: registry.counter("tv_cache_literal_misses_total"),
            inserts: registry.counter("tv_cache_literal_inserts_total"),
            evictions: registry.counter("tv_cache_literal_evictions_total"),
            stale_serves: registry.counter("tv_cache_literal_stale_serves_total"),
            stale_age: registry.histogram("tv_cache_stale_age_seconds"),
        }
    }
}

/// Text-keyed result cache. Keys include the source name so identical SQL
/// against different servers never collides.
pub struct LiteralCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
    stats: AtomicStats,
    metrics: OnceLock<CacheMetrics>,
}

impl Default for LiteralCache {
    fn default() -> Self {
        Self::new(64 << 20)
    }
}

impl LiteralCache {
    pub fn new(capacity_bytes: usize) -> Self {
        LiteralCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                bytes: 0,
            }),
            stats: AtomicStats::default(),
            metrics: OnceLock::new(),
        }
    }

    /// Resolve this cache's `tv_cache_literal_*` metrics against a
    /// registry. Idempotent; the first binding wins.
    pub fn bind_obs(&self, registry: &Registry) {
        let _ = self.metrics.set(CacheMetrics::bind(registry));
    }

    fn obs(&self) -> Option<&CacheMetrics> {
        self.metrics.get()
    }

    fn key(source: &str, text: &str) -> String {
        format!("{source}\u{1}{text}")
    }

    pub fn get(&self, source: &str, text: &str) -> Option<Chunk> {
        self.get_explained(source, text).0
    }

    /// [`LiteralCache::get`] with decision attribution: also returns the
    /// verdict reason code (see [`tabviz_obs::reason`]).
    pub fn get_explained(&self, source: &str, text: &str) -> (Option<Chunk>, &'static str) {
        let mut inner = self.inner.lock();
        let key = Self::key(source, text);
        match inner.entries.get_mut(&key) {
            Some(e) if !e.stale => {
                e.use_count += 1;
                e.last_used = Instant::now();
                let out = e.result.clone();
                bump(&self.stats.hits);
                if let Some(m) = self.obs() {
                    m.hits.inc();
                }
                (Some(out), tabviz_obs::reason::LITERAL_HIT)
            }
            _ => {
                bump(&self.stats.misses);
                if let Some(m) = self.obs() {
                    m.misses.inc();
                }
                (None, tabviz_obs::reason::LITERAL_MISS)
            }
        }
    }

    /// Degraded-path lookup: serves entries even when stale. Counts as a
    /// `stale_serves` hit, never as a miss (the normal lookup already
    /// recorded the miss).
    pub fn get_stale(&self, source: &str, text: &str) -> Option<Chunk> {
        let mut inner = self.inner.lock();
        let key = Self::key(source, text);
        let e = inner.entries.get_mut(&key)?;
        e.use_count += 1;
        e.last_used = Instant::now();
        let out = e.result.clone();
        let age = e.created.elapsed();
        bump(&self.stats.stale_serves);
        if let Some(m) = self.obs() {
            m.stale_serves.inc();
            m.stale_age.observe(age);
        }
        tabviz_obs::event_with(
            stage::STALE_SERVE,
            Some("literal"),
            Some(age.as_micros().min(u64::MAX as u128) as u64),
            Some(tabviz_obs::reason::LITERAL_STALE),
        );
        Some(out)
    }

    pub fn put(&self, source: &str, text: &str, result: Chunk, cost: Duration) {
        self.put_tagged(
            source,
            text,
            result,
            cost,
            vec![crate::tags::source_tag(source)],
        );
    }

    /// [`LiteralCache::put`] with explicit dependency tags (the caller
    /// knows which tables the query reads; a bare `put` only carries the
    /// source tag).
    pub fn put_tagged(
        &self,
        source: &str,
        text: &str,
        result: Chunk,
        cost: Duration,
        tags: Vec<String>,
    ) {
        let bytes = result.approx_bytes();
        let mut inner = self.inner.lock();
        let key = Self::key(source, text);
        let now = Instant::now();
        if let Some(old) = inner.entries.insert(
            key,
            Entry {
                result,
                bytes,
                created: now,
                last_used: now,
                use_count: 0,
                cost,
                stale: false,
                tags,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        bump(&self.stats.inserts);
        if let Some(m) = self.obs() {
            m.inserts.inc();
        }
        while inner.bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let now = Instant::now();
            let victim = inner
                .entries
                .iter()
                .min_by(|a, b| {
                    a.1.score(now)
                        .partial_cmp(&b.1.score(now))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            if let Some(e) = inner.entries.remove(&k) {
                inner.bytes -= e.bytes;
                bump(&self.stats.evictions);
                if let Some(m) = self.obs() {
                    m.evictions.inc();
                }
            }
        }
    }

    /// Mark every entry of a source stale (refresh while the backend is
    /// unreachable). Returns how many entries were newly marked.
    pub fn mark_source_stale(&self, source: &str) -> usize {
        let mut inner = self.inner.lock();
        let prefix = format!("{source}\u{1}");
        let mut marked = 0;
        for (k, e) in inner.entries.iter_mut() {
            if k.starts_with(&prefix) && !e.stale {
                e.stale = true;
                marked += 1;
            }
        }
        marked
    }

    pub fn purge_source(&self, source: &str) {
        let mut inner = self.inner.lock();
        let prefix = format!("{source}\u{1}");
        let keys: Vec<String> = inner
            .entries
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in keys {
            if let Some(e) = inner.entries.remove(&k) {
                inner.bytes -= e.bytes;
            }
        }
    }

    /// Mark every entry carrying `tag` stale. Returns how many were newly
    /// marked.
    pub fn mark_tag_stale(&self, tag: &str) -> usize {
        let mut inner = self.inner.lock();
        let mut marked = 0;
        for e in inner.entries.values_mut() {
            if !e.stale && e.tags.iter().any(|t| t == tag) {
                e.stale = true;
                marked += 1;
            }
        }
        marked
    }

    /// Remove every entry carrying `tag`; returns how many were removed.
    pub fn purge_tag(&self, tag: &str) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<String> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.tags.iter().any(|t| t == tag))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &keys {
            if let Some(e) = inner.entries.remove(k) {
                inner.bytes -= e.bytes;
            }
        }
        keys.len()
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.bytes = 0;
    }

    /// Lock-free snapshot of the live counters.
    pub fn stats(&self) -> LiteralStats {
        self.stats.snapshot()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Snapshot entries as `(source, text, chunk, cost)` for persistence.
    pub fn snapshot(&self) -> Vec<(String, String, Chunk, Duration)> {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .map(|(k, e)| {
                let (source, text) = k.split_once('\u{1}').unwrap_or(("", k));
                (
                    source.to_string(),
                    text.to_string(),
                    e.result.clone(),
                    e.cost,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};

    fn chunk(n: usize) -> Chunk {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i as i64)]).collect();
        Chunk::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn hit_and_miss() {
        let c = LiteralCache::default();
        assert!(c.get("s", "SELECT 1").is_none());
        c.put("s", "SELECT 1", chunk(1), Duration::from_millis(5));
        assert_eq!(c.get("s", "SELECT 1").unwrap().len(), 1);
        let st = c.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn sources_are_isolated() {
        let c = LiteralCache::default();
        c.put("s1", "Q", chunk(1), Duration::from_millis(5));
        assert!(c.get("s2", "Q").is_none());
        c.purge_source("s1");
        assert!(c.get("s1", "Q").is_none());
    }

    #[test]
    fn replacement_updates_bytes() {
        let c = LiteralCache::default();
        c.put("s", "Q", chunk(100), Duration::from_millis(5));
        let b1 = c.bytes();
        c.put("s", "Q", chunk(10), Duration::from_millis(5));
        assert!(c.bytes() < b1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_prefers_cheap_idle_entries() {
        let c = LiteralCache::new(4000);
        c.put("s", "expensive", chunk(100), Duration::from_secs(2));
        for i in 0..20 {
            c.put(
                "s",
                &format!("cheap{i}"),
                chunk(100),
                Duration::from_micros(10),
            );
        }
        assert!(c.stats().evictions > 0);
        assert!(
            c.get("s", "expensive").is_some(),
            "high re-evaluation cost should survive eviction"
        );
    }
}
