//! Cache persistence.
//!
//! Sect. 3.2: "In Tableau Desktop query caches get persisted to enable fast
//! response times across different sessions with the application." Entries
//! are written as TQL text (specs) plus encoded result tables, and reloaded
//! into fresh caches on the next session.

use crate::caches::QueryCaches;
use crate::spec::QuerySpec;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;
use std::time::Duration;
use tabviz_common::{Chunk, Result, TvError};
use tabviz_storage::pack::{pack_table, unpack_table};
use tabviz_storage::Table;
use tabviz_tql::{parse_plan, write_plan};

const MAGIC: &[u8; 4] = b"TVQC";
const VERSION: u8 = 1;

/// Serialize both cache levels.
pub fn save(caches: &QueryCaches) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);

    let intelligent = caches.intelligent.snapshot();
    buf.put_u32_le(intelligent.len() as u32);
    for (spec, chunk, cost) in intelligent {
        put_str(&mut buf, &spec.source);
        let plan_text = write_plan(&spec.to_plan()?);
        put_str(&mut buf, &plan_text);
        buf.put_u64_le(cost.as_micros() as u64);
        put_chunk(&mut buf, &chunk)?;
    }

    let literal = caches.literal.snapshot();
    buf.put_u32_le(literal.len() as u32);
    for (source, text, chunk, cost) in literal {
        put_str(&mut buf, &source);
        put_str(&mut buf, &text);
        buf.put_u64_le(cost.as_micros() as u64);
        put_chunk(&mut buf, &chunk)?;
    }
    Ok(buf.freeze())
}

/// Load entries into (fresh or existing) caches. Unparseable entries are
/// skipped, not fatal — a stale cache file must never break startup.
pub fn load(caches: &QueryCaches, mut buf: &[u8]) -> Result<usize> {
    if buf.remaining() < 5 {
        return Err(TvError::Io("truncated cache file".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TvError::Io("not a cache file".into()));
    }
    if buf.get_u8() != VERSION {
        return Err(TvError::Io("unsupported cache file version".into()));
    }
    let mut loaded = 0usize;

    let n = get_u32(&mut buf)? as usize;
    for _ in 0..n {
        let source = get_str(&mut buf)?;
        let plan_text = get_str(&mut buf)?;
        let cost = Duration::from_micros(get_u64(&mut buf)?);
        let chunk = get_chunk(&mut buf)?;
        if let Ok(plan) = parse_plan(&plan_text) {
            if let Some(spec) = QuerySpec::from_plan(&source, &plan) {
                caches
                    .intelligent
                    .put(spec, chunk, cost.max(Duration::from_millis(1)));
                loaded += 1;
            }
        }
    }

    let n = get_u32(&mut buf)? as usize;
    for _ in 0..n {
        let source = get_str(&mut buf)?;
        let text = get_str(&mut buf)?;
        let cost = Duration::from_micros(get_u64(&mut buf)?);
        let chunk = get_chunk(&mut buf)?;
        caches
            .literal
            .put(&source, &text, chunk, cost.max(Duration::from_millis(1)));
        loaded += 1;
    }
    Ok(loaded)
}

pub fn save_to_file(caches: &QueryCaches, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, save(caches)?)?;
    Ok(())
}

pub fn load_from_file(caches: &QueryCaches, path: impl AsRef<Path>) -> Result<usize> {
    let bytes = std::fs::read(path)?;
    load(caches, &bytes)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(TvError::Io("truncated cache string".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| TvError::Io("invalid utf8 in cache file".into()))?;
    buf.advance(len);
    Ok(s)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(TvError::Io("truncated cache file".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(TvError::Io("truncated cache file".into()));
    }
    Ok(buf.get_u64_le())
}

fn put_chunk(buf: &mut BytesMut, chunk: &Chunk) -> Result<()> {
    let table = Table::from_chunk("__c", chunk, &[])?;
    let bytes = pack_table(&table);
    buf.put_u32_le(bytes.len() as u32);
    buf.put_slice(&bytes);
    Ok(())
}

fn get_chunk(buf: &mut &[u8]) -> Result<Chunk> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(TvError::Io("truncated cache chunk".into()));
    }
    let table = unpack_table(&buf[..len])?;
    buf.advance(len);
    table.scan(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intelligent::CacheConfig;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::{AggCall, AggFunc, LogicalPlan};

    fn caches() -> QueryCaches {
        QueryCaches::new(
            CacheConfig {
                min_cost: Duration::ZERO,
                ..Default::default()
            },
            1 << 20,
        )
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("faa", LogicalPlan::scan("flights"))
            .filter(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .group("carrier")
            .agg(AggCall::new(AggFunc::Count, None, "n"))
    }

    fn chunk() -> Chunk {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("n", DataType::Int),
            ])
            .unwrap(),
        );
        Chunk::from_rows(
            schema,
            &[
                vec!["AA".into(), Value::Int(7)],
                vec!["DL".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_across_sessions() {
        let session1 = caches();
        session1.store(spec(), "SELECT ...", &chunk(), Duration::from_millis(40));
        let img = save(&session1).unwrap();

        // "Restart": brand-new caches, warm from disk image.
        let session2 = caches();
        let loaded = load(&session2, &img).unwrap();
        assert_eq!(loaded, 2); // one intelligent + one literal entry
        let (hit, outcome) = session2.lookup(&spec(), "SELECT ...");
        assert_eq!(outcome, crate::caches::CacheOutcome::IntelligentHit);
        assert_eq!(hit.unwrap().to_rows(), chunk().to_rows());
        assert!(session2.literal.get("faa", "SELECT ...").is_some());
    }

    #[test]
    fn file_roundtrip() {
        let session1 = caches();
        session1.store(spec(), "Q", &chunk(), Duration::from_millis(40));
        let path = std::env::temp_dir().join("tabviz_cache_test.tvqc");
        save_to_file(&session1, &path).unwrap();
        let session2 = caches();
        assert_eq!(load_from_file(&session2, &path).unwrap(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_files_rejected() {
        let c = caches();
        assert!(load(&c, b"JUNK").is_err());
        assert!(load(&c, b"TVQC\x07").is_err());
        let img = save(&c).unwrap();
        assert!(load(&caches(), &img[..4]).is_err());
    }

    #[test]
    fn empty_caches_roundtrip() {
        let img = save(&caches()).unwrap();
        assert_eq!(load(&caches(), &img).unwrap(), 0);
    }
}
