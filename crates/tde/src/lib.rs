//! The Tableau Data Engine (TDE) reproduction.
//!
//! Sect. 4 of the paper: "a read-only column store ... specially tuned for
//! interactive analysis of complicated analytical queries." This crate builds
//! everything above the storage layer:
//!
//! * [`catalog`] — the engine's [`tabviz_tql::Catalog`] over a
//!   [`tabviz_storage::Database`];
//! * [`compile`] — the classic compiler rewrites (DISTINCT → GROUP BY,
//!   constant folding, predicate simplification);
//! * [`optimize`] — the rule-based optimizer: filter/project push-down, join
//!   culling, redundant-order removal, property derivation (Sect. 4.1.2);
//! * [`physical`] — physical plan construction, including the RLE
//!   IndexTable range-skipping scan (Sect. 4.3);
//! * [`parallel`] — bottom-up parallel plan generation with Exchange /
//!   SharedTable / FractionTable, local/global aggregation and
//!   range-partitioned aggregation (Sect. 4.2);
//! * [`exec`] — the chunked Volcano execution operators (Sect. 4.1.3);
//! * [`engine`] — the [`engine::Tde`] façade: TQL text in, chunks out.

pub mod catalog;
pub mod compile;
pub mod cost;
pub mod engine;
pub mod exec;
pub mod optimize;
pub mod parallel;
pub mod physical;
pub mod props;

pub use catalog::TdeCatalog;
pub use engine::{ExecOptions, Tde};
