//! The TDE façade: text or logical plans in, chunks out.
//!
//! "In both cases Tableau treats the TDE like any other supported database.
//! It pre-processes query batches, compiles queries in TQL and executes them
//! against the engine" (Sect. 4.1.4). [`Tde`] is that engine boundary: it
//! owns a storage [`Database`], compiles TQL through the binder / rewriter /
//! optimizer pipeline, plans physically (serial, then parallel), executes,
//! and returns results with the schema the caller's query asked for.

use std::sync::Arc;
use tabviz_common::{Chunk, Result, SchemaRef, TvError};
use tabviz_storage::Database;
use tabviz_tql::{parse_plan, LogicalPlan};

use crate::catalog::TdeCatalog;
use crate::compile::compile;
use crate::optimize::{optimize, OptimizerConfig};
use crate::parallel::{parallelize, ParallelOptions};
use crate::physical::{create_physical, execute_to_chunk, PhysPlan, PhysicalOptions};

/// All execution knobs in one place. Every field backs a paper experiment:
/// the defaults are "Tableau 9.0" behavior; switching features off recreates
/// the earlier-version baselines the paper compares against.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    pub optimizer: OptimizerConfig,
    pub physical: PhysicalOptions,
    pub parallel: ParallelOptions,
    /// `false` reproduces the pre-9.0 single-threaded engine.
    pub disable_parallel: bool,
}

impl ExecOptions {
    /// Serial execution with all optimizations (the "Tableau 8.x" baseline
    /// for the parallelism experiments).
    pub fn serial() -> Self {
        ExecOptions {
            disable_parallel: true,
            ..Default::default()
        }
    }
}

/// A running Tableau Data Engine instance.
pub struct Tde {
    db: Arc<Database>,
}

impl Tde {
    pub fn new(db: Arc<Database>) -> Self {
        Tde { db }
    }

    /// Open an empty in-memory engine.
    pub fn empty(name: &str) -> Self {
        Tde {
            db: Arc::new(Database::new(name)),
        }
    }

    /// Open from a packed single-file database image.
    pub fn open_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Tde {
            db: Arc::new(tabviz_storage::pack::unpack_from_file(path)?),
        })
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    pub fn catalog(&self) -> TdeCatalog {
        TdeCatalog::new(Arc::clone(&self.db))
    }

    /// Parse and execute TQL text with default options.
    pub fn query(&self, tql: &str) -> Result<Chunk> {
        self.query_with(tql, &ExecOptions::default())
    }

    /// Parse and execute TQL text.
    pub fn query_with(&self, tql: &str, options: &ExecOptions) -> Result<Chunk> {
        let plan = parse_plan(tql)?;
        self.execute_plan(&plan, options)
    }

    /// Compile, optimize, plan and execute a logical plan. The whole
    /// pipeline runs under a `tde_exec` span (detail = rows produced), with
    /// per-operator timings recorded by the execution layer.
    pub fn execute_plan(&self, plan: &LogicalPlan, options: &ExecOptions) -> Result<Chunk> {
        let mut span = tabviz_obs::span(tabviz_obs::stage::TDE_EXEC);
        let (phys, wanted) = self.plan_pipeline(plan, options)?;
        let out = execute_to_chunk(&phys)?;
        let out = conform(out, &wanted)?;
        span.detail(out.len() as u64);
        Ok(out)
    }

    /// The physical plan that `execute_plan` would run (for explain/tests).
    pub fn plan_physical(&self, plan: &LogicalPlan, options: &ExecOptions) -> Result<PhysPlan> {
        Ok(self.plan_pipeline(plan, options)?.0)
    }

    /// Explain: logical → optimized logical → physical.
    pub fn explain(&self, tql: &str, options: &ExecOptions) -> Result<String> {
        let plan = parse_plan(tql)?;
        let catalog = self.catalog();
        let compiled = compile(plan.clone(), &catalog)?;
        let optimized = optimize(compiled, &catalog, &options.optimizer)?;
        let phys = self.plan_pipeline(&plan, options)?.0;
        Ok(format!(
            "== logical ==\n{}== optimized ==\n{}== physical ==\n{}",
            plan.canonical_text(),
            optimized.canonical_text(),
            phys.explain()
        ))
    }

    fn plan_pipeline(
        &self,
        plan: &LogicalPlan,
        options: &ExecOptions,
    ) -> Result<(PhysPlan, SchemaRef)> {
        let catalog = self.catalog();
        // The caller-visible schema, captured before optimization: pruning
        // and culling may drop or reorder internal columns.
        let wanted = plan.schema(&catalog)?;
        let compiled = compile(plan.clone(), &catalog)?;
        let optimized = optimize(compiled, &catalog, &options.optimizer)?;
        let serial = create_physical(&optimized, self.db.as_ref(), &catalog, &options.physical)?;
        let serial = if options.physical.enable_scan_pushdown {
            crate::optimize::push_scan_predicates(serial)
        } else {
            serial
        };
        let phys = if options.disable_parallel {
            serial
        } else {
            parallelize(&serial, &options.parallel)?
        };
        Ok((phys, wanted))
    }
}

/// Project/reorder `out` to match the caller's requested schema by name.
fn conform(out: Chunk, wanted: &SchemaRef) -> Result<Chunk> {
    let have = out.schema();
    if have.names() == wanted.names() {
        return Ok(out);
    }
    let idx: Vec<usize> = wanted
        .names()
        .iter()
        .map(|n| {
            have.index_of(n)
                .map_err(|_| TvError::Exec(format!("planner lost output column '{n}'")))
        })
        .collect::<Result<_>>()?;
    Ok(out.project(&idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_storage::Table;

    fn engine() -> Tde {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("origin", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let carriers = ["AA", "DL", "WN"];
        let origins = ["JFK", "LAX", "SFO", "ORD"];
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| {
                vec![
                    Value::Str(carriers[i % 3].into()),
                    Value::Str(origins[i % 4].into()),
                    Value::Int((i % 50) as i64),
                ]
            })
            .collect();
        let chunk = tabviz_common::Chunk::from_rows(schema, &rows).unwrap();
        let tde = Tde::empty("faa");
        tde.database()
            .put(Table::from_chunk("flights", &chunk, &["carrier"]).unwrap())
            .unwrap();
        tde
    }

    #[test]
    fn end_to_end_tql() {
        let tde = engine();
        let out = tde
            .query(
                "(topn 2 ((n desc))
                   (aggregate ((carrier)) ((count as n) (avg delay as avg_delay))
                     (select (>= delay 10) (scan flights))))",
            )
            .unwrap();
        assert_eq!(out.schema().names(), vec!["carrier", "n", "avg_delay"]);
        assert_eq!(out.len(), 2);
        // 40 of 50 delay values pass; 1000 rows / 3 carriers ⇒ AA has 334 rows
        let n0 = out.row(0)[1].as_int().unwrap();
        assert!(n0 >= 266, "top carrier count {n0}");
    }

    #[test]
    fn serial_and_parallel_agree() {
        let tde = engine();
        let q = "(aggregate ((origin)) ((count as n) (sum delay as total)) (scan flights))";
        let mut serial = tde.query_with(q, &ExecOptions::serial()).unwrap().to_rows();
        let mut fast_opts = ExecOptions::default();
        fast_opts.parallel.profile.min_work_per_thread = 10;
        let mut parallel = tde.query_with(q, &fast_opts).unwrap().to_rows();
        serial.sort();
        parallel.sort();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn output_schema_is_conformed() {
        let tde = engine();
        // Pruning narrows the scan, but the bare scan query returns all
        // columns in declared order.
        let out = tde.query("(scan flights)").unwrap();
        assert_eq!(out.schema().names(), vec!["carrier", "origin", "delay"]);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn distinct_compiles_and_runs() {
        let tde = engine();
        let out = tde.query("(distinct (scan flights carrier))").unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn explain_shows_stages() {
        let tde = engine();
        let text = tde
            .explain(
                "(aggregate ((carrier)) ((count as n)) (scan flights))",
                &ExecOptions::default(),
            )
            .unwrap();
        assert!(text.contains("== logical =="));
        assert!(text.contains("== optimized =="));
        assert!(text.contains("== physical =="));
    }

    #[test]
    fn errors_surface() {
        let tde = engine();
        assert!(tde.query("(scan missing)").is_err());
        assert!(tde.query("(select (> nope 1) (scan flights))").is_err());
        assert!(tde.query("not tql at all(").is_err());
    }

    #[test]
    fn run_agg_used_on_rle_group() {
        // carrier is sorted → dict-rle, and COUNT(*) needs no other column,
        // so the run-granularity aggregate takes over the whole query.
        let tde = engine();
        let plan = parse_plan("(aggregate ((carrier)) ((count as n)) (scan flights))").unwrap();
        let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
        assert!(phys.explain().contains("RunAgg"), "{}", phys.explain());
    }

    #[test]
    fn streaming_agg_used_on_sorted_group() {
        let tde = engine();
        let mut opts = ExecOptions::serial();
        opts.physical.enable_run_agg = false;
        let plan = parse_plan("(aggregate ((carrier)) ((count as n)) (scan flights))").unwrap();
        let phys = tde.plan_physical(&plan, &opts).unwrap();
        assert!(phys.explain().contains("StreamAgg"), "{}", phys.explain());
        // Unsorted group column falls back to hash.
        let plan2 = parse_plan("(aggregate ((origin)) ((count as n)) (scan flights))").unwrap();
        let phys2 = tde.plan_physical(&plan2, &opts).unwrap();
        assert!(phys2.explain().contains("HashAgg"), "{}", phys2.explain());
    }

    #[test]
    fn scan_pushdown_moves_sargable_filter_into_scan() {
        let tde = engine();
        let plan = parse_plan("(select (> delay 10) (scan flights))").unwrap();
        let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
        let text = phys.explain();
        assert!(text.contains("pushed=["), "{text}");
        assert!(!text.contains("Filter"), "{text}");
        let out = tde.execute_plan(&plan, &ExecOptions::serial()).unwrap();
        let mut opts = ExecOptions::serial();
        opts.physical.enable_scan_pushdown = false;
        let baseline = tde.execute_plan(&plan, &opts).unwrap();
        assert_eq!(out.len(), baseline.len());
        assert!(!tde
            .plan_physical(&plan, &opts)
            .unwrap()
            .explain()
            .contains("pushed=["));
    }

    #[test]
    fn scan_pushdown_keeps_non_sargable_residual() {
        let tde = engine();
        // Two columns in one conjunct: not sargable, must stay in the Filter.
        let plan = parse_plan(
            "(select (and (> delay 10) (or (> delay 100) (= carrier \"AA\"))) (scan flights))",
        )
        .unwrap();
        let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
        let text = phys.explain();
        assert!(text.contains("pushed=["), "{text}");
        assert!(text.contains("Filter"), "{text}");
        let out = tde.execute_plan(&plan, &ExecOptions::serial()).unwrap();
        let mut opts = ExecOptions::serial();
        opts.physical.enable_scan_pushdown = false;
        let baseline = tde.execute_plan(&plan, &opts).unwrap();
        assert_eq!(out.len(), baseline.len());
    }

    #[test]
    fn rle_index_scan_planned_for_selective_filter() {
        let tde = engine();
        let plan = parse_plan("(select (= carrier \"AA\") (scan flights))").unwrap();
        let phys = tde.plan_physical(&plan, &ExecOptions::serial()).unwrap();
        assert!(
            phys.explain().contains("via-rle-index"),
            "sorted carrier column should be RLE and range-skippable:\n{}",
            phys.explain()
        );
        let out = tde.execute_plan(&plan, &ExecOptions::serial()).unwrap();
        assert_eq!(out.len(), 334);
        // And correctness matches the non-indexed path.
        let mut opts = ExecOptions::serial();
        opts.physical.enable_rle_index = false;
        let baseline = tde.execute_plan(&plan, &opts).unwrap();
        assert_eq!(out.len(), baseline.len());
    }

    #[test]
    fn pack_roundtrip_through_engine() {
        let tde = engine();
        let path = std::env::temp_dir().join("tabviz_engine_pack.tvdb");
        tabviz_storage::pack::pack_to_file(tde.database(), &path).unwrap();
        let tde2 = Tde::open_file(&path).unwrap();
        let q = "(aggregate ((carrier)) ((count as n)) (scan flights))";
        assert_eq!(
            tde.query(q).unwrap().sort_by(&[(0, true)]),
            tde2.query(q).unwrap().sort_by(&[(0, true)])
        );
        std::fs::remove_file(path).ok();
    }
}
