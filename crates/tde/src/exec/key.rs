//! Packed composite keys for the keyed operators (hash agg, hash join).
//!
//! The row-at-a-time path keys its hash tables on `Vec<Value>` — one heap
//! allocation plus an enum-dispatched `Hash` per row. This module replaces
//! that on the hot path with a fixed-width `KeyBuf`: each key column packs
//! into one `u64` word per row, encoded column-at-a-time into a row-major
//! arena, with hashes folded in the same batched passes. Equality is plain
//! word-slice comparison, so the table maps `hash -> candidate ids` and
//! disambiguates collisions against the arena.
//!
//! Per-column word encoding (the column's `DataType` is fixed per operator,
//! so no cross-type tag is needed inside a word):
//! * `Bool`  — `0`/`1`;
//! * `Int`   — the `i64` bits (NOT the f64 bits `Value::hash` uses: byte
//!   equality must not merge `2^53` and `2^53 + 1`);
//! * `Real`  — `f64::to_bits` (total_cmp semantics: `-0.0 != 0.0`, NaN
//!   payloads distinct — exactly how `Value::eq` groups);
//! * `Date`  — the `i32` sign-extended;
//! * `Str`   — collation-normalized, then the small-string fast path packs
//!   up to 7 bytes inline (`1<<63 | len<<56 | bytes`), longer strings take
//!   a dict code from the operator-local interner (top bit clear, so the
//!   two sub-encodings can never collide).
//!
//! One extra word per key carries the per-column null bitmap, so NULL group
//! keys form groups (SQL GROUP BY) while join encoders mark NULL keys
//! unmatchable (SQL equi-join) via the `ok` flags instead.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;
use tabviz_common::hash::mix64;
use tabviz_common::{Collation, ColumnVec, DataType, Values};
use tabviz_obs::Counter;

/// Packed keys cover at most this many key columns; wider composites fall
/// back to the `Value`-row path (`kernel_fallback_wide_key`).
pub(crate) const MAX_KEY_COLS: usize = 8;

/// Why a keyed operator could not take the packed-key fast path, or `None`
/// when it can. Decided once per operator from its key schema.
pub(crate) fn fallback_reason(n_key_cols: usize, kernels_enabled: bool) -> Option<&'static str> {
    if !kernels_enabled {
        Some(tabviz_obs::reason::KERNEL_FALLBACK_DISABLED)
    } else if n_key_cols > MAX_KEY_COLS {
        Some(tabviz_obs::reason::KERNEL_FALLBACK_WIDE_KEY)
    } else {
        None
    }
}

/// Process-wide kernel-selection counters (same pattern as the scan's
/// pruning counters): how many keyed operators took each path.
pub(crate) struct KernelMetrics {
    pub fastpath: Counter,
    pub fallback: Counter,
}

pub(crate) fn kernel_metrics() -> &'static KernelMetrics {
    static METRICS: OnceLock<KernelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = tabviz_obs::global();
        KernelMetrics {
            fastpath: reg.counter("tv_tde_kernel_fastpath_total"),
            fallback: reg.counter("tv_tde_kernel_fallback_total"),
        }
    })
}

/// Record one operator's kernel choice: bump the counter and attribute the
/// decision into the flight recorder (label = operator stage, reason =
/// `kernel_fastpath` / `kernel_fallback_*`).
pub(crate) fn report_kernel_choice(op_stage: &'static str, fallback: Option<&'static str>) {
    let m = kernel_metrics();
    let reason = match fallback {
        None => {
            m.fastpath.inc();
            tabviz_obs::reason::KERNEL_FASTPATH
        }
        Some(why) => {
            m.fallback.inc();
            why
        }
    };
    tabviz_obs::event_with(
        tabviz_obs::stage::KERNEL_SELECT,
        Some(op_stage),
        None,
        Some(reason),
    );
}

/// Identity hasher for already-mixed `u64` keys: the packed-key hashes are
/// `mix64` outputs, so re-hashing through SipHash would only burn cycles.
#[derive(Default)]
pub(crate) struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are expected; fold defensively if anything else
        // ever lands here.
        for &b in bytes {
            self.0 = mix64(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

pub(crate) type PreHashedMap<V> = HashMap<u64, V, BuildHasherDefault<PreHashed>>;

const STR_INLINE: u64 = 1 << 63;
const HASH_SEED: u64 = 0x7462_7669_7a6b_6579; // "tabvizkey"

/// Fixed per-operator key layout: column types/collations plus the word
/// stride (one word per column + the trailing null-bitmap word).
#[derive(Debug, Clone)]
pub(crate) struct KeyLayout {
    pub dtypes: Vec<DataType>,
    pub collations: Vec<Collation>,
    pub stride: usize,
}

impl KeyLayout {
    pub fn new(dtypes: Vec<DataType>, collations: Vec<Collation>) -> Self {
        debug_assert_eq!(dtypes.len(), collations.len());
        debug_assert!(dtypes.len() <= MAX_KEY_COLS);
        let stride = dtypes.len() + 1;
        KeyLayout {
            dtypes,
            collations,
            stride,
        }
    }
}

/// One chunk's keys, encoded: row-major words (`len * stride`), the folded
/// per-row hashes, and per-row matchability (`ok[i] == false` means the key
/// can never equal any other key — NULL under join semantics, or a string
/// absent from a frozen interner).
pub(crate) struct EncodedKeys {
    pub words: Vec<u64>,
    pub hashes: Vec<u64>,
    pub ok: Vec<bool>,
}

impl EncodedKeys {
    pub fn row(&self, i: usize, stride: usize) -> &[u64] {
        &self.words[i * stride..(i + 1) * stride]
    }
}

/// How the string interner behaves during encoding.
pub(crate) enum InternMode<'a> {
    /// Assign fresh codes to unseen long strings (build side / aggregation).
    Grow(&'a mut HashMap<String, u32>),
    /// Read-only: an unseen long string marks the row unmatchable (probe
    /// side — a code absent from the build interner cannot match any build
    /// row).
    Frozen(&'a HashMap<String, u32>),
}

/// Normalize a string under `collation` without allocating when it is
/// already in normal form (Binary, or CI with no uppercase ASCII).
fn normalized(s: &str, collation: Collation) -> std::borrow::Cow<'_, str> {
    match collation {
        Collation::Binary => std::borrow::Cow::Borrowed(s),
        Collation::CaseInsensitive => {
            if s.bytes().any(|b| b.is_ascii_uppercase()) {
                std::borrow::Cow::Owned(s.to_ascii_lowercase())
            } else {
                std::borrow::Cow::Borrowed(s)
            }
        }
    }
}

fn inline_str_word(s: &str) -> Option<u64> {
    let bytes = s.as_bytes();
    if bytes.len() > 7 {
        return None;
    }
    let mut w = STR_INLINE | ((bytes.len() as u64) << 56);
    for (i, &b) in bytes.iter().enumerate() {
        w |= u64::from(b) << (8 * i);
    }
    Some(w)
}

fn str_word(s: &str, collation: Collation, mode: &mut InternMode<'_>) -> Option<u64> {
    let norm = normalized(s, collation);
    if let Some(w) = inline_str_word(&norm) {
        return Some(w);
    }
    match mode {
        InternMode::Grow(map) => {
            let next = map.len() as u32;
            Some(u64::from(*map.entry(norm.into_owned()).or_insert(next)))
        }
        InternMode::Frozen(map) => map.get(norm.as_ref()).map(|&c| u64::from(c)),
    }
}

/// Encode one chunk's key columns into packed words, column-at-a-time,
/// folding per-row hashes in the same passes.
///
/// `nulls_group`: `true` gives GROUP BY semantics (a NULL key cell sets its
/// null-bitmap bit and still forms a valid key); `false` gives equi-join
/// semantics (any NULL key cell marks the row unmatchable).
pub(crate) fn encode_keys(
    layout: &KeyLayout,
    cols: &[&ColumnVec],
    len: usize,
    nulls_group: bool,
    mut mode: InternMode<'_>,
) -> EncodedKeys {
    let stride = layout.stride;
    let n_cols = cols.len();
    debug_assert_eq!(n_cols, layout.dtypes.len());
    let mut words = vec![0u64; len * stride];
    let mut hashes = vec![HASH_SEED; len];
    let mut ok = vec![true; len];

    for (ci, col) in cols.iter().enumerate() {
        let valid = col.nulls.valid_bits();
        // Column-at-a-time: one pass writes this column's word for every
        // row and folds it into the row hash.
        macro_rules! encode_pass {
            ($get_word:expr) => {
                for i in 0..len {
                    let w: u64 = if valid.is_none_or(|b| b[i]) {
                        match $get_word(i) {
                            Some(w) => w,
                            None => {
                                ok[i] = false;
                                0
                            }
                        }
                    } else if nulls_group {
                        words[i * stride + n_cols] |= 1 << ci;
                        0
                    } else {
                        ok[i] = false;
                        0
                    };
                    words[i * stride + ci] = w;
                    hashes[i] = mix64(hashes[i] ^ w);
                }
            };
        }
        match &col.values {
            Values::Bool(v) => encode_pass!(|i: usize| Some(u64::from(v[i]))),
            Values::Int(v) => encode_pass!(|i: usize| Some(v[i] as u64)),
            Values::Real(v) => encode_pass!(|i: usize| Some(v[i].to_bits())),
            Values::Date(v) => encode_pass!(|i: usize| Some(i64::from(v[i]) as u64)),
            Values::Str(v) => {
                let collation = layout.collations[ci];
                encode_pass!(|i: usize| str_word(&v[i], collation, &mut mode));
            }
        }
    }

    // Fold the null-bitmap word so NULL-in-different-columns keys hash
    // apart.
    for i in 0..len {
        hashes[i] = mix64(hashes[i] ^ words[i * stride + n_cols]);
    }

    EncodedKeys { words, hashes, ok }
}

/// Grouping table over packed keys: dense group ids in first-seen order,
/// group-key words parked in an arena, `hash -> candidate group ids` map.
pub(crate) struct GroupTable {
    pub layout: KeyLayout,
    interner: HashMap<String, u32>,
    arena: Vec<u64>,
    map: PreHashedMap<Vec<u32>>,
    n_groups: u32,
}

impl GroupTable {
    pub fn new(layout: KeyLayout) -> Self {
        GroupTable {
            layout,
            interner: HashMap::new(),
            arena: Vec::new(),
            map: PreHashedMap::default(),
            n_groups: 0,
        }
    }

    pub fn n_groups(&self) -> usize {
        self.n_groups as usize
    }

    /// Encode one chunk's key columns (all rows, column-at-a-time).
    pub fn encode(&mut self, cols: &[&ColumnVec], len: usize) -> EncodedKeys {
        encode_keys(
            &self.layout,
            cols,
            len,
            true,
            InternMode::Grow(&mut self.interner),
        )
    }

    /// Map `row` to its dense group id, inserting a new group when the key
    /// is unseen. Returns `(group_id, newly_inserted)`.
    pub fn lookup_or_insert(&mut self, keys: &EncodedKeys, row: usize) -> (u32, bool) {
        let stride = self.layout.stride;
        let row_words = keys.row(row, stride);
        let hash = keys.hashes[row];
        let bucket = self.map.entry(hash).or_default();
        for &gid in bucket.iter() {
            let start = gid as usize * stride;
            if &self.arena[start..start + stride] == row_words {
                return (gid, false);
            }
        }
        let gid = self.n_groups;
        self.n_groups += 1;
        bucket.push(gid);
        self.arena.extend_from_slice(row_words);
        (gid, true)
    }
}

/// Packed-key join index over the build chunk: `hash -> build row ids`,
/// with the build keys parked row-major for collision disambiguation. The
/// interner is frozen after `build`, so concurrent probe branches share it
/// read-only behind the `Arc<JoinBuild>`.
pub(crate) struct PackedJoinIndex {
    layout: KeyLayout,
    interner: HashMap<String, u32>,
    words: Vec<u64>,
    map: PreHashedMap<Vec<u32>>,
}

impl PackedJoinIndex {
    /// Index every matchable build row (NULL keys never match).
    pub fn build(layout: KeyLayout, cols: &[&ColumnVec], len: usize) -> Self {
        let mut interner = HashMap::new();
        let keys = encode_keys(&layout, cols, len, false, InternMode::Grow(&mut interner));
        let mut map: PreHashedMap<Vec<u32>> = PreHashedMap::default();
        for i in 0..len {
            if keys.ok[i] {
                map.entry(keys.hashes[i]).or_default().push(i as u32);
            }
        }
        PackedJoinIndex {
            layout,
            interner,
            words: keys.words,
            map,
        }
    }

    /// Encode a probe chunk against the frozen interner.
    pub fn encode_probe(&self, cols: &[&ColumnVec], len: usize) -> EncodedKeys {
        encode_keys(
            &self.layout,
            cols,
            len,
            false,
            InternMode::Frozen(&self.interner),
        )
    }

    /// Build rows whose key equals probe `row` (empty when unmatchable).
    pub fn matches<'a>(
        &'a self,
        probe: &'a EncodedKeys,
        row: usize,
    ) -> impl Iterator<Item = u32> + 'a {
        let stride = self.layout.stride;
        let candidates = if probe.ok[row] {
            self.map
                .get(&probe.hashes[row])
                .map(Vec::as_slice)
                .unwrap_or(&[])
        } else {
            &[]
        };
        let row_words = probe.row(row, stride);
        candidates.iter().copied().filter(move |&b| {
            let start = b as usize * stride;
            &self.words[start..start + stride] == row_words
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::NullMask;

    fn str_col(vals: &[&str]) -> ColumnVec {
        ColumnVec::from_values(Values::Str(vals.iter().map(|s| s.to_string()).collect()))
    }

    #[test]
    fn inline_and_interned_strings_are_disjoint() {
        let w = inline_str_word("abc").unwrap();
        assert!(w & STR_INLINE != 0);
        assert!(inline_str_word("12345678").is_none());
        // Interned codes have the top bit clear.
        let mut map = HashMap::new();
        let code = str_word(
            "a very long string",
            Collation::Binary,
            &mut InternMode::Grow(&mut map),
        )
        .unwrap();
        assert_eq!(code & STR_INLINE, 0);
    }

    #[test]
    fn int_keys_do_not_collapse_beyond_f64_precision() {
        let a = (1i64 << 53) as u64;
        let b = ((1i64 << 53) + 1) as u64;
        assert_ne!(a, b, "packed Int words must stay exact");
    }

    #[test]
    fn group_table_assigns_first_seen_dense_ids() {
        let layout = KeyLayout::new(vec![DataType::Str], vec![Collation::CaseInsensitive]);
        let mut t = GroupTable::new(layout);
        let col = str_col(&["b", "A", "a", "b", "a longer string than seven", "A"]);
        let keys = t.encode(&[&col], 6);
        let ids: Vec<(u32, bool)> = (0..6).map(|i| t.lookup_or_insert(&keys, i)).collect();
        // CI collation merges "A" and "a"; first-seen order b=0, a=1, long=2.
        assert_eq!(
            ids,
            vec![
                (0, true),
                (1, true),
                (1, false),
                (0, false),
                (2, true),
                (1, false)
            ]
        );
        assert_eq!(t.n_groups(), 3);
    }

    #[test]
    fn null_keys_group_but_never_join() {
        let layout = KeyLayout::new(vec![DataType::Int], vec![Collation::Binary]);
        let col = ColumnVec::new(
            Values::Int(vec![7, 0, 7]),
            NullMask::from_valid_bits(vec![true, false, true]),
        );
        // GROUP BY: the NULL row forms its own group.
        let mut t = GroupTable::new(layout.clone());
        let keys = t.encode(&[&col], 3);
        assert!(keys.ok.iter().all(|&o| o));
        let g0 = t.lookup_or_insert(&keys, 0).0;
        let g1 = t.lookup_or_insert(&keys, 1).0;
        let g2 = t.lookup_or_insert(&keys, 2).0;
        assert_eq!(g0, g2);
        assert_ne!(g0, g1);
        // Join: the NULL row is unmatchable on both sides.
        let idx = PackedJoinIndex::build(layout, &[&col], 3);
        let probe = idx.encode_probe(&[&col], 3);
        assert!(!probe.ok[1]);
        assert_eq!(idx.matches(&probe, 0).count(), 2); // rows 0 and 2
        assert_eq!(idx.matches(&probe, 1).count(), 0);
    }

    #[test]
    fn probe_string_missing_from_build_interner_is_unmatchable() {
        let layout = KeyLayout::new(vec![DataType::Str], vec![Collation::Binary]);
        let build = str_col(&["a long build-side string"]);
        let idx = PackedJoinIndex::build(layout, &[&build], 1);
        let probe_col = str_col(&["a long probe-only string", "a long build-side string"]);
        let probe = idx.encode_probe(&[&probe_col], 2);
        assert!(!probe.ok[0]);
        assert!(probe.ok[1]);
        assert_eq!(idx.matches(&probe, 1).count(), 1);
    }

    #[test]
    fn fallback_reasons() {
        assert_eq!(fallback_reason(2, true), None);
        assert_eq!(
            fallback_reason(2, false),
            Some(tabviz_obs::reason::KERNEL_FALLBACK_DISABLED)
        );
        assert_eq!(
            fallback_reason(MAX_KEY_COLS + 1, true),
            Some(tabviz_obs::reason::KERNEL_FALLBACK_WIDE_KEY)
        );
    }
}
