//! Hash join.
//!
//! Sect. 4.2.2: "The TDE's execution engine processes the join by building a
//! hash table for the right-side input, and probing the left-side input for
//! matches." In parallel plans the build result is computed once and shared
//! ("a single hash table is built from the shared table and then shared for
//! every left-hand block to probe") — the sharing lives in
//! [`crate::physical::BuildSide`]; this module holds the hash table itself
//! and the probe operator.

use std::collections::HashMap;
use std::sync::Arc;
use tabviz_common::{Chunk, Collation, ColumnVec, DataType, Result, SchemaRef, TvError, Value};
use tabviz_tql::JoinType;

use super::key::{self, KeyLayout, PackedJoinIndex};
use super::PhysOp;
use crate::physical::BuildSide;

/// Normalize a join/group key value under a collation so hash equality
/// matches comparison equality (`Int(2)` vs `Real(2.0)` already hash alike).
pub fn normalize_key(v: Value, collation: Collation) -> Value {
    match v {
        Value::Str(s) if collation != Collation::Binary => Value::Str(collation.key(&s)),
        other => other,
    }
}

/// The materialized build side of a hash join: the build chunk plus an index
/// over its key columns. Exactly one index form is populated, decided by
/// `key::fallback_reason` at build time: the packed fixed-width form
/// ([`PackedJoinIndex`], hashes batched column-at-a-time) or the retained
/// `Vec<Value>`-keyed map.
pub struct JoinBuild {
    pub chunk: Chunk,
    pub index: HashMap<Vec<Value>, Vec<u32>>,
    pub key_collations: Vec<Collation>,
    pub(crate) packed: Option<PackedJoinIndex>,
}

impl JoinBuild {
    /// Build the hash table over `key_cols` of `chunk`.
    pub fn build(
        chunk: Chunk,
        key_cols: &[usize],
        schema: &SchemaRef,
        kernels: bool,
    ) -> Result<Self> {
        let key_collations: Vec<Collation> = key_cols
            .iter()
            .map(|&i| schema.field(i).collation)
            .collect();
        if key::fallback_reason(key_cols.len(), kernels).is_none() {
            let dtypes: Vec<DataType> = key_cols.iter().map(|&i| schema.field(i).dtype).collect();
            let layout = KeyLayout::new(dtypes, key_collations.clone());
            let cols: Vec<&ColumnVec> = key_cols.iter().map(|&i| chunk.column(i)).collect();
            let packed = PackedJoinIndex::build(layout, &cols, chunk.len());
            return Ok(JoinBuild {
                chunk,
                index: HashMap::new(),
                key_collations,
                packed: Some(packed),
            });
        }
        let mut index: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(chunk.len());
        for row in 0..chunk.len() {
            let mut key = Vec::with_capacity(key_cols.len());
            let mut has_null = false;
            for (k, &ci) in key_cols.iter().enumerate() {
                let v = chunk.column(ci).get(row);
                if v.is_null() {
                    has_null = true;
                    break;
                }
                key.push(normalize_key(v, key_collations[k]));
            }
            if has_null {
                continue; // SQL: NULL keys never match
            }
            index.entry(key).or_default().push(row as u32);
        }
        Ok(JoinBuild {
            chunk,
            index,
            key_collations,
            packed: None,
        })
    }
}

/// Probe operator: streams probe chunks against the shared build table.
pub struct HashJoinOp {
    probe: Box<dyn PhysOp>,
    build_side: Arc<BuildSide>,
    build: Option<Arc<JoinBuild>>,
    probe_key_idx: Vec<usize>,
    join_type: JoinType,
    schema: SchemaRef,
}

impl HashJoinOp {
    pub fn new(
        probe: Box<dyn PhysOp>,
        build_side: Arc<BuildSide>,
        probe_keys: Vec<String>,
        join_type: JoinType,
        schema: SchemaRef,
    ) -> Result<Self> {
        let probe_schema = probe.schema();
        let probe_key_idx = probe_keys
            .iter()
            .map(|k| probe_schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        // Same decision JoinBuild::build makes for the index form, attributed
        // once per probe operator.
        key::report_kernel_choice(
            "tde_hash_join",
            key::fallback_reason(build_side.key_cols.len(), build_side.kernels),
        );
        Ok(HashJoinOp {
            probe,
            build_side,
            build: None,
            probe_key_idx,
            join_type,
            schema,
        })
    }

    /// Gather the output chunk: probe columns by `probe_rows`, build columns
    /// by `build_rows` (`None` ⇒ NULL for left-join misses) — columns are
    /// built directly, no per-value round trip.
    fn assemble(
        &self,
        probe_chunk: &Chunk,
        build_chunk: &Chunk,
        probe_rows: &[usize],
        build_rows: &[Option<u32>],
    ) -> Result<Chunk> {
        let probe_part = probe_chunk.take(probe_rows);
        let mut cols = probe_part.columns().to_vec();
        for ci in 0..build_chunk.num_columns() {
            cols.push(build_chunk.column(ci).take_opt(build_rows));
        }
        debug_assert_eq!(cols.len(), self.schema.len());
        Chunk::new(Arc::clone(&self.schema), cols).map_err(|e| {
            TvError::Exec(format!(
                "join output assembly failed: {e} (rows {})",
                probe_rows.len()
            ))
        })
    }
}

impl PhysOp for HashJoinOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.build.is_none() {
            self.build = Some(self.build_side.get()?);
        }
        let build = self.build.as_ref().expect("just set").clone();
        loop {
            let Some(probe_chunk) = self.probe.next()? else {
                return Ok(None);
            };
            let mut probe_rows: Vec<usize> = Vec::new();
            let mut build_rows: Vec<Option<u32>> = Vec::new();
            if let Some(packed) = &build.packed {
                // Packed fast path: encode the whole probe chunk's keys
                // column-at-a-time, then walk hash matches per row.
                let cols: Vec<&ColumnVec> = self
                    .probe_key_idx
                    .iter()
                    .map(|&ci| probe_chunk.column(ci))
                    .collect();
                let keys = packed.encode_probe(&cols, probe_chunk.len());
                for row in 0..probe_chunk.len() {
                    let mut matched = false;
                    for br in packed.matches(&keys, row) {
                        matched = true;
                        probe_rows.push(row);
                        build_rows.push(Some(br));
                    }
                    if !matched && self.join_type == JoinType::Left {
                        probe_rows.push(row);
                        build_rows.push(None);
                    }
                }
            } else {
                for row in 0..probe_chunk.len() {
                    let mut key = Vec::with_capacity(self.probe_key_idx.len());
                    let mut has_null = false;
                    for (k, &ci) in self.probe_key_idx.iter().enumerate() {
                        let v = probe_chunk.column(ci).get(row);
                        if v.is_null() {
                            has_null = true;
                            break;
                        }
                        key.push(normalize_key(v, build.key_collations[k]));
                    }
                    let matches = if has_null {
                        None
                    } else {
                        build.index.get(&key)
                    };
                    match matches {
                        Some(rows) => {
                            for &br in rows {
                                probe_rows.push(row);
                                build_rows.push(Some(br));
                            }
                        }
                        None => {
                            if self.join_type == JoinType::Left {
                                probe_rows.push(row);
                                build_rows.push(None);
                            }
                        }
                    }
                }
            }
            if probe_rows.is_empty() {
                continue;
            }
            return Ok(Some(self.assemble(
                &probe_chunk,
                &build.chunk,
                &probe_rows,
                &build_rows,
            )?));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::make_op;
    use crate::physical::PhysPlan;
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_storage::Table;

    fn fact() -> Arc<Table> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = [
            ("AA", 1),
            ("WN", 2),
            ("AA", 3),
            ("XX", 4), // no dimension match
        ]
        .iter()
        .map(|&(c, d)| vec![Value::Str(c.into()), Value::Int(d)])
        .collect();
        Arc::new(Table::from_chunk("fact", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap())
    }

    fn dim() -> Arc<Table> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("code", DataType::Str),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = [("AA", "American"), ("WN", "Southwest")]
            .iter()
            .map(|&(c, n)| vec![Value::Str(c.into()), Value::Str(n.into())])
            .collect();
        Arc::new(Table::from_chunk("dim", &Chunk::from_rows(schema, &rows).unwrap(), &[]).unwrap())
    }

    fn join_plan(join_type: JoinType) -> PhysPlan {
        let d = dim();
        let build_plan = PhysPlan::Scan {
            table: Arc::clone(&d),
            ranges: vec![(0, d.row_count())],
            projection: None,
            via_rle_index: false,
            pushed: vec![],
        };
        let build_schema = build_plan.schema().unwrap();
        let f = fact();
        PhysPlan::HashJoin {
            probe: Box::new(PhysPlan::Scan {
                table: Arc::clone(&f),
                ranges: vec![(0, f.row_count())],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            build: Arc::new(BuildSide::new(build_plan, build_schema, vec![0])),
            probe_keys: vec!["carrier".into()],
            join_type,
        }
    }

    fn run(plan: &PhysPlan) -> Chunk {
        crate::physical::execute_to_chunk(plan).unwrap()
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let out = run(&join_plan(JoinType::Inner));
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.schema().names(),
            vec!["carrier", "delay", "code", "name"]
        );
        assert_eq!(out.row(0)[3], Value::Str("American".into()));
    }

    #[test]
    fn left_join_nulls_unmatched() {
        let out = run(&join_plan(JoinType::Left));
        assert_eq!(out.len(), 4);
        let xx = out
            .to_rows()
            .into_iter()
            .find(|r| r[0] == Value::Str("XX".into()))
            .unwrap();
        assert_eq!(xx[2], Value::Null);
        assert_eq!(xx[3], Value::Null);
    }

    #[test]
    fn null_keys_never_match() {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int)]).unwrap());
        let with_null = Chunk::from_rows(
            Arc::clone(&schema),
            &[vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap();
        let t = Arc::new(Table::from_chunk("n", &with_null, &[]).unwrap());
        let build_plan = PhysPlan::Scan {
            table: Arc::clone(&t),
            ranges: vec![(0, 2)],
            projection: None,
            via_rle_index: false,
            pushed: vec![],
        };
        let bs = build_plan.schema().unwrap();
        let plan = PhysPlan::HashJoin {
            probe: Box::new(PhysPlan::Scan {
                table: Arc::clone(&t),
                ranges: vec![(0, 2)],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            build: Arc::new(BuildSide::new(build_plan, bs, vec![0])),
            probe_keys: vec!["k".into()],
            join_type: JoinType::Inner,
        };
        let out = run(&plan);
        assert_eq!(out.len(), 1); // only Int(1) matches itself
    }

    #[test]
    fn build_side_runs_once() {
        let plan = join_plan(JoinType::Inner);
        // Two operators over the same plan share the BuildSide.
        let mut op1 = make_op(&plan).unwrap();
        let mut op2 = make_op(&plan).unwrap();
        while op1.next().unwrap().is_some() {}
        while op2.next().unwrap().is_some() {}
        if let PhysPlan::HashJoin { build, .. } = &plan {
            // The OnceLock is initialized exactly once.
            assert!(build.get().is_ok());
        }
    }

    #[test]
    fn collated_join_keys() {
        let ci_schema = Arc::new(
            Schema::new(vec![
                Field::new("k", DataType::Str).with_collation(Collation::CaseInsensitive)
            ])
            .unwrap(),
        );
        let upper = Chunk::from_rows(Arc::clone(&ci_schema), &[vec!["AA".into()]]).unwrap();
        let lower = Chunk::from_rows(Arc::clone(&ci_schema), &[vec!["aa".into()]]).unwrap();
        let tu = Arc::new(Table::from_chunk("u", &upper, &[]).unwrap());
        let tl = Arc::new(Table::from_chunk("l", &lower, &[]).unwrap());
        let build_plan = PhysPlan::Scan {
            table: Arc::clone(&tl),
            ranges: vec![(0, 1)],
            projection: None,
            via_rle_index: false,
            pushed: vec![],
        };
        let bs = build_plan.schema().unwrap();
        let plan = PhysPlan::HashJoin {
            probe: Box::new(PhysPlan::Scan {
                table: tu,
                ranges: vec![(0, 1)],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            build: Arc::new(BuildSide::new(build_plan, bs, vec![0])),
            probe_keys: vec!["k".into()],
            join_type: JoinType::Inner,
        };
        let out = run(&plan);
        assert_eq!(out.len(), 1, "case-insensitive keys should match");
    }
}
