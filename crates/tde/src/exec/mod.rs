//! Chunked Volcano execution operators.
//!
//! Sect. 4.1.3: "The TDE execution engine is based on the Volcano execution
//! framework ... Operators are of two types: streaming, and stop-and-go."
//! Here operators pull [`Chunk`]s instead of single rows; `Scan`, `Filter`,
//! `Project`, `StreamAgg` and the probe phase of `HashJoin` are streaming,
//! while `Sort`, `TopN` and `HashAgg` are stop-and-go.

pub mod agg;
pub mod exchange;
pub mod join;
pub(crate) mod key;
pub(crate) mod scan_filter;

use std::sync::Arc;
use tabviz_common::{Chunk, Result, SchemaRef, TvError};
use tabviz_storage::Table;
use tabviz_tql::expr::Expr;
use tabviz_tql::SortKey;

use crate::physical::PhysPlan;

/// Rows per chunk produced by scans.
pub const CHUNK_ROWS: usize = 64 * 1024;

/// A physical operator: pulls chunks until `None`.
pub trait PhysOp: Send {
    fn schema(&self) -> SchemaRef;
    fn next(&mut self) -> Result<Option<Chunk>>;
}

/// Instantiate the operator tree for a physical plan. Every operator is
/// wrapped in a [`TimedOp`] that records its accumulated busy time (self +
/// children, minus nothing — wall time inside `next()`) into the thread's
/// trace when it exhausts, so query profiles show per-operator timings.
pub fn make_op(plan: &PhysPlan) -> Result<Box<dyn PhysOp>> {
    Ok(Box::new(TimedOp::new(op_stage(plan), make_op_raw(plan)?)))
}

/// Static stage name for an operator (trace events need `&'static str`).
fn op_stage(plan: &PhysPlan) -> &'static str {
    match plan {
        PhysPlan::Scan { .. } => "tde_scan",
        PhysPlan::RunAgg { .. } => "tde_run_agg",
        PhysPlan::Filter { .. } => "tde_filter",
        PhysPlan::Project { .. } => "tde_project",
        PhysPlan::HashJoin { .. } => "tde_hash_join",
        PhysPlan::HashAgg { .. } => "tde_hash_agg",
        PhysPlan::StreamAgg { .. } => "tde_stream_agg",
        PhysPlan::Sort { .. } => "tde_sort",
        PhysPlan::TopN { .. } => "tde_topn",
        PhysPlan::Exchange { .. } => "tde_exchange",
    }
}

/// Wrapper measuring time spent inside an operator's `next()` calls and
/// counting rows produced; records one trace event when the operator is
/// exhausted (or dropped early).
struct TimedOp {
    stage: &'static str,
    inner: Box<dyn PhysOp>,
    busy: std::time::Duration,
    rows: u64,
    recorded: bool,
}

impl TimedOp {
    fn new(stage: &'static str, inner: Box<dyn PhysOp>) -> Self {
        TimedOp {
            stage,
            inner,
            busy: std::time::Duration::ZERO,
            rows: 0,
            recorded: false,
        }
    }

    fn flush(&mut self) {
        if !self.recorded {
            self.recorded = true;
            tabviz_obs::record(self.stage, None, Some(self.rows), self.busy);
        }
    }
}

impl PhysOp for TimedOp {
    fn schema(&self) -> SchemaRef {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        let t0 = std::time::Instant::now();
        let out = self.inner.next();
        self.busy += t0.elapsed();
        match &out {
            Ok(Some(chunk)) => self.rows += chunk.len() as u64,
            Ok(None) | Err(_) => self.flush(),
        }
        out
    }
}

impl Drop for TimedOp {
    fn drop(&mut self) {
        self.flush();
    }
}

fn make_op_raw(plan: &PhysPlan) -> Result<Box<dyn PhysOp>> {
    Ok(match plan {
        PhysPlan::Scan {
            table,
            ranges,
            projection,
            pushed,
            ..
        } => Box::new(ScanOp::with_pushdown(
            Arc::clone(table),
            ranges.clone(),
            projection.clone(),
            pushed,
        )?),
        PhysPlan::RunAgg {
            table,
            ranges,
            group_cols,
            aggs,
            ..
        } => {
            let schema = plan.schema()?;
            Box::new(agg::RunAggOp::new(
                Arc::clone(table),
                ranges.clone(),
                group_cols.clone(),
                aggs.clone(),
                schema,
            ))
        }
        PhysPlan::Filter { input, predicate } => Box::new(FilterOp {
            input: make_op(input)?,
            predicate: predicate.clone(),
        }),
        PhysPlan::Project { input, exprs } => {
            let schema = plan.schema()?;
            Box::new(ProjectOp {
                input: make_op(input)?,
                exprs: exprs.clone(),
                schema,
            })
        }
        PhysPlan::HashJoin {
            probe,
            build,
            probe_keys,
            join_type,
        } => {
            let schema = plan.schema()?;
            Box::new(join::HashJoinOp::new(
                make_op(probe)?,
                Arc::clone(build),
                probe_keys.clone(),
                *join_type,
                schema,
            )?)
        }
        PhysPlan::HashAgg {
            input,
            group_by,
            aggs,
            kernels,
            ..
        } => {
            let schema = plan.schema()?;
            // Filter fusion: a residual Filter directly under the aggregate
            // is absorbed as a selection vector — surviving rows feed the
            // grouping kernel without rematerializing a chunk.
            let (child, residual) = match (input.as_ref(), *kernels) {
                (
                    PhysPlan::Filter {
                        input: finput,
                        predicate,
                    },
                    true,
                ) => (make_op(finput)?, Some(predicate.clone())),
                _ => (make_op(input)?, None),
            };
            let mut op = agg::HashAggOp::new(child, group_by.clone(), aggs.clone(), schema)
                .with_kernels(*kernels);
            if let Some(pred) = residual {
                op = op.with_residual(pred);
            }
            Box::new(op)
        }
        PhysPlan::StreamAgg {
            input,
            group_by,
            aggs,
        } => {
            let schema = plan.schema()?;
            Box::new(agg::StreamAggOp::new(
                make_op(input)?,
                group_by.clone(),
                aggs.clone(),
                schema,
            ))
        }
        PhysPlan::Sort { input, keys } => Box::new(SortOp {
            input: Some(make_op(input)?),
            keys: keys.clone(),
            done: false,
        }),
        PhysPlan::TopN { input, keys, n } => Box::new(TopNOp {
            input: Some(make_op(input)?),
            keys: keys.clone(),
            n: *n,
            done: false,
        }),
        PhysPlan::Exchange { inputs, ordered } => Box::new(if *ordered {
            exchange::ExchangeOp::new_ordered(inputs)?
        } else {
            exchange::ExchangeOp::new(inputs)?
        }),
    })
}

/// Streaming scan over the assigned row ranges of a table. With pushed-down
/// predicates the scan walks zone-map blocks: blocks the zone test refutes
/// are skipped whole, surviving blocks are filtered on codes / runs /
/// decoded segments, and only the selected rows are materialized (one copy,
/// via `StoredColumn::decode_rows`).
pub struct ScanOp {
    table: Arc<Table>,
    ranges: Vec<(usize, usize)>,
    projection: Option<Vec<usize>>,
    schema: SchemaRef,
    preds: Option<scan_filter::ScanPredicates>,
    /// (range index, offset within range)
    cursor: (usize, usize),
    /// Per-scan pruning tallies, reported as one `scan_prune` event trio
    /// into the query's trace at exhaustion (the global `tv_tde_scan_*`
    /// counters aggregate across queries; these attribute to *this* one).
    /// Cells because `filtered_window` runs under a shared borrow.
    blocks_skipped: std::cell::Cell<u64>,
    blocks_total: std::cell::Cell<u64>,
    rows_prefiltered: std::cell::Cell<u64>,
    prune_reported: std::cell::Cell<bool>,
}

impl ScanOp {
    pub fn new(
        table: Arc<Table>,
        ranges: Vec<(usize, usize)>,
        projection: Option<Vec<usize>>,
    ) -> Self {
        let schema = match &projection {
            None => Arc::clone(table.schema()),
            Some(idx) => Arc::new(table.schema().project(idx)),
        };
        ScanOp {
            table,
            ranges,
            projection,
            schema,
            preds: None,
            cursor: (0, 0),
            blocks_skipped: std::cell::Cell::new(0),
            blocks_total: std::cell::Cell::new(0),
            rows_prefiltered: std::cell::Cell::new(0),
            prune_reported: std::cell::Cell::new(false),
        }
    }

    /// A scan that evaluates the given conjuncts before materialization.
    pub fn with_pushdown(
        table: Arc<Table>,
        ranges: Vec<(usize, usize)>,
        projection: Option<Vec<usize>>,
        pushed: &[Expr],
    ) -> Result<Self> {
        let preds = scan_filter::ScanPredicates::compile(&table, pushed)?;
        let mut op = ScanOp::new(table, ranges, projection);
        op.preds = preds;
        Ok(op)
    }

    /// Filter one chunk-sized window through the zone maps and pushed
    /// predicates; returns the chunk of surviving rows, or `None` when the
    /// whole window is refuted.
    fn filtered_window(
        &self,
        preds: &scan_filter::ScanPredicates,
        wstart: usize,
        wlen: usize,
    ) -> Result<Option<Chunk>> {
        let wend = wstart + wlen;
        let mut selected: Vec<usize> = Vec::new();
        let mut skipped = 0u64;
        let mut range_pruned = 0u64;
        let mut visited = 0u64;
        // Blocks outside the sorted-column interval (established once per
        // scan by binary search over the zone maps) are refuted without even
        // consulting their zone entries.
        let interval = preds.block_interval();
        let mut pos = wstart;
        while pos < wend {
            let block = pos / tabviz_storage::BLOCK_ROWS;
            let seg_end = ((block + 1) * tabviz_storage::BLOCK_ROWS).min(wend);
            visited += 1;
            let in_range = interval.is_none_or(|(lo, hi)| block >= lo && block < hi);
            if in_range && preds.zone_allows(&self.table, block) {
                let mask = preds.eval_segment(&self.table, pos, seg_end - pos)?;
                selected.extend(
                    mask.iter()
                        .enumerate()
                        .filter_map(|(i, &m)| m.then_some(pos + i)),
                );
            } else {
                skipped += 1;
                if !in_range {
                    range_pruned += 1;
                }
            }
            pos = seg_end;
        }
        let metrics = scan_filter::scan_metrics();
        metrics.blocks_skipped.add(skipped);
        metrics.sorted_range_pruned.add(range_pruned);
        metrics.rows_prefiltered.add((wlen - selected.len()) as u64);
        self.blocks_skipped.set(self.blocks_skipped.get() + skipped);
        self.blocks_total.set(self.blocks_total.get() + visited);
        self.rows_prefiltered
            .set(self.rows_prefiltered.get() + (wlen - selected.len()) as u64);
        if selected.is_empty() {
            return Ok(None);
        }
        if selected.len() == wlen {
            // Everything passed: plain range materialization, no gather.
            return Ok(Some(self.table.scan_range(
                wstart,
                wlen,
                self.projection.as_deref(),
            )?));
        }
        let proj: Vec<usize> = match &self.projection {
            Some(p) => p.clone(),
            None => (0..self.table.schema().len()).collect(),
        };
        let cols = proj
            .iter()
            .map(|&ci| self.table.column(ci).decode_rows(&selected))
            .collect::<Result<Vec<_>>>()?;
        Ok(Some(Chunk::new(Arc::clone(&self.schema), cols)?))
    }

    /// Attribute this scan's pruning to the current query: one
    /// [`tabviz_obs::stage::SCAN_PRUNE`] event per counter, emitted once at
    /// exhaustion so a trace shows how much work zone maps and pushed
    /// predicates saved.
    fn report_prune(&self) {
        if self.preds.is_none() || self.prune_reported.replace(true) {
            return;
        }
        for (label, n) in [
            ("blocks_skipped", self.blocks_skipped.get()),
            ("blocks_total", self.blocks_total.get()),
            ("rows_prefiltered", self.rows_prefiltered.get()),
        ] {
            tabviz_obs::event_with(tabviz_obs::stage::SCAN_PRUNE, Some(label), Some(n), None);
        }
    }
}

impl Drop for ScanOp {
    fn drop(&mut self) {
        // Early-terminated scans (TopN, consumer gone) still report.
        self.report_prune();
    }
}

impl PhysOp for ScanOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        loop {
            let (ri, off) = self.cursor;
            let Some(&(start, len)) = self.ranges.get(ri) else {
                self.report_prune();
                return Ok(None);
            };
            if off >= len {
                self.cursor = (ri + 1, 0);
                continue;
            }
            let take = (len - off).min(CHUNK_ROWS);
            self.cursor = (ri, off + take);
            match &self.preds {
                None => {
                    return Ok(Some(self.table.scan_range(
                        start + off,
                        take,
                        self.projection.as_deref(),
                    )?));
                }
                Some(preds) => {
                    if let Some(chunk) = self.filtered_window(preds, start + off, take)? {
                        return Ok(Some(chunk));
                    }
                    // Whole window refuted: advance to the next one.
                }
            }
        }
    }
}

/// Streaming filter.
pub struct FilterOp {
    input: Box<dyn PhysOp>,
    predicate: Expr,
}

impl PhysOp for FilterOp {
    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        while let Some(chunk) = self.input.next()? {
            let sel = self.predicate.eval_predicate_sel(&chunk)?;
            if sel.is_empty() {
                continue;
            }
            // The all-rows selection moves the chunk through untouched; a
            // partial one gathers once off the id list.
            let filtered = chunk.take_sel(&sel);
            if !filtered.is_empty() {
                return Ok(Some(filtered));
            }
        }
        Ok(None)
    }
}

/// Streaming projection (vectorized expression evaluation).
pub struct ProjectOp {
    input: Box<dyn PhysOp>,
    exprs: Vec<(Expr, String)>,
    schema: SchemaRef,
}

impl PhysOp for ProjectOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        match self.input.next()? {
            None => Ok(None),
            Some(chunk) => {
                let cols = self
                    .exprs
                    .iter()
                    .map(|(e, _)| e.eval(&chunk))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Chunk::new(Arc::clone(&self.schema), cols)?))
            }
        }
    }
}

/// Resolve sort keys to `(column index, ascending)` pairs.
fn key_indices(schema: &SchemaRef, keys: &[SortKey]) -> Result<Vec<(usize, bool)>> {
    keys.iter()
        .map(|k| Ok((schema.index_of(&k.column)?, k.asc)))
        .collect()
}

/// Stop-and-go total sort.
pub struct SortOp {
    input: Option<Box<dyn PhysOp>>,
    keys: Vec<SortKey>,
    done: bool,
}

impl PhysOp for SortOp {
    fn schema(&self) -> SchemaRef {
        self.input.as_ref().expect("sort input taken").schema()
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut input = self
            .input
            .take()
            .ok_or_else(|| TvError::Exec("sort re-run".into()))?;
        let schema = input.schema();
        let mut chunks = Vec::new();
        while let Some(c) = input.next()? {
            chunks.push(c);
        }
        let all = Chunk::concat(Arc::clone(&schema), &chunks)?;
        let keys = key_indices(&schema, &self.keys)?;
        self.input = Some(input);
        if all.is_empty() {
            return Ok(None);
        }
        Ok(Some(all.sort_by(&keys)))
    }
}

/// Stop-and-go Top-N with periodic pruning so memory stays O(n).
pub struct TopNOp {
    input: Option<Box<dyn PhysOp>>,
    keys: Vec<SortKey>,
    n: usize,
    done: bool,
}

impl PhysOp for TopNOp {
    fn schema(&self) -> SchemaRef {
        self.input.as_ref().expect("topn input taken").schema()
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut input = self
            .input
            .take()
            .ok_or_else(|| TvError::Exec("topn re-run".into()))?;
        let schema = input.schema();
        let keys = key_indices(&schema, &self.keys)?;
        let mut buffer: Option<Chunk> = None;
        while let Some(c) = input.next()? {
            let merged = match buffer.take() {
                None => c,
                Some(b) => Chunk::concat(Arc::clone(&schema), &[b, c])?,
            };
            // Prune once the buffer grows well past n.
            buffer = Some(if merged.len() > self.n.saturating_mul(4).max(CHUNK_ROWS) {
                let sorted = merged.sort_by(&keys);
                sorted.slice(0, self.n.min(sorted.len()))
            } else {
                merged
            });
        }
        self.input = Some(input);
        match buffer {
            None => Ok(None),
            Some(b) => {
                let sorted = b.sort_by(&keys);
                Ok(Some(sorted.slice(0, self.n.min(sorted.len()))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_tql::expr::{bin, col, lit, BinOp};

    fn table(rows: usize) -> Arc<Table> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| vec![Value::Int(i as i64), Value::Int((i % 10) as i64)])
            .collect();
        Arc::new(Table::from_chunk("t", &Chunk::from_rows(schema, &data).unwrap(), &[]).unwrap())
    }

    #[test]
    fn scan_chunks_and_ranges() {
        let t = table(10);
        let mut op = ScanOp::new(Arc::clone(&t), vec![(0, 3), (7, 2)], None);
        let c1 = op.next().unwrap().unwrap();
        assert_eq!(c1.len(), 3);
        let c2 = op.next().unwrap().unwrap();
        assert_eq!(c2.len(), 2);
        assert_eq!(c2.row(0)[0], Value::Int(7));
        assert!(op.next().unwrap().is_none());
    }

    #[test]
    fn scan_projection() {
        let t = table(4);
        let mut op = ScanOp::new(t, vec![(0, 4)], Some(vec![1]));
        let c = op.next().unwrap().unwrap();
        assert_eq!(c.schema().names(), vec!["v"]);
    }

    #[test]
    fn filter_drops_rows() {
        let t = table(100);
        let mut op = FilterOp {
            input: Box::new(ScanOp::new(t, vec![(0, 100)], None)),
            predicate: bin(BinOp::Lt, col("k"), lit(5i64)),
        };
        let c = op.next().unwrap().unwrap();
        assert_eq!(c.len(), 5);
        assert!(op.next().unwrap().is_none());
    }

    #[test]
    fn project_computes() {
        let t = table(3);
        let plan = PhysPlan::Project {
            input: Box::new(PhysPlan::Scan {
                table: t,
                ranges: vec![(0, 3)],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            exprs: vec![(bin(BinOp::Mul, col("k"), lit(2i64)), "dbl".into())],
        };
        let mut op = make_op(&plan).unwrap();
        let c = op.next().unwrap().unwrap();
        assert_eq!(c.schema().names(), vec!["dbl"]);
        assert_eq!(c.row(2)[0], Value::Int(4));
    }

    #[test]
    fn sort_and_topn() {
        let t = table(50);
        let sort_plan = PhysPlan::Sort {
            input: Box::new(PhysPlan::Scan {
                table: Arc::clone(&t),
                ranges: vec![(0, 50)],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            keys: vec![SortKey::desc("k")],
        };
        let mut op = make_op(&sort_plan).unwrap();
        let c = op.next().unwrap().unwrap();
        assert_eq!(c.row(0)[0], Value::Int(49));
        assert!(op.next().unwrap().is_none());

        let topn_plan = PhysPlan::TopN {
            input: Box::new(PhysPlan::Scan {
                table: t,
                ranges: vec![(0, 50)],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            keys: vec![SortKey::desc("k")],
            n: 3,
        };
        let mut op = make_op(&topn_plan).unwrap();
        let c = op.next().unwrap().unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.row(0)[0], Value::Int(49));
        assert_eq!(c.row(2)[0], Value::Int(47));
    }

    #[test]
    fn empty_input_handling() {
        let t = table(0);
        let plan = PhysPlan::Sort {
            input: Box::new(PhysPlan::Scan {
                table: t,
                ranges: vec![],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            keys: vec![SortKey::asc("k")],
        };
        let mut op = make_op(&plan).unwrap();
        assert!(op.next().unwrap().is_none());
    }
}
