//! Compression-aware predicate evaluation inside the scan.
//!
//! Pushed-down conjuncts (see `optimize::push_scan_predicates`) are compiled
//! once per scan against the stored table and then evaluated *before* any
//! chunk is materialized, cheapest representation first:
//!
//! 1. **Zone maps** — a block whose min/max/null-count proves the predicate
//!    unsatisfiable is skipped without touching its data.
//! 2. **Predicate-on-codes** — for plain dictionary columns the (string)
//!    predicate is evaluated once per dictionary entry; the per-row loop
//!    compares `u32` codes against the resulting bitmap.
//! 3. **Run kernels** — for RLE columns the predicate runs once per run and
//!    the verdict is broadcast over the run's rows.
//! 4. Everything else decodes just the block segment and evaluates the
//!    vectorized predicate on it.
//!
//! Surviving row ids are gathered through `StoredColumn::decode_rows`, so a
//! selective scan performs a single copy into the output chunk.

use std::sync::{Arc, OnceLock};
use tabviz_common::{
    Chunk, Collation, ColumnVec, DataType, Field, Result, Schema, SchemaRef, TvError, Value,
};
use tabviz_obs::Counter;
use tabviz_storage::{BlockStats, ColumnData, PhysVec, StoredColumn, Table};
use tabviz_tql::expr::{BinOp, Expr, UnaryOp};

/// Counters exported on the global obs registry: whole blocks proven
/// unsatisfiable by zone maps, and rows removed before materialization
/// (including the rows of skipped blocks).
pub(crate) struct ScanMetrics {
    pub blocks_skipped: Counter,
    pub rows_prefiltered: Counter,
    /// Blocks refuted by the sorted-column binary search alone, i.e. without
    /// consulting their zone map entry.
    pub sorted_range_pruned: Counter,
}

pub(crate) fn scan_metrics() -> &'static ScanMetrics {
    static METRICS: OnceLock<ScanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = tabviz_obs::global();
        ScanMetrics {
            blocks_skipped: reg.counter("tv_tde_blocks_skipped_total"),
            rows_prefiltered: reg.counter("tv_tde_rows_prefiltered_total"),
            sorted_range_pruned: reg.counter("tv_tde_sorted_range_prunes_total"),
        }
    })
}

/// One pushed conjunct, compiled against the scanned table.
struct CompiledPred {
    expr: Expr,
    col: usize,
    /// Whether a NULL row satisfies the predicate (`IS NULL` does; ordinary
    /// comparisons reject NULL).
    pass_on_null: bool,
    /// For plain dictionary columns: the predicate's verdict per dictionary
    /// code, computed once at compile time.
    code_bitmap: Option<Vec<bool>>,
    /// Single-column schema used to evaluate `expr` over run values or
    /// decoded segments (nullable clone of the table field).
    eval_schema: SchemaRef,
}

/// All pushed conjuncts of one scan. Conjunct verdicts AND together, which
/// matches `eval_predicate`'s Kleene semantics for a conjunction: a row
/// passes iff every conjunct independently passes.
pub(crate) struct ScanPredicates {
    preds: Vec<CompiledPred>,
    /// Half-open block interval `[lo, hi)` outside which no row can satisfy
    /// the conjunction, established once at compile time by binary-searching
    /// the zone maps of *sorted* columns (see [`sorted_block_interval`]).
    /// `None` when no conjunct constrains a sorted column.
    block_interval: Option<(usize, usize)>,
}

impl ScanPredicates {
    /// Compile pushed conjuncts; `None` when there is nothing to push.
    pub fn compile(table: &Table, pushed: &[Expr]) -> Result<Option<Self>> {
        if pushed.is_empty() {
            return Ok(None);
        }
        let mut preds = Vec::with_capacity(pushed.len());
        for e in pushed {
            let cols = e.columns();
            if cols.len() != 1 {
                return Err(TvError::Exec(format!(
                    "pushed predicate must reference one column: {e}"
                )));
            }
            let name = cols.iter().next().unwrap();
            let col = table.schema().index_of(name)?;
            let field = table.schema().field(col);
            let eval_field =
                Field::new(field.name.clone(), field.dtype).with_collation(field.collation);
            let eval_schema: SchemaRef = Arc::new(Schema::new_unchecked(vec![eval_field]));

            let null_col = ColumnVec::from_iter_typed(field.dtype, [&Value::Null])?;
            let null_chunk = Chunk::new(Arc::clone(&eval_schema), vec![null_col])?;
            let pass_on_null = e.eval_predicate(&null_chunk)?[0];

            let stored = table.column(col);
            let code_bitmap = match (stored.data(), stored.dictionary()) {
                (ColumnData::Plain(PhysVec::Code(_)), Some(dict)) => {
                    let entries: Vec<Value> = dict.iter().map(|s| Value::Str(s.clone())).collect();
                    let cv = ColumnVec::from_iter_typed(DataType::Str, entries.iter())?;
                    let chunk = Chunk::new(Arc::clone(&eval_schema), vec![cv])?;
                    Some(e.eval_predicate(&chunk)?)
                }
                _ => None,
            };

            preds.push(CompiledPred {
                expr: e.clone(),
                col,
                pass_on_null,
                code_bitmap,
                eval_schema,
            });
        }
        let block_interval = sorted_block_interval(table, &preds);
        Ok(Some(ScanPredicates {
            preds,
            block_interval,
        }))
    }

    /// The precomputed sorted-column block interval, if any conjunct
    /// established one. Blocks outside `[lo, hi)` cannot contain a matching
    /// row and may be skipped without consulting their zone entries.
    pub fn block_interval(&self) -> Option<(usize, usize)> {
        self.block_interval
    }

    /// Can any row of zone-map block `block` satisfy every conjunct?
    pub fn zone_allows(&self, table: &Table, block: usize) -> bool {
        self.preds
            .iter()
            .all(|p| zone_allows_pred(p, table.column(p.col), block))
    }

    /// Evaluate all conjuncts over rows `[start, start + len)`, returning the
    /// combined pass mask. Callers segment by zone-map block, so RLE run
    /// enumeration and fallback decodes stay block-sized.
    pub fn eval_segment(&self, table: &Table, start: usize, len: usize) -> Result<Vec<bool>> {
        let mut mask = vec![true; len];
        for p in &self.preds {
            let col = table.column(p.col);
            match (&p.code_bitmap, col.data()) {
                // Predicate-on-codes: u32 compare against the bitmap.
                (Some(bitmap), ColumnData::Plain(PhysVec::Code(codes))) => {
                    let nulls = col.null_mask();
                    for (i, m) in mask.iter_mut().enumerate() {
                        if !*m {
                            continue;
                        }
                        let row = start + i;
                        *m = if nulls.is_valid(row) {
                            bitmap[codes[row] as usize]
                        } else {
                            p.pass_on_null
                        };
                    }
                }
                _ => match col.runs_overlapping(start, len) {
                    // Run kernel: one verdict per run, broadcast over it.
                    Some(runs) => {
                        let values: Vec<Value> = runs.iter().map(|r| r.value.clone()).collect();
                        let cv = ColumnVec::from_iter_typed(col.field.dtype, values.iter())?;
                        let chunk = Chunk::new(Arc::clone(&p.eval_schema), vec![cv])?;
                        let verdicts = p.expr.eval_predicate(&chunk)?;
                        for (run, pass) in runs.iter().zip(&verdicts) {
                            if !*pass {
                                let lo = run.start - start;
                                mask[lo..lo + run.count].fill(false);
                            }
                        }
                    }
                    // Fallback: decode the segment, vectorized evaluation.
                    None => {
                        let cv = col.decode_range(start, len)?;
                        let chunk = Chunk::new(Arc::clone(&p.eval_schema), vec![cv])?;
                        let passes = p.expr.eval_predicate(&chunk)?;
                        for (m, pass) in mask.iter_mut().zip(&passes) {
                            *m &= pass;
                        }
                    }
                },
            }
        }
        Ok(mask)
    }
}

/// Zone test for a single conjunct. Must never contradict `eval_predicate`:
/// `false` is returned only when *no* row of the block can pass.
fn zone_allows_pred(p: &CompiledPred, col: &StoredColumn, block: usize) -> bool {
    let Some(z) = col.zone_map().get(block) else {
        // No zone info (e.g. legacy data): never skip.
        return true;
    };
    if z.rows == 0 {
        return false;
    }
    let null_pass = z.null_count > 0 && p.pass_on_null;
    if z.all_null() {
        return null_pass;
    }
    // String min/max are stored in binary order; pruning under a different
    // query collation would be unsound.
    if col.field.dtype == DataType::Str && col.field.collation != Collation::Binary {
        return true;
    }
    let (Some(min), Some(max)) = (&z.min, &z.max) else {
        return true;
    };
    non_null_may_match(&p.expr, min, max, z, col.field.collation) || null_pass
}

/// Binary search over the zone maps of sorted columns: intersect, across all
/// conjuncts of shape `col cmp literal` / `col BETWEEN lo AND hi` on columns
/// whose [`tabviz_storage::ColumnStats::sorted`] flag holds, the half-open
/// block intervals that could contain a matching row. A sorted column's
/// per-block minima and maxima are non-decreasing (with an all-null prefix,
/// nulls sorting first), so each bound resolves to one `partition_point`
/// instead of a linear zone-map walk. Returns `None` when no conjunct
/// qualifies; the scan then falls back to per-block zone tests alone.
fn sorted_block_interval(table: &Table, preds: &[CompiledPred]) -> Option<(usize, usize)> {
    let mut interval: Option<(usize, usize)> = None;
    for p in preds {
        let col = table.column(p.col);
        if let Some((lo, hi)) = sorted_pred_interval(p, col) {
            interval = Some(match interval {
                Some((a, b)) => (a.max(lo), b.min(hi)),
                None => (lo, hi),
            });
        }
    }
    interval.map(|(lo, hi)| (lo, hi.max(lo)))
}

/// The half-open block interval that could satisfy one conjunct, or `None`
/// when the conjunct cannot be bounded this way. Soundness mirrors
/// [`zone_allows_pred`]: the interval must be a superset of every block
/// containing a matching row, so the guards are strictly conservative —
/// unsorted column, NULL-passing predicate, non-binary string collation,
/// missing or truncated zone map, or an unsupported expression shape all
/// decline rather than prune.
fn sorted_pred_interval(p: &CompiledPred, col: &StoredColumn) -> Option<(usize, usize)> {
    use std::cmp::Ordering::{Greater, Less};
    if p.pass_on_null || !col.stats.sorted {
        // NULL rows pass the conjunct and live in the all-null block prefix
        // of a nulls-first sort order; an interval would cut them off.
        return None;
    }
    // String zone endpoints are binary-ordered; other collations would make
    // the partition points unsound (same guard as `zone_allows_pred`).
    if col.field.dtype == DataType::Str && col.field.collation != Collation::Binary {
        return None;
    }
    let zones = col.zone_map();
    if zones.is_empty() || zones.len() < col.stats.row_count.div_ceil(tabviz_storage::BLOCK_ROWS) {
        // Legacy data without a full zone map: never prune.
        return None;
    }
    // A lower/upper bound on matching non-null values: `(value, strict)`.
    type Bound<'a> = Option<(&'a Value, bool)>;
    let (lower, upper): (Bound, Bound) = match &p.expr {
        Expr::Binary { op, left, right } => {
            let (op, lit) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column(_), Expr::Literal(v)) => (*op, v),
                (Expr::Literal(v), Expr::Column(_)) => (flip(*op), v),
                _ => return None,
            };
            if lit.is_null() {
                // `col cmp NULL` matches nothing: empty interval.
                return Some((0, 0));
            }
            match op {
                BinOp::Eq => (Some((lit, false)), Some((lit, false))),
                BinOp::Lt => (None, Some((lit, true))),
                BinOp::Le => (None, Some((lit, false))),
                BinOp::Gt => (Some((lit, true)), None),
                BinOp::Ge => (Some((lit, false)), None),
                _ => return None,
            }
        }
        Expr::Between { expr, low, high } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return None;
            }
            if high.is_null() {
                // `col <= NULL` holds for no non-null row (NULL sorts below
                // everything under `cmp_collated`): empty interval.
                return Some((0, 0));
            }
            let lower = (!low.is_null()).then_some((low, false));
            (lower, Some((high, false)))
        }
        _ => return None,
    };
    let coll = col.field.collation;
    // Blocks strictly *below* the lower bound form a prefix: the all-null
    // blocks (max = None, nulls first) plus those whose max falls short.
    let start = match lower {
        Some((v, strict)) => zones.partition_point(|z| match &z.max {
            None => true,
            Some(mx) => {
                let ord = mx.cmp_collated(v, coll);
                if strict {
                    ord != Greater
                } else {
                    ord == Less
                }
            }
        }),
        None => zones.partition_point(|z| z.max.is_none()),
    };
    // Blocks strictly *above* the upper bound form a suffix: those whose min
    // already exceeds it.
    let end = match upper {
        Some((v, strict)) => zones.partition_point(|z| match &z.min {
            None => true,
            Some(mn) => {
                let ord = mn.cmp_collated(v, coll);
                if strict {
                    ord == Less
                } else {
                    ord != Greater
                }
            }
        }),
        None => zones.len(),
    };
    Some((start, end.max(start)))
}

/// Could some non-null value in `[min, max]` satisfy the conjunct?
/// Mirrors `eval_predicate` exactly: comparisons and BETWEEN use
/// `cmp_collated` (where NULL sorts below everything), IN-list members that
/// are NULL never match, and comparisons against a NULL literal match
/// nothing. Unknown shapes conservatively return `true`.
fn non_null_may_match(e: &Expr, min: &Value, max: &Value, z: &BlockStats, coll: Collation) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    let le = |a: &Value, b: &Value| a.cmp_collated(b, coll) != Greater;
    let lt = |a: &Value, b: &Value| a.cmp_collated(b, coll) == Less;
    let eq = |a: &Value, b: &Value| a.cmp_collated(b, coll) == Equal;
    match e {
        Expr::Binary { op, left, right } => {
            let (op, lit, target) = match (left.as_ref(), right.as_ref()) {
                (t, Expr::Literal(v)) => (*op, v, t),
                (Expr::Literal(v), t) => (flip(*op), v, t),
                _ => return true,
            };
            if lit.is_null() {
                return false;
            }
            // For a bare column the value interval is the zone's [min, max];
            // for a monotone arithmetic composition over the column it is the
            // image of that interval under the expression.
            let (lo, hi) = match target {
                Expr::Column(_) => (min.clone(), max.clone()),
                _ => match arith_interval(target, min, max, coll) {
                    Some(bounds) => bounds,
                    None => return true,
                },
            };
            match op {
                BinOp::Eq => le(&lo, lit) && le(lit, &hi),
                // Sound for the arith case too: a monotone map over a
                // constant block is itself constant.
                BinOp::Ne => !(eq(&lo, &hi) && eq(&lo, lit)),
                BinOp::Lt => lt(&lo, lit),
                BinOp::Le => le(&lo, lit),
                BinOp::Gt => lt(lit, &hi),
                BinOp::Ge => le(lit, &hi),
                _ => true,
            }
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return true;
            }
            if *negated {
                // NOT IN excludes everything only when the block is constant
                // and that constant is in the list.
                !(eq(min, max) && list.iter().any(|v| !v.is_null() && eq(v, min)))
            } else {
                list.iter()
                    .any(|v| !v.is_null() && le(min, v) && le(v, max))
            }
        }
        Expr::Between { expr, low, high } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return true;
            }
            // cmp_collated against a NULL bound matches eval: NULL low is
            // below everything (vacuously satisfied), NULL high above nothing.
            le(low, max) && le(min, high)
        }
        Expr::Unary { op, expr } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return true;
            }
            match op {
                // Non-null rows never satisfy IS NULL (null_pass handles the
                // nulls); some non-null row exists, so IS NOT NULL can match.
                UnaryOp::IsNull => false,
                UnaryOp::IsNotNull => z.null_count < z.rows,
                _ => true,
            }
        }
        _ => true,
    }
}

/// Image of the block's `[min, max]` under a single-column monotone
/// arithmetic composition (e.g. `a + 1`, `(a - 2) * 3`, `a / 4`).
///
/// Soundness: each supported step (`± literal`, `* literal`, `col / nonzero
/// literal`, `literal ∓/× col`) is monotone in its column-derived operand,
/// so every composition prefix is monotone and every interior row's
/// intermediate value lies between the two endpoints' intermediates. The
/// endpoint evaluations use *checked* integer arithmetic and finite-only
/// float arithmetic: if both endpoints evaluate without overflow at every
/// step, so does every interior value, and the engine's wrapping ops agree
/// with exact arithmetic over the whole block. Any failure (overflow,
/// non-finite, unsupported shape, NULL) returns `None` — no pruning.
fn arith_interval(e: &Expr, min: &Value, max: &Value, coll: Collation) -> Option<(Value, Value)> {
    let a = arith_endpoint(e, min)?;
    let b = arith_endpoint(e, max)?;
    // Decreasing steps (negative multipliers, `lit - col`) may flip the
    // interval's orientation; a monotone map sends [min, max] into the
    // sorted endpoint pair either way.
    if a.cmp_collated(&b, coll) == std::cmp::Ordering::Greater {
        Some((b, a))
    } else {
        Some((a, b))
    }
}

/// Evaluate the composition at one endpoint value, mirroring
/// `eval_columns`' type promotion but with checked/finite arithmetic.
fn arith_endpoint(e: &Expr, v: &Value) -> Option<Value> {
    match e {
        Expr::Column(_) => match v {
            Value::Int(_) | Value::Real(_) => Some(v.clone()),
            _ => None,
        },
        Expr::Binary { op, left, right } if op.is_arithmetic() => {
            match (left.as_ref(), right.as_ref()) {
                (sub, Expr::Literal(lit)) => {
                    let a = arith_endpoint(sub, v)?;
                    arith_step(*op, &a, lit)
                }
                (Expr::Literal(lit), sub) => {
                    // `lit / col` is not monotone across zero; excluded.
                    if *op == BinOp::Div {
                        return None;
                    }
                    let a = arith_endpoint(sub, v)?;
                    arith_step(*op, lit, &a)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// One checked arithmetic step with the engine's promotion rule: the result
/// is Real when either operand is Real or the op is division; integer ops
/// must not overflow (the engine wraps — a checked success means wrapping
/// and exact arithmetic agree); float results must be finite.
fn arith_step(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    let as_real = |v: &Value| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Real(f) => Some(*f),
        _ => None,
    };
    if matches!(l, Value::Real(_)) || matches!(r, Value::Real(_)) || op == BinOp::Div {
        let (a, b) = (as_real(l)?, as_real(r)?);
        let out = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return None;
                }
                a / b
            }
            _ => return None,
        };
        out.is_finite().then_some(Value::Real(out))
    } else {
        let (Value::Int(a), Value::Int(b)) = (l, r) else {
            return None;
        };
        let out = match op {
            BinOp::Add => a.checked_add(*b)?,
            BinOp::Sub => a.checked_sub(*b)?,
            BinOp::Mul => a.checked_mul(*b)?,
            _ => return None,
        };
        Some(Value::Int(out))
    }
}

/// Optimizer-side shape test: `f(col) cmp literal` (either operand order)
/// where `f` is an arithmetic composition `arith_interval` can bound and the
/// column is numeric. Such a conjunct is safe to push: segments evaluate it
/// through the full engine evaluator, and zone maps prune via the interval.
/// Bare `col cmp literal` is `supported_run_predicate`'s job, not ours.
pub fn arith_comparison_sargable(e: &Expr, dtype: DataType) -> bool {
    if !matches!(dtype, DataType::Int | DataType::Real) {
        return false;
    }
    let Expr::Binary { op, left, right } = e else {
        return false;
    };
    if !op.is_comparison() {
        return false;
    }
    let target = match (left.as_ref(), right.as_ref()) {
        (t, Expr::Literal(_)) => t,
        (Expr::Literal(_), t) => t,
        _ => return false,
    };
    matches!(target, Expr::Binary { .. }) && monotone_arith_shape(target)
}

/// Is `e` a composition of monotone arithmetic steps over a single column?
fn monotone_arith_shape(e: &Expr) -> bool {
    let numeric = |v: &Value| matches!(v, Value::Int(_) | Value::Real(_));
    match e {
        Expr::Column(_) => true,
        Expr::Binary { op, left, right } if op.is_arithmetic() => {
            match (left.as_ref(), right.as_ref()) {
                (sub, Expr::Literal(lit)) => {
                    let zero_div = *op == BinOp::Div
                        && (matches!(lit, Value::Int(0))
                            || matches!(lit, Value::Real(f) if *f == 0.0));
                    numeric(lit) && !zero_div && monotone_arith_shape(sub)
                }
                (Expr::Literal(lit), sub) => {
                    *op != BinOp::Div && numeric(lit) && monotone_arith_shape(sub)
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Mirror a comparison so the column ends up on the left.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[cfg(test)]
mod arith_tests {
    use super::*;
    use tabviz_tql::expr::{bin, col, lit};

    fn iv(e: &Expr, min: i64, max: i64) -> Option<(Value, Value)> {
        arith_interval(e, &Value::Int(min), &Value::Int(max), Collation::Binary)
    }

    #[test]
    fn add_shifts_interval() {
        let e = bin(BinOp::Add, col("a"), lit(10i64));
        assert_eq!(iv(&e, 0, 5), Some((Value::Int(10), Value::Int(15))));
    }

    #[test]
    fn negative_multiplier_flips_orientation() {
        let e = bin(BinOp::Mul, col("a"), lit(-2i64));
        assert_eq!(iv(&e, 1, 4), Some((Value::Int(-8), Value::Int(-2))));
        // lit - col is decreasing too.
        let e = bin(BinOp::Sub, lit(100i64), col("a"));
        assert_eq!(iv(&e, 10, 30), Some((Value::Int(70), Value::Int(90))));
    }

    #[test]
    fn composition_applies_in_order() {
        // (a - 2) * 3 over [2, 5] → [0, 9]
        let e = bin(BinOp::Mul, bin(BinOp::Sub, col("a"), lit(2i64)), lit(3i64));
        assert_eq!(iv(&e, 2, 5), Some((Value::Int(0), Value::Int(9))));
    }

    #[test]
    fn division_promotes_to_real() {
        let e = bin(BinOp::Div, col("a"), lit(4i64));
        assert_eq!(iv(&e, 8, 16), Some((Value::Real(2.0), Value::Real(4.0))));
        // Negative divisor flips.
        let e = bin(BinOp::Div, col("a"), lit(-4i64));
        assert_eq!(iv(&e, 8, 16), Some((Value::Real(-4.0), Value::Real(-2.0))));
    }

    #[test]
    fn overflow_near_i64_max_bails() {
        let e = bin(BinOp::Add, col("a"), lit(10i64));
        assert_eq!(iv(&e, 0, i64::MAX - 5), None);
        let e = bin(BinOp::Mul, col("a"), lit(3i64));
        assert_eq!(iv(&e, i64::MIN / 2, 0), None);
    }

    #[test]
    fn unsupported_shapes_bail() {
        // lit / col: not monotone across zero.
        assert_eq!(iv(&bin(BinOp::Div, lit(1i64), col("a")), 1, 2), None);
        // col + col references the column twice; strictly one literal side.
        assert_eq!(iv(&bin(BinOp::Add, col("a"), col("a")), 1, 2), None);
    }

    #[test]
    fn sargable_shape_gate() {
        let arith_gt = bin(BinOp::Gt, bin(BinOp::Add, col("a"), lit(1i64)), lit(10i64));
        assert!(arith_comparison_sargable(&arith_gt, DataType::Int));
        assert!(arith_comparison_sargable(&arith_gt, DataType::Real));
        // Str columns never: endpoint arithmetic is numeric-only.
        assert!(!arith_comparison_sargable(&arith_gt, DataType::Str));
        // Bare col cmp lit belongs to supported_run_predicate.
        let plain = bin(BinOp::Gt, col("a"), lit(10i64));
        assert!(!arith_comparison_sargable(&plain, DataType::Int));
        // Division by literal zero is all-NULL in the engine; don't claim it.
        let div0 = bin(BinOp::Gt, bin(BinOp::Div, col("a"), lit(0i64)), lit(10i64));
        assert!(!arith_comparison_sargable(&div0, DataType::Int));
    }

    // Two and a half blocks of rows: `a` ascending (delta-friendly, sorted),
    // `n` nulls-first then ascending (sorted with an all-null prefix), `u`
    // pseudo-random (unsorted).
    fn sorted_table() -> Table {
        let rows = tabviz_storage::BLOCK_ROWS * 2 + tabviz_storage::BLOCK_ROWS / 2;
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("n", DataType::Int),
                Field::new("u", DataType::Int),
            ])
            .unwrap(),
        );
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                let n = if i < tabviz_storage::BLOCK_ROWS + 7 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                };
                vec![
                    Value::Int(i as i64),
                    n,
                    Value::Int(((i as u64).wrapping_mul(2654435761) % 1000) as i64),
                ]
            })
            .collect();
        let chunk = Chunk::from_rows(schema, &data).unwrap();
        Table::from_chunk("t", &chunk, &[]).unwrap()
    }

    fn interval_for(table: &Table, pred: Expr) -> Option<(usize, usize)> {
        ScanPredicates::compile(table, &[pred])
            .unwrap()
            .unwrap()
            .block_interval()
    }

    #[test]
    fn sorted_interval_binary_searches_range_predicates() {
        let t = sorted_table();
        let b = tabviz_storage::BLOCK_ROWS as i64;
        // d > last-block boundary → only the final block.
        let p = bin(BinOp::Gt, col("a"), lit(2 * b + 5));
        assert_eq!(interval_for(&t, p), Some((2, 3)));
        // Flipped literal side normalizes.
        let p = bin(BinOp::Lt, lit(2 * b + 5), col("a"));
        assert_eq!(interval_for(&t, p), Some((2, 3)));
        // Upper bound keeps a prefix.
        let p = bin(BinOp::Lt, col("a"), lit(b));
        assert_eq!(interval_for(&t, p), Some((0, 1)));
        // Le includes the boundary row's block.
        let p = bin(BinOp::Le, col("a"), lit(b));
        assert_eq!(interval_for(&t, p), Some((0, 2)));
        // Eq pins the one block containing the value.
        let p = bin(BinOp::Eq, col("a"), lit(b + 1));
        assert_eq!(interval_for(&t, p), Some((1, 2)));
        // Between intersects both bounds.
        let p = Expr::Between {
            expr: Box::new(col("a")),
            low: Value::Int(b + 1),
            high: Value::Int(b + 2),
        };
        assert_eq!(interval_for(&t, p), Some((1, 2)));
        // Out-of-range value → empty interval.
        let p = bin(BinOp::Gt, col("a"), lit(100 * b));
        assert_eq!(interval_for(&t, p), Some((3, 3)));
        // NULL comparison literal matches nothing.
        let p = bin(BinOp::Gt, col("a"), Expr::Literal(Value::Null));
        assert_eq!(interval_for(&t, p), Some((0, 0)));
    }

    #[test]
    fn sorted_interval_conjuncts_intersect() {
        let t = sorted_table();
        let b = tabviz_storage::BLOCK_ROWS as i64;
        let lo = bin(BinOp::Ge, col("a"), lit(b + 1));
        let hi = bin(BinOp::Lt, col("a"), lit(2 * b - 1));
        let preds = ScanPredicates::compile(&t, &[lo, hi]).unwrap().unwrap();
        assert_eq!(preds.block_interval(), Some((1, 2)));
    }

    #[test]
    fn sorted_interval_skips_leading_all_null_blocks() {
        let t = sorted_table();
        // `n` is NULL through block 0 (and a bit of block 1); a non-null
        // comparison can never match the all-null prefix.
        let p = bin(BinOp::Ge, col("n"), lit(0i64));
        assert_eq!(interval_for(&t, p), Some((1, 3)));
    }

    #[test]
    fn sorted_interval_declines_unsound_cases() {
        let t = sorted_table();
        // Unsorted column: no interval.
        let p = bin(BinOp::Gt, col("u"), lit(500i64));
        assert_eq!(interval_for(&t, p), None);
        // NULL-passing predicate: nulls live in the prefix we would cut off.
        let p = Expr::Unary {
            op: UnaryOp::IsNull,
            expr: Box::new(col("n")),
        };
        assert_eq!(interval_for(&t, p), None);
        // Ne constrains nothing.
        let p = bin(BinOp::Ne, col("a"), lit(5i64));
        assert_eq!(interval_for(&t, p), None);
        // Arithmetic compositions fall back to per-block zone tests.
        let p = bin(BinOp::Gt, bin(BinOp::Add, col("a"), lit(1i64)), lit(100i64));
        assert_eq!(interval_for(&t, p), None);
    }

    #[test]
    fn zone_rules_use_mapped_interval() {
        // Block [0, 9]; predicate a + 10 > 25 can't match (image [10, 19]).
        let e = bin(BinOp::Gt, bin(BinOp::Add, col("a"), lit(10i64)), lit(25i64));
        let z = BlockStats {
            rows: 10,
            null_count: 0,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(9)),
        };
        assert!(!non_null_may_match(
            &e,
            &Value::Int(0),
            &Value::Int(9),
            &z,
            Collation::Binary
        ));
        // a + 10 > 15 can match (image straddles the bound).
        let e = bin(BinOp::Gt, bin(BinOp::Add, col("a"), lit(10i64)), lit(15i64));
        assert!(non_null_may_match(
            &e,
            &Value::Int(0),
            &Value::Int(9),
            &z,
            Collation::Binary
        ));
    }
}
