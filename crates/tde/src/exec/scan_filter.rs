//! Compression-aware predicate evaluation inside the scan.
//!
//! Pushed-down conjuncts (see `optimize::push_scan_predicates`) are compiled
//! once per scan against the stored table and then evaluated *before* any
//! chunk is materialized, cheapest representation first:
//!
//! 1. **Zone maps** — a block whose min/max/null-count proves the predicate
//!    unsatisfiable is skipped without touching its data.
//! 2. **Predicate-on-codes** — for plain dictionary columns the (string)
//!    predicate is evaluated once per dictionary entry; the per-row loop
//!    compares `u32` codes against the resulting bitmap.
//! 3. **Run kernels** — for RLE columns the predicate runs once per run and
//!    the verdict is broadcast over the run's rows.
//! 4. Everything else decodes just the block segment and evaluates the
//!    vectorized predicate on it.
//!
//! Surviving row ids are gathered through `StoredColumn::decode_rows`, so a
//! selective scan performs a single copy into the output chunk.

use std::sync::{Arc, OnceLock};
use tabviz_common::{
    Chunk, Collation, ColumnVec, DataType, Field, Result, Schema, SchemaRef, TvError, Value,
};
use tabviz_obs::Counter;
use tabviz_storage::{BlockStats, ColumnData, PhysVec, StoredColumn, Table};
use tabviz_tql::expr::{BinOp, Expr, UnaryOp};

/// Counters exported on the global obs registry: whole blocks proven
/// unsatisfiable by zone maps, and rows removed before materialization
/// (including the rows of skipped blocks).
pub(crate) struct ScanMetrics {
    pub blocks_skipped: Counter,
    pub rows_prefiltered: Counter,
}

pub(crate) fn scan_metrics() -> &'static ScanMetrics {
    static METRICS: OnceLock<ScanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = tabviz_obs::global();
        ScanMetrics {
            blocks_skipped: reg.counter("tv_tde_blocks_skipped_total"),
            rows_prefiltered: reg.counter("tv_tde_rows_prefiltered_total"),
        }
    })
}

/// One pushed conjunct, compiled against the scanned table.
struct CompiledPred {
    expr: Expr,
    col: usize,
    /// Whether a NULL row satisfies the predicate (`IS NULL` does; ordinary
    /// comparisons reject NULL).
    pass_on_null: bool,
    /// For plain dictionary columns: the predicate's verdict per dictionary
    /// code, computed once at compile time.
    code_bitmap: Option<Vec<bool>>,
    /// Single-column schema used to evaluate `expr` over run values or
    /// decoded segments (nullable clone of the table field).
    eval_schema: SchemaRef,
}

/// All pushed conjuncts of one scan. Conjunct verdicts AND together, which
/// matches `eval_predicate`'s Kleene semantics for a conjunction: a row
/// passes iff every conjunct independently passes.
pub(crate) struct ScanPredicates {
    preds: Vec<CompiledPred>,
}

impl ScanPredicates {
    /// Compile pushed conjuncts; `None` when there is nothing to push.
    pub fn compile(table: &Table, pushed: &[Expr]) -> Result<Option<Self>> {
        if pushed.is_empty() {
            return Ok(None);
        }
        let mut preds = Vec::with_capacity(pushed.len());
        for e in pushed {
            let cols = e.columns();
            if cols.len() != 1 {
                return Err(TvError::Exec(format!(
                    "pushed predicate must reference one column: {e}"
                )));
            }
            let name = cols.iter().next().unwrap();
            let col = table.schema().index_of(name)?;
            let field = table.schema().field(col);
            let eval_field =
                Field::new(field.name.clone(), field.dtype).with_collation(field.collation);
            let eval_schema: SchemaRef = Arc::new(Schema::new_unchecked(vec![eval_field]));

            let null_col = ColumnVec::from_iter_typed(field.dtype, [&Value::Null])?;
            let null_chunk = Chunk::new(Arc::clone(&eval_schema), vec![null_col])?;
            let pass_on_null = e.eval_predicate(&null_chunk)?[0];

            let stored = table.column(col);
            let code_bitmap = match (stored.data(), stored.dictionary()) {
                (ColumnData::Plain(PhysVec::Code(_)), Some(dict)) => {
                    let entries: Vec<Value> = dict.iter().map(|s| Value::Str(s.clone())).collect();
                    let cv = ColumnVec::from_iter_typed(DataType::Str, entries.iter())?;
                    let chunk = Chunk::new(Arc::clone(&eval_schema), vec![cv])?;
                    Some(e.eval_predicate(&chunk)?)
                }
                _ => None,
            };

            preds.push(CompiledPred {
                expr: e.clone(),
                col,
                pass_on_null,
                code_bitmap,
                eval_schema,
            });
        }
        Ok(Some(ScanPredicates { preds }))
    }

    /// Can any row of zone-map block `block` satisfy every conjunct?
    pub fn zone_allows(&self, table: &Table, block: usize) -> bool {
        self.preds
            .iter()
            .all(|p| zone_allows_pred(p, table.column(p.col), block))
    }

    /// Evaluate all conjuncts over rows `[start, start + len)`, returning the
    /// combined pass mask. Callers segment by zone-map block, so RLE run
    /// enumeration and fallback decodes stay block-sized.
    pub fn eval_segment(&self, table: &Table, start: usize, len: usize) -> Result<Vec<bool>> {
        let mut mask = vec![true; len];
        for p in &self.preds {
            let col = table.column(p.col);
            match (&p.code_bitmap, col.data()) {
                // Predicate-on-codes: u32 compare against the bitmap.
                (Some(bitmap), ColumnData::Plain(PhysVec::Code(codes))) => {
                    let nulls = col.null_mask();
                    for (i, m) in mask.iter_mut().enumerate() {
                        if !*m {
                            continue;
                        }
                        let row = start + i;
                        *m = if nulls.is_valid(row) {
                            bitmap[codes[row] as usize]
                        } else {
                            p.pass_on_null
                        };
                    }
                }
                _ => match col.runs_overlapping(start, len) {
                    // Run kernel: one verdict per run, broadcast over it.
                    Some(runs) => {
                        let values: Vec<Value> = runs.iter().map(|r| r.value.clone()).collect();
                        let cv = ColumnVec::from_iter_typed(col.field.dtype, values.iter())?;
                        let chunk = Chunk::new(Arc::clone(&p.eval_schema), vec![cv])?;
                        let verdicts = p.expr.eval_predicate(&chunk)?;
                        for (run, pass) in runs.iter().zip(&verdicts) {
                            if !*pass {
                                let lo = run.start - start;
                                mask[lo..lo + run.count].fill(false);
                            }
                        }
                    }
                    // Fallback: decode the segment, vectorized evaluation.
                    None => {
                        let cv = col.decode_range(start, len)?;
                        let chunk = Chunk::new(Arc::clone(&p.eval_schema), vec![cv])?;
                        let passes = p.expr.eval_predicate(&chunk)?;
                        for (m, pass) in mask.iter_mut().zip(&passes) {
                            *m &= pass;
                        }
                    }
                },
            }
        }
        Ok(mask)
    }
}

/// Zone test for a single conjunct. Must never contradict `eval_predicate`:
/// `false` is returned only when *no* row of the block can pass.
fn zone_allows_pred(p: &CompiledPred, col: &StoredColumn, block: usize) -> bool {
    let Some(z) = col.zone_map().get(block) else {
        // No zone info (e.g. legacy data): never skip.
        return true;
    };
    if z.rows == 0 {
        return false;
    }
    let null_pass = z.null_count > 0 && p.pass_on_null;
    if z.all_null() {
        return null_pass;
    }
    // String min/max are stored in binary order; pruning under a different
    // query collation would be unsound.
    if col.field.dtype == DataType::Str && col.field.collation != Collation::Binary {
        return true;
    }
    let (Some(min), Some(max)) = (&z.min, &z.max) else {
        return true;
    };
    non_null_may_match(&p.expr, min, max, z, col.field.collation) || null_pass
}

/// Could some non-null value in `[min, max]` satisfy the conjunct?
/// Mirrors `eval_predicate` exactly: comparisons and BETWEEN use
/// `cmp_collated` (where NULL sorts below everything), IN-list members that
/// are NULL never match, and comparisons against a NULL literal match
/// nothing. Unknown shapes conservatively return `true`.
fn non_null_may_match(e: &Expr, min: &Value, max: &Value, z: &BlockStats, coll: Collation) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    let le = |a: &Value, b: &Value| a.cmp_collated(b, coll) != Greater;
    let lt = |a: &Value, b: &Value| a.cmp_collated(b, coll) == Less;
    let eq = |a: &Value, b: &Value| a.cmp_collated(b, coll) == Equal;
    match e {
        Expr::Binary { op, left, right } => {
            let (op, lit) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column(_), Expr::Literal(v)) => (*op, v),
                (Expr::Literal(v), Expr::Column(_)) => (flip(*op), v),
                _ => return true,
            };
            if lit.is_null() {
                return false;
            }
            match op {
                BinOp::Eq => le(min, lit) && le(lit, max),
                BinOp::Ne => !(eq(min, max) && eq(min, lit)),
                BinOp::Lt => lt(min, lit),
                BinOp::Le => le(min, lit),
                BinOp::Gt => lt(lit, max),
                BinOp::Ge => le(lit, max),
                _ => true,
            }
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return true;
            }
            if *negated {
                // NOT IN excludes everything only when the block is constant
                // and that constant is in the list.
                !(eq(min, max) && list.iter().any(|v| !v.is_null() && eq(v, min)))
            } else {
                list.iter()
                    .any(|v| !v.is_null() && le(min, v) && le(v, max))
            }
        }
        Expr::Between { expr, low, high } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return true;
            }
            // cmp_collated against a NULL bound matches eval: NULL low is
            // below everything (vacuously satisfied), NULL high above nothing.
            le(low, max) && le(min, high)
        }
        Expr::Unary { op, expr } => {
            if !matches!(expr.as_ref(), Expr::Column(_)) {
                return true;
            }
            match op {
                // Non-null rows never satisfy IS NULL (null_pass handles the
                // nulls); some non-null row exists, so IS NOT NULL can match.
                UnaryOp::IsNull => false,
                UnaryOp::IsNotNull => z.null_count < z.rows,
                _ => true,
            }
        }
        _ => true,
    }
}

/// Mirror a comparison so the column ends up on the left.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}
