//! Aggregation operators.
//!
//! [`HashAggOp`] is the stop-and-go hash aggregate ("normal aggregate
//! (currently based on hashing only in the TDE)", Sect. 4.2.4).
//! [`StreamAggOp`] is the streaming variant applicable when "the data is
//! grouped according to the group by columns"; it emits groups as they
//! complete instead of materializing the whole hash table.

use std::collections::HashMap;
use std::sync::Arc;
use tabviz_common::{Chunk, Collation, ColumnVec, Result, SchemaRef, Value};
use tabviz_storage::Table;
use tabviz_tql::agg::AggState;
use tabviz_tql::expr::Expr;
use tabviz_tql::AggCall;

use super::join::normalize_key;
use super::PhysOp;

/// Evaluate group expressions and aggregate arguments for one chunk.
struct EvalSet {
    groups: Vec<ColumnVec>,
    args: Vec<Option<ColumnVec>>,
}

fn eval_set(chunk: &Chunk, group_by: &[(Expr, String)], aggs: &[AggCall]) -> Result<EvalSet> {
    let groups = group_by
        .iter()
        .map(|(e, _)| e.eval(chunk))
        .collect::<Result<Vec<_>>>()?;
    let args = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval(chunk)).transpose())
        .collect::<Result<Vec<_>>>()?;
    Ok(EvalSet { groups, args })
}

/// Group collations come from the output schema's group fields.
fn group_collations(schema: &SchemaRef, n_groups: usize) -> Vec<Collation> {
    (0..n_groups).map(|i| schema.field(i).collation).collect()
}

/// Assemble the output chunk from per-group representative values + states.
fn finish_groups(schema: &SchemaRef, groups: Vec<(Vec<Value>, Vec<AggState>)>) -> Result<Chunk> {
    let rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut reps, states)| {
            reps.extend(states.iter().map(AggState::finish));
            reps
        })
        .collect();
    Chunk::from_rows(Arc::clone(schema), &rows)
}

/// Stop-and-go hash aggregation.
pub struct HashAggOp {
    input: Box<dyn PhysOp>,
    group_by: Vec<(Expr, String)>,
    aggs: Vec<AggCall>,
    schema: SchemaRef,
    done: bool,
}

impl HashAggOp {
    pub fn new(
        input: Box<dyn PhysOp>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
        schema: SchemaRef,
    ) -> Self {
        HashAggOp {
            input,
            group_by,
            aggs,
            schema,
            done: false,
        }
    }
}

impl PhysOp for HashAggOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let collations = group_collations(&self.schema, self.group_by.len());
        // key → (representative raw values, states)
        let mut table: HashMap<Vec<Value>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        while let Some(chunk) = self.input.next()? {
            let ev = eval_set(&chunk, &self.group_by, &self.aggs)?;
            for row in 0..chunk.len() {
                let mut key = Vec::with_capacity(ev.groups.len());
                let mut reps = Vec::with_capacity(ev.groups.len());
                for (gi, g) in ev.groups.iter().enumerate() {
                    let raw = g.get(row);
                    key.push(normalize_key(raw.clone(), collations[gi]));
                    reps.push(raw);
                }
                let entry = table.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        reps,
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                for (ai, st) in entry.1.iter_mut().enumerate() {
                    match &ev.args[ai] {
                        None => st.update(None)?,
                        Some(col) => st.update(Some(&col.get(row)))?,
                    }
                }
            }
        }
        // Global (no GROUP BY) aggregates emit one row even on empty input.
        if table.is_empty() && self.group_by.is_empty() {
            let states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            return Ok(Some(finish_groups(&self.schema, vec![(vec![], states)])?));
        }
        if table.is_empty() {
            return Ok(None);
        }
        let groups: Vec<(Vec<Value>, Vec<AggState>)> = order
            .into_iter()
            .map(|k| table.remove(&k).expect("ordered key present"))
            .collect();
        Ok(Some(finish_groups(&self.schema, groups)?))
    }
}

/// Streaming aggregation over grouped input.
pub struct StreamAggOp {
    input: Box<dyn PhysOp>,
    group_by: Vec<(Expr, String)>,
    aggs: Vec<AggCall>,
    schema: SchemaRef,
    current: Option<(Vec<Value>, Vec<Value>, Vec<AggState>)>, // (key, reps, states)
    input_done: bool,
    emitted_empty_global: bool,
}

impl StreamAggOp {
    pub fn new(
        input: Box<dyn PhysOp>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
        schema: SchemaRef,
    ) -> Self {
        StreamAggOp {
            input,
            group_by,
            aggs,
            schema,
            current: None,
            input_done: false,
            emitted_empty_global: false,
        }
    }

    fn new_states(&self) -> Vec<AggState> {
        self.aggs.iter().map(|a| AggState::new(a.func)).collect()
    }
}

impl PhysOp for StreamAggOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.input_done {
            // Flush the trailing group.
            if let Some((_, reps, states)) = self.current.take() {
                return Ok(Some(finish_groups(&self.schema, vec![(reps, states)])?));
            }
            if self.group_by.is_empty() && !self.emitted_empty_global {
                self.emitted_empty_global = true;
                return Ok(Some(finish_groups(
                    &self.schema,
                    vec![(vec![], self.new_states())],
                )?));
            }
            return Ok(None);
        }
        let collations = group_collations(&self.schema, self.group_by.len());
        let mut finished: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        loop {
            let Some(chunk) = self.input.next()? else {
                self.input_done = true;
                break;
            };
            let ev = eval_set(&chunk, &self.group_by, &self.aggs)?;
            for row in 0..chunk.len() {
                let mut key = Vec::with_capacity(ev.groups.len());
                let mut reps = Vec::with_capacity(ev.groups.len());
                for (gi, g) in ev.groups.iter().enumerate() {
                    let raw = g.get(row);
                    key.push(normalize_key(raw.clone(), collations[gi]));
                    reps.push(raw);
                }
                let fresh: Vec<AggState> =
                    self.aggs.iter().map(|a| AggState::new(a.func)).collect();
                match &mut self.current {
                    Some((ck, _, states)) if *ck == key => {
                        for (ai, st) in states.iter_mut().enumerate() {
                            match &ev.args[ai] {
                                None => st.update(None)?,
                                Some(col) => st.update(Some(&col.get(row)))?,
                            }
                        }
                    }
                    slot => {
                        if let Some((_, reps_old, states_old)) = slot.take() {
                            finished.push((reps_old, states_old));
                        }
                        let mut states = fresh;
                        for (ai, st) in states.iter_mut().enumerate() {
                            match &ev.args[ai] {
                                None => st.update(None)?,
                                Some(col) => st.update(Some(&col.get(row)))?,
                            }
                        }
                        *slot = Some((key, reps, states));
                    }
                }
            }
            if !finished.is_empty() {
                return Ok(Some(finish_groups(
                    &self.schema,
                    std::mem::take(&mut finished),
                )?));
            }
        }
        if !finished.is_empty() {
            return Ok(Some(finish_groups(&self.schema, finished)?));
        }
        self.next()
    }
}

/// Run-granularity COUNT/SUM straight over a table's RLE runs — no row is
/// ever decoded. The group columns' runs identify the groups: with one
/// group column each run is a segment; with several the executor
/// merge-walks the intersected run boundaries, so every segment is a
/// maximal row range where all group columns are constant. Aggregate
/// arguments (also RLE, guaranteed by the planner) contribute
/// `value × run length` per overlapping run.
pub struct RunAggOp {
    table: Arc<Table>,
    ranges: Vec<(usize, usize)>,
    group_cols: Vec<usize>,
    aggs: Vec<AggCall>,
    schema: SchemaRef,
    done: bool,
}

impl RunAggOp {
    pub fn new(
        table: Arc<Table>,
        ranges: Vec<(usize, usize)>,
        group_cols: Vec<usize>,
        aggs: Vec<AggCall>,
        schema: SchemaRef,
    ) -> Self {
        RunAggOp {
            table,
            ranges,
            group_cols,
            aggs,
            schema,
            done: false,
        }
    }
}

/// Feed `n` identical rows of `v` into an accumulator in O(1).
/// Mirrors `AggState::update` exactly (COUNT/SUM/MIN/MAX only — the planner
/// guarantees no other function reaches a RunAgg). For MIN/MAX the run
/// length is irrelevant: `n` identical values have the same extremum as one.
fn update_run(st: &mut AggState, v: Option<&Value>, n: usize) -> Result<()> {
    let n = n as i64;
    match st {
        AggState::Count(c) => match v {
            None => *c += n,
            Some(val) if !val.is_null() => *c += n,
            _ => {}
        },
        AggState::Sum {
            int,
            real,
            is_real,
            seen,
        } => {
            if let Some(val) = v {
                match val {
                    Value::Null => {}
                    Value::Int(i) => {
                        *int += i * n;
                        *real += *i as f64 * n as f64;
                        *seen = true;
                    }
                    Value::Real(r) => {
                        *real += r * n as f64;
                        *is_real = true;
                        *seen = true;
                    }
                    other => {
                        return Err(tabviz_common::TvError::Type(format!("SUM over {other:?}")))
                    }
                }
            }
        }
        AggState::Min(m) => {
            if let Some(val) = v {
                if !val.is_null() && m.as_ref().is_none_or(|cur| val < cur) {
                    *m = Some(val.clone());
                }
            }
        }
        AggState::Max(m) => {
            if let Some(val) = v {
                if !val.is_null() && m.as_ref().is_none_or(|cur| val > cur) {
                    *m = Some(val.clone());
                }
            }
        }
        _ => {
            return Err(tabviz_common::TvError::Exec(
                "RunAgg supports only COUNT/SUM/MIN/MAX".into(),
            ))
        }
    }
    Ok(())
}

impl PhysOp for RunAggOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let non_rle =
            || tabviz_common::TvError::Exec("RunAgg planned over a non-RLE column".into());
        let arg_cols: Vec<Option<usize>> = self
            .aggs
            .iter()
            .map(|a| match &a.arg {
                None => Ok(None),
                Some(Expr::Column(c)) => self.table.schema().index_of(c).map(Some),
                Some(e) => Err(tabviz_common::TvError::Exec(format!(
                    "RunAgg argument must be a column: {e}"
                ))),
            })
            .collect::<Result<_>>()?;
        let collations: Vec<_> = (0..self.group_cols.len())
            .map(|i| self.schema.field(i).collation)
            .collect();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        for &(start, len) in &self.ranges {
            // Window-clipped runs for every group column; the walk below
            // segments the range at the union of their boundaries, so each
            // segment has one constant value per group column.
            let col_runs: Vec<Vec<_>> = self
                .group_cols
                .iter()
                .map(|&ci| {
                    self.table
                        .column(ci)
                        .runs_overlapping(start, len)
                        .ok_or_else(non_rle)
                })
                .collect::<Result<_>>()?;
            let mut cursors = vec![0usize; col_runs.len()];
            let end = (start + len).min(self.table.row_count());
            let mut pos = start;
            while pos < end {
                let mut seg_end = end;
                let mut raw = Vec::with_capacity(col_runs.len());
                for (c, runs) in col_runs.iter().enumerate() {
                    while runs
                        .get(cursors[c])
                        .is_some_and(|r| r.start + r.count <= pos)
                    {
                        cursors[c] += 1;
                    }
                    let run = runs.get(cursors[c]).ok_or_else(non_rle)?;
                    raw.push(run.value.clone());
                    seg_end = seg_end.min(run.start + run.count);
                }
                let seg_len = seg_end - pos;
                let key: Vec<Value> = raw
                    .iter()
                    .zip(&collations)
                    .map(|(v, &coll)| normalize_key(v.clone(), coll))
                    .collect();
                let gi = *index.entry(key).or_insert_with(|| {
                    groups.push((
                        raw.clone(),
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    ));
                    groups.len() - 1
                });
                for (ai, st) in groups[gi].1.iter_mut().enumerate() {
                    match arg_cols[ai] {
                        None => update_run(st, None, seg_len)?,
                        Some(ci) => {
                            let arg_runs = self
                                .table
                                .column(ci)
                                .runs_overlapping(pos, seg_len)
                                .ok_or_else(non_rle)?;
                            for ar in &arg_runs {
                                update_run(st, Some(&ar.value), ar.count)?;
                            }
                        }
                    }
                }
                pos = seg_end;
            }
        }
        if groups.is_empty() {
            return Ok(None);
        }
        Ok(Some(finish_groups(&self.schema, groups)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ScanOp;
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_storage::Table;
    use tabviz_tql::expr::col;
    use tabviz_tql::AggFunc;

    fn flights(sorted: bool) -> Arc<Table> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = [
            ("AA", 10),
            ("WN", 4),
            ("AA", 20),
            ("DL", 7),
            ("WN", 2),
            ("AA", 3),
        ]
        .iter()
        .map(|&(c, d)| vec![Value::Str(c.into()), Value::Int(d)])
        .collect();
        let chunk = Chunk::from_rows(schema, &rows).unwrap();
        let keys: &[&str] = if sorted { &["carrier"] } else { &[] };
        Arc::new(Table::from_chunk("f", &chunk, keys).unwrap())
    }

    fn agg_calls() -> Vec<AggCall> {
        vec![
            AggCall::new(AggFunc::Count, None, "n"),
            AggCall::new(AggFunc::Sum, Some(col("delay")), "total"),
            AggCall::new(AggFunc::Avg, Some(col("delay")), "avg"),
        ]
    }

    fn out_schema(t: &Arc<Table>) -> SchemaRef {
        crate::physical::agg_schema(
            t.schema(),
            &[(col("carrier"), "carrier".to_string())],
            &agg_calls(),
            crate::physical::AggMode::Single,
        )
        .unwrap()
    }

    fn collect(op: &mut dyn PhysOp) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        while let Some(c) = op.next().unwrap() {
            rows.extend(c.to_rows());
        }
        rows
    }

    #[test]
    fn hash_agg_groups() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let mut op = HashAggOp::new(
            Box::new(scan),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        let mut rows = collect(&mut op);
        rows.sort();
        assert_eq!(rows.len(), 3);
        let aa = rows
            .iter()
            .find(|r| r[0] == Value::Str("AA".into()))
            .unwrap();
        assert_eq!(aa[1], Value::Int(3));
        assert_eq!(aa[2], Value::Int(33));
        assert_eq!(aa[3], Value::Real(11.0));
    }

    #[test]
    fn stream_agg_matches_hash_on_sorted_input() {
        let t = flights(true); // table sorted by carrier
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let mut sop = StreamAggOp::new(
            Box::new(scan),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        let mut srows = collect(&mut sop);

        let scan2 = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let mut hop = HashAggOp::new(
            Box::new(scan2),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        let mut hrows = collect(&mut hop);
        srows.sort();
        hrows.sort();
        assert_eq!(srows, hrows);
    }

    #[test]
    fn global_aggregate_no_groups() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let schema = crate::physical::agg_schema(
            t.schema(),
            &[],
            &agg_calls(),
            crate::physical::AggMode::Single,
        )
        .unwrap();
        let mut op = HashAggOp::new(Box::new(scan), vec![], agg_calls(), schema);
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(6));
        assert_eq!(rows[0][1], Value::Int(46));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![], None); // no ranges
        let schema = crate::physical::agg_schema(
            t.schema(),
            &[],
            &agg_calls(),
            crate::physical::AggMode::Single,
        )
        .unwrap();
        let mut op = HashAggOp::new(Box::new(scan), vec![], agg_calls(), schema.clone());
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0)); // COUNT
        assert_eq!(rows[0][1], Value::Null); // SUM
                                             // Streaming variant agrees.
        let scan2 = ScanOp::new(Arc::clone(&t), vec![], None);
        let mut sop = StreamAggOp::new(Box::new(scan2), vec![], agg_calls(), schema);
        let srows = collect(&mut sop);
        assert_eq!(srows, rows);
    }

    #[test]
    fn grouped_aggregate_on_empty_input_is_empty() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![], None);
        let mut op = HashAggOp::new(
            Box::new(scan),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        assert!(collect(&mut op).is_empty());
    }

    #[test]
    fn ci_collation_merges_groups() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("c", DataType::Str).with_collation(Collation::CaseInsensitive)
            ])
            .unwrap(),
        );
        let chunk = Chunk::from_rows(
            Arc::clone(&schema),
            &[vec!["AA".into()], vec!["aa".into()], vec!["DL".into()]],
        )
        .unwrap();
        let t = Arc::new(Table::from_chunk("c", &chunk, &[]).unwrap());
        let calls = vec![AggCall::new(AggFunc::Count, None, "n")];
        let out = crate::physical::agg_schema(
            t.schema(),
            &[(col("c"), "c".to_string())],
            &calls,
            crate::physical::AggMode::Single,
        )
        .unwrap();
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, 3)], None);
        let mut op = HashAggOp::new(Box::new(scan), vec![(col("c"), "c".into())], calls, out);
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 2, "AA and aa should merge under CI collation");
    }
}
