//! Aggregation operators.
//!
//! [`HashAggOp`] is the stop-and-go hash aggregate ("normal aggregate
//! (currently based on hashing only in the TDE)", Sect. 4.2.4).
//! [`StreamAggOp`] is the streaming variant applicable when "the data is
//! grouped according to the group by columns"; it emits groups as they
//! complete instead of materializing the whole hash table.

use std::collections::HashMap;
use std::sync::Arc;
use tabviz_common::{
    Chunk, Collation, ColumnVec, DataType, NullMask, Result, SchemaRef, SelVec, Value, Values,
};
use tabviz_storage::Table;
use tabviz_tql::agg::{AggFunc, AggState};
use tabviz_tql::expr::Expr;
use tabviz_tql::AggCall;

use super::join::normalize_key;
use super::key::{self, GroupTable, KeyLayout};
use super::PhysOp;

/// Evaluate group expressions and aggregate arguments for one chunk.
struct EvalSet {
    groups: Vec<ColumnVec>,
    args: Vec<Option<ColumnVec>>,
}

fn eval_set(chunk: &Chunk, group_by: &[(Expr, String)], aggs: &[AggCall]) -> Result<EvalSet> {
    let groups = group_by
        .iter()
        .map(|(e, _)| e.eval(chunk))
        .collect::<Result<Vec<_>>>()?;
    let args = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval(chunk)).transpose())
        .collect::<Result<Vec<_>>>()?;
    Ok(EvalSet { groups, args })
}

/// Group collations come from the output schema's group fields.
fn group_collations(schema: &SchemaRef, n_groups: usize) -> Vec<Collation> {
    (0..n_groups).map(|i| schema.field(i).collation).collect()
}

/// Assemble the output chunk from per-group representative values + states,
/// column-at-a-time: each output column is built directly (group
/// representatives first, then finished aggregates) — no intermediate
/// row-major `Vec<Vec<Value>>`.
fn finish_groups(schema: &SchemaRef, groups: Vec<(Vec<Value>, Vec<AggState>)>) -> Result<Chunk> {
    let n_group_cols = groups.first().map_or(0, |(reps, _)| reps.len());
    let mut cols = Vec::with_capacity(schema.len());
    for ci in 0..schema.len() {
        let dtype = schema.field(ci).dtype;
        let vals: Vec<Value> = if ci < n_group_cols {
            groups.iter().map(|(reps, _)| reps[ci].clone()).collect()
        } else {
            groups
                .iter()
                .map(|(_, states)| states[ci - n_group_cols].finish())
                .collect()
        };
        cols.push(ColumnVec::from_iter_typed(dtype, vals.iter())?);
    }
    Chunk::new(Arc::clone(schema), cols)
}

/// Typed columnar accumulator for one aggregate call across all groups.
///
/// The variant is chosen once at operator construction from the declared
/// argument type; `update_batch` then runs a tight loop over the typed
/// slice. If a chunk ever delivers a different `Values` variant than the
/// declared type promised (exotic expressions, untyped NULL literals), the
/// accumulated state migrates losslessly into the row-wise [`AggState`]
/// fallback (`Rows`) and processing continues — never an error the old
/// row path would not have raised.
enum AggStateCol {
    CountStar {
        counts: Vec<i64>,
    },
    CountCol {
        counts: Vec<i64>,
    },
    SumInt {
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    SumReal {
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    MinMaxInt {
        vals: Vec<i64>,
        seen: Vec<bool>,
        is_min: bool,
    },
    MinMaxReal {
        vals: Vec<f64>,
        seen: Vec<bool>,
        is_min: bool,
    },
    AvgNum {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    Rows {
        func: AggFunc,
        states: Vec<AggState>,
    },
}

impl AggStateCol {
    fn new(call: &AggCall, input_schema: &SchemaRef) -> Self {
        let arg_dtype = call
            .arg
            .as_ref()
            .and_then(|e| e.data_type(input_schema).ok());
        match (call.func, call.arg.is_some(), arg_dtype) {
            (AggFunc::Count, false, _) => AggStateCol::CountStar { counts: Vec::new() },
            (AggFunc::Count, true, _) => AggStateCol::CountCol { counts: Vec::new() },
            (AggFunc::Sum, _, Some(DataType::Int)) => AggStateCol::SumInt {
                sums: Vec::new(),
                seen: Vec::new(),
            },
            (AggFunc::Sum, _, Some(DataType::Real)) => AggStateCol::SumReal {
                sums: Vec::new(),
                seen: Vec::new(),
            },
            (AggFunc::Min, _, Some(DataType::Int)) | (AggFunc::Max, _, Some(DataType::Int)) => {
                AggStateCol::MinMaxInt {
                    vals: Vec::new(),
                    seen: Vec::new(),
                    is_min: call.func == AggFunc::Min,
                }
            }
            (AggFunc::Min, _, Some(DataType::Real)) | (AggFunc::Max, _, Some(DataType::Real)) => {
                AggStateCol::MinMaxReal {
                    vals: Vec::new(),
                    seen: Vec::new(),
                    is_min: call.func == AggFunc::Min,
                }
            }
            (AggFunc::Avg, _, Some(DataType::Int | DataType::Real)) => AggStateCol::AvgNum {
                sums: Vec::new(),
                counts: Vec::new(),
            },
            (func, _, _) => AggStateCol::Rows {
                func,
                states: Vec::new(),
            },
        }
    }

    /// Grow every per-group slot to `n` groups (identity elements).
    fn resize(&mut self, n: usize) {
        match self {
            AggStateCol::CountStar { counts } | AggStateCol::CountCol { counts } => {
                counts.resize(n, 0)
            }
            AggStateCol::SumInt { sums, seen } => {
                sums.resize(n, 0);
                seen.resize(n, false);
            }
            AggStateCol::SumReal { sums, seen } => {
                sums.resize(n, 0.0);
                seen.resize(n, false);
            }
            AggStateCol::MinMaxInt { vals, seen, .. } => {
                vals.resize(n, 0);
                seen.resize(n, false);
            }
            AggStateCol::MinMaxReal { vals, seen, .. } => {
                vals.resize(n, 0.0);
                seen.resize(n, false);
            }
            AggStateCol::AvgNum { sums, counts } => {
                sums.resize(n, 0.0);
                counts.resize(n, 0);
            }
            AggStateCol::Rows { func, states } => {
                let f = *func;
                states.resize_with(n, || AggState::new(f));
            }
        }
    }

    fn update_batch(&mut self, arg: Option<&ColumnVec>, sel: &SelVec, gids: &[u32]) -> Result<()> {
        if self.try_update_typed(arg, sel, gids)? {
            return Ok(());
        }
        // Declared type and delivered Values variant disagree: migrate the
        // accumulated state into the row-wise path and retry (always taken).
        self.migrate_to_rows();
        self.try_update_typed(arg, sel, gids)?;
        Ok(())
    }

    /// One chunk's worth of updates. `gids[k]` is the group of the k-th
    /// *selected* row (parallel to `sel.iter()`). Returns `false` when the
    /// typed variant does not match the delivered column.
    fn try_update_typed(
        &mut self,
        arg: Option<&ColumnVec>,
        sel: &SelVec,
        gids: &[u32],
    ) -> Result<bool> {
        match self {
            AggStateCol::CountStar { counts } => {
                for &g in gids {
                    counts[g as usize] += 1;
                }
            }
            AggStateCol::CountCol { counts } => {
                let col = arg.expect("COUNT(col) has an argument");
                match col.nulls.valid_bits() {
                    None => {
                        for &g in gids {
                            counts[g as usize] += 1;
                        }
                    }
                    Some(valid) => {
                        for (row, &g) in sel.iter().zip(gids) {
                            if valid[row] {
                                counts[g as usize] += 1;
                            }
                        }
                    }
                }
            }
            AggStateCol::SumInt { sums, seen } => {
                let col = arg.expect("SUM has an argument");
                let Some(xs) = col.values.as_int() else {
                    return Ok(false);
                };
                let valid = col.nulls.valid_bits();
                for (row, &g) in sel.iter().zip(gids) {
                    if valid.is_none_or(|v| v[row]) {
                        sums[g as usize] += xs[row];
                        seen[g as usize] = true;
                    }
                }
            }
            AggStateCol::SumReal { sums, seen } => {
                let col = arg.expect("SUM has an argument");
                let Some(xs) = col.values.as_real() else {
                    return Ok(false);
                };
                let valid = col.nulls.valid_bits();
                for (row, &g) in sel.iter().zip(gids) {
                    if valid.is_none_or(|v| v[row]) {
                        sums[g as usize] += xs[row];
                        seen[g as usize] = true;
                    }
                }
            }
            AggStateCol::MinMaxInt { vals, seen, is_min } => {
                let col = arg.expect("MIN/MAX has an argument");
                let Some(xs) = col.values.as_int() else {
                    return Ok(false);
                };
                let valid = col.nulls.valid_bits();
                let is_min = *is_min;
                for (row, &g) in sel.iter().zip(gids) {
                    if valid.is_none_or(|v| v[row]) {
                        let g = g as usize;
                        let x = xs[row];
                        if !seen[g] || (is_min && x < vals[g]) || (!is_min && x > vals[g]) {
                            vals[g] = x;
                            seen[g] = true;
                        }
                    }
                }
            }
            AggStateCol::MinMaxReal { vals, seen, is_min } => {
                let col = arg.expect("MIN/MAX has an argument");
                let Some(xs) = col.values.as_real() else {
                    return Ok(false);
                };
                let valid = col.nulls.valid_bits();
                let is_min = *is_min;
                for (row, &g) in sel.iter().zip(gids) {
                    if valid.is_none_or(|v| v[row]) {
                        let g = g as usize;
                        let x = xs[row];
                        let better = if is_min {
                            x.total_cmp(&vals[g]).is_lt()
                        } else {
                            x.total_cmp(&vals[g]).is_gt()
                        };
                        if !seen[g] || better {
                            vals[g] = x;
                            seen[g] = true;
                        }
                    }
                }
            }
            AggStateCol::AvgNum { sums, counts } => {
                let col = arg.expect("AVG has an argument");
                let valid = col.nulls.valid_bits();
                if let Some(xs) = col.values.as_int() {
                    for (row, &g) in sel.iter().zip(gids) {
                        if valid.is_none_or(|v| v[row]) {
                            sums[g as usize] += xs[row] as f64;
                            counts[g as usize] += 1;
                        }
                    }
                } else if let Some(xs) = col.values.as_real() {
                    for (row, &g) in sel.iter().zip(gids) {
                        if valid.is_none_or(|v| v[row]) {
                            sums[g as usize] += xs[row];
                            counts[g as usize] += 1;
                        }
                    }
                } else {
                    return Ok(false);
                }
            }
            AggStateCol::Rows { states, .. } => {
                for (row, &g) in sel.iter().zip(gids) {
                    match arg {
                        None => states[g as usize].update(None)?,
                        Some(col) => {
                            let v = col.get(row);
                            states[g as usize].update(Some(&v))?;
                        }
                    }
                }
            }
        }
        Ok(true)
    }

    /// Convert accumulated typed state into equivalent [`AggState`]s.
    fn migrate_to_rows(&mut self) {
        let (func, states): (AggFunc, Vec<AggState>) = match self {
            AggStateCol::CountStar { counts } | AggStateCol::CountCol { counts } => (
                AggFunc::Count,
                counts.iter().map(|&c| AggState::Count(c)).collect(),
            ),
            AggStateCol::SumInt { sums, seen } => (
                AggFunc::Sum,
                sums.iter()
                    .zip(seen.iter())
                    .map(|(&s, &sn)| AggState::Sum {
                        int: s,
                        real: s as f64,
                        is_real: false,
                        seen: sn,
                    })
                    .collect(),
            ),
            AggStateCol::SumReal { sums, seen } => (
                AggFunc::Sum,
                sums.iter()
                    .zip(seen.iter())
                    .map(|(&s, &sn)| AggState::Sum {
                        int: 0,
                        real: s,
                        is_real: sn,
                        seen: sn,
                    })
                    .collect(),
            ),
            AggStateCol::MinMaxInt { vals, seen, is_min } => {
                let f = if *is_min { AggFunc::Min } else { AggFunc::Max };
                let mk = |v: Option<Value>| {
                    if *is_min {
                        AggState::Min(v)
                    } else {
                        AggState::Max(v)
                    }
                };
                (
                    f,
                    vals.iter()
                        .zip(seen.iter())
                        .map(|(&v, &sn)| mk(sn.then_some(Value::Int(v))))
                        .collect(),
                )
            }
            AggStateCol::MinMaxReal { vals, seen, is_min } => {
                let f = if *is_min { AggFunc::Min } else { AggFunc::Max };
                let mk = |v: Option<Value>| {
                    if *is_min {
                        AggState::Min(v)
                    } else {
                        AggState::Max(v)
                    }
                };
                (
                    f,
                    vals.iter()
                        .zip(seen.iter())
                        .map(|(&v, &sn)| mk(sn.then_some(Value::Real(v))))
                        .collect(),
                )
            }
            AggStateCol::AvgNum { sums, counts } => (
                AggFunc::Avg,
                sums.iter()
                    .zip(counts.iter())
                    .map(|(&s, &c)| AggState::Avg { sum: s, count: c })
                    .collect(),
            ),
            AggStateCol::Rows { .. } => return,
        };
        *self = AggStateCol::Rows { func, states };
    }

    /// Build the output column directly — no per-group `Value` round trip
    /// for the typed variants.
    fn finish_column(self, dtype: DataType) -> Result<ColumnVec> {
        Ok(match self {
            AggStateCol::CountStar { counts } | AggStateCol::CountCol { counts } => {
                ColumnVec::from_values(Values::Int(counts))
            }
            AggStateCol::SumInt { sums, seen } => {
                ColumnVec::new(Values::Int(sums), NullMask::from_valid_bits(seen))
            }
            AggStateCol::SumReal { sums, seen } => {
                ColumnVec::new(Values::Real(sums), NullMask::from_valid_bits(seen))
            }
            AggStateCol::MinMaxInt { vals, seen, .. } => {
                ColumnVec::new(Values::Int(vals), NullMask::from_valid_bits(seen))
            }
            AggStateCol::MinMaxReal { vals, seen, .. } => {
                ColumnVec::new(Values::Real(vals), NullMask::from_valid_bits(seen))
            }
            AggStateCol::AvgNum { sums, counts } => {
                let valid: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
                let avgs: Vec<f64> = sums
                    .iter()
                    .zip(counts.iter())
                    .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                    .collect();
                ColumnVec::new(Values::Real(avgs), NullMask::from_valid_bits(valid))
            }
            AggStateCol::Rows { states, .. } => {
                let vals: Vec<Value> = states.iter().map(AggState::finish).collect();
                ColumnVec::from_iter_typed(dtype, vals.iter())?
            }
        })
    }
}

/// Stop-and-go hash aggregation.
///
/// Two execution paths, chosen once per operator (see `key::fallback_reason`
/// and DESIGN.md §14): the packed-key fast path encodes group keys into
/// fixed-width words ([`GroupTable`]) and updates typed columnar accumulators
/// ([`AggStateCol`]); the retained fallback keys a hash map with
/// `Vec<Value>` rows. An optional fused residual predicate (absorbed from a
/// child `Filter` by `make_op_raw`) is evaluated to a [`SelVec`] so the
/// fast path never rematerializes filtered chunks.
pub struct HashAggOp {
    input: Box<dyn PhysOp>,
    group_by: Vec<(Expr, String)>,
    aggs: Vec<AggCall>,
    schema: SchemaRef,
    kernels: bool,
    residual: Option<Expr>,
    done: bool,
}

impl HashAggOp {
    pub fn new(
        input: Box<dyn PhysOp>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
        schema: SchemaRef,
    ) -> Self {
        HashAggOp {
            input,
            group_by,
            aggs,
            schema,
            kernels: true,
            residual: None,
            done: false,
        }
    }

    pub fn with_kernels(mut self, kernels: bool) -> Self {
        self.kernels = kernels;
        self
    }

    pub fn with_residual(mut self, predicate: Expr) -> Self {
        self.residual = Some(predicate);
        self
    }

    /// Packed-key fast path: fixed-width group keys, dense group ids,
    /// typed columnar accumulators, direct output-column assembly.
    fn drain_fast(&mut self) -> Result<Option<Chunk>> {
        let n_keys = self.group_by.len();
        let dtypes: Vec<DataType> = (0..n_keys).map(|i| self.schema.field(i).dtype).collect();
        let collations = group_collations(&self.schema, n_keys);
        let mut table = GroupTable::new(KeyLayout::new(dtypes, collations));
        // Group representative columns, grown in first-seen group order.
        let mut reps: Vec<ColumnVec> = (0..n_keys)
            .map(|i| ColumnVec::from_values(Values::with_capacity(self.schema.field(i).dtype, 0)))
            .collect();
        let input_schema = self.input.schema();
        let mut states: Vec<AggStateCol> = self
            .aggs
            .iter()
            .map(|a| AggStateCol::new(a, &input_schema))
            .collect();
        let mut gids: Vec<u32> = Vec::new();
        while let Some(chunk) = self.input.next()? {
            if chunk.is_empty() {
                continue;
            }
            let sel = match &self.residual {
                None => SelVec::all(chunk.len()),
                Some(p) => p.eval_predicate_sel(&chunk)?,
            };
            if sel.is_empty() {
                continue;
            }
            let ev = eval_set(&chunk, &self.group_by, &self.aggs)?;
            let gcols: Vec<&ColumnVec> = ev.groups.iter().collect();
            let keys = table.encode(&gcols, chunk.len());
            gids.clear();
            let mut fresh: Vec<usize> = Vec::new();
            for row in sel.iter() {
                let (gid, new) = table.lookup_or_insert(&keys, row);
                gids.push(gid);
                if new {
                    fresh.push(row);
                }
            }
            if !fresh.is_empty() {
                for (ci, rep) in reps.iter_mut().enumerate() {
                    append_coerced(
                        rep,
                        &ev.groups[ci].take(&fresh),
                        self.schema.field(ci).dtype,
                    )?;
                }
            }
            let n_groups = table.n_groups();
            for (st, arg) in states.iter_mut().zip(&ev.args) {
                st.resize(n_groups);
                st.update_batch(arg.as_ref(), &sel, &gids)?;
            }
        }
        if table.n_groups() == 0 {
            if !self.group_by.is_empty() {
                return Ok(None);
            }
            // Global aggregate on empty input still emits one row.
            for st in states.iter_mut() {
                st.resize(1);
            }
        }
        let mut cols = reps;
        for (ai, st) in states.into_iter().enumerate() {
            cols.push(st.finish_column(self.schema.field(n_keys + ai).dtype)?);
        }
        Ok(Some(Chunk::new(Arc::clone(&self.schema), cols)?))
    }

    /// Retained `Vec<Value>`-keyed path (disabled kernels, wide keys).
    fn drain_fallback(&mut self) -> Result<Option<Chunk>> {
        let collations = group_collations(&self.schema, self.group_by.len());
        // key → (representative raw values, states)
        let mut table: HashMap<Vec<Value>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        while let Some(chunk) = self.input.next()? {
            let chunk = match &self.residual {
                None => chunk,
                Some(p) => {
                    let sel = p.eval_predicate_sel(&chunk)?;
                    chunk.take_sel(&sel)
                }
            };
            if chunk.is_empty() {
                continue;
            }
            let ev = eval_set(&chunk, &self.group_by, &self.aggs)?;
            for row in 0..chunk.len() {
                let mut key = Vec::with_capacity(ev.groups.len());
                let mut reps = Vec::with_capacity(ev.groups.len());
                for (gi, g) in ev.groups.iter().enumerate() {
                    let raw = g.get(row);
                    key.push(normalize_key(raw.clone(), collations[gi]));
                    reps.push(raw);
                }
                let entry = table.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        reps,
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                for (ai, st) in entry.1.iter_mut().enumerate() {
                    match &ev.args[ai] {
                        None => st.update(None)?,
                        Some(col) => st.update(Some(&col.get(row)))?,
                    }
                }
            }
        }
        // Global (no GROUP BY) aggregates emit one row even on empty input.
        if table.is_empty() && self.group_by.is_empty() {
            let states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            return Ok(Some(finish_groups(&self.schema, vec![(vec![], states)])?));
        }
        if table.is_empty() {
            return Ok(None);
        }
        let groups: Vec<(Vec<Value>, Vec<AggState>)> = order
            .into_iter()
            .map(|k| table.remove(&k).expect("ordered key present"))
            .collect();
        Ok(Some(finish_groups(&self.schema, groups)?))
    }
}

/// Append `src` to `dst`, coercing through `Value`s only when the evaluated
/// variant differs from the schema dtype (e.g. an Int-valued expression in a
/// Real-typed field).
fn append_coerced(dst: &mut ColumnVec, src: &ColumnVec, dtype: DataType) -> Result<()> {
    if src.values.data_type() == dtype {
        dst.append(src)
    } else {
        let vals: Vec<Value> = (0..src.len()).map(|i| src.get(i)).collect();
        dst.append(&ColumnVec::from_iter_typed(dtype, vals.iter())?)
    }
}

impl PhysOp for HashAggOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let fallback = key::fallback_reason(self.group_by.len(), self.kernels);
        key::report_kernel_choice("tde_hash_agg", fallback);
        match fallback {
            None => self.drain_fast(),
            Some(_) => self.drain_fallback(),
        }
    }
}

/// Streaming aggregation over grouped input.
pub struct StreamAggOp {
    input: Box<dyn PhysOp>,
    group_by: Vec<(Expr, String)>,
    aggs: Vec<AggCall>,
    schema: SchemaRef,
    current: Option<(Vec<Value>, Vec<Value>, Vec<AggState>)>, // (key, reps, states)
    input_done: bool,
    emitted_empty_global: bool,
}

impl StreamAggOp {
    pub fn new(
        input: Box<dyn PhysOp>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
        schema: SchemaRef,
    ) -> Self {
        StreamAggOp {
            input,
            group_by,
            aggs,
            schema,
            current: None,
            input_done: false,
            emitted_empty_global: false,
        }
    }

    fn new_states(&self) -> Vec<AggState> {
        self.aggs.iter().map(|a| AggState::new(a.func)).collect()
    }
}

impl PhysOp for StreamAggOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.input_done {
            // Flush the trailing group.
            if let Some((_, reps, states)) = self.current.take() {
                return Ok(Some(finish_groups(&self.schema, vec![(reps, states)])?));
            }
            if self.group_by.is_empty() && !self.emitted_empty_global {
                self.emitted_empty_global = true;
                return Ok(Some(finish_groups(
                    &self.schema,
                    vec![(vec![], self.new_states())],
                )?));
            }
            return Ok(None);
        }
        let collations = group_collations(&self.schema, self.group_by.len());
        let mut finished: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        loop {
            let Some(chunk) = self.input.next()? else {
                self.input_done = true;
                break;
            };
            let ev = eval_set(&chunk, &self.group_by, &self.aggs)?;
            for row in 0..chunk.len() {
                let mut key = Vec::with_capacity(ev.groups.len());
                let mut reps = Vec::with_capacity(ev.groups.len());
                for (gi, g) in ev.groups.iter().enumerate() {
                    let raw = g.get(row);
                    key.push(normalize_key(raw.clone(), collations[gi]));
                    reps.push(raw);
                }
                let fresh: Vec<AggState> =
                    self.aggs.iter().map(|a| AggState::new(a.func)).collect();
                match &mut self.current {
                    Some((ck, _, states)) if *ck == key => {
                        for (ai, st) in states.iter_mut().enumerate() {
                            match &ev.args[ai] {
                                None => st.update(None)?,
                                Some(col) => st.update(Some(&col.get(row)))?,
                            }
                        }
                    }
                    slot => {
                        if let Some((_, reps_old, states_old)) = slot.take() {
                            finished.push((reps_old, states_old));
                        }
                        let mut states = fresh;
                        for (ai, st) in states.iter_mut().enumerate() {
                            match &ev.args[ai] {
                                None => st.update(None)?,
                                Some(col) => st.update(Some(&col.get(row)))?,
                            }
                        }
                        *slot = Some((key, reps, states));
                    }
                }
            }
            if !finished.is_empty() {
                return Ok(Some(finish_groups(
                    &self.schema,
                    std::mem::take(&mut finished),
                )?));
            }
        }
        if !finished.is_empty() {
            return Ok(Some(finish_groups(&self.schema, finished)?));
        }
        self.next()
    }
}

/// Run-granularity COUNT/SUM straight over a table's RLE runs — no row is
/// ever decoded. The group columns' runs identify the groups: with one
/// group column each run is a segment; with several the executor
/// merge-walks the intersected run boundaries, so every segment is a
/// maximal row range where all group columns are constant. Aggregate
/// arguments (also RLE, guaranteed by the planner) contribute
/// `value × run length` per overlapping run.
pub struct RunAggOp {
    table: Arc<Table>,
    ranges: Vec<(usize, usize)>,
    group_cols: Vec<usize>,
    aggs: Vec<AggCall>,
    schema: SchemaRef,
    done: bool,
}

impl RunAggOp {
    pub fn new(
        table: Arc<Table>,
        ranges: Vec<(usize, usize)>,
        group_cols: Vec<usize>,
        aggs: Vec<AggCall>,
        schema: SchemaRef,
    ) -> Self {
        RunAggOp {
            table,
            ranges,
            group_cols,
            aggs,
            schema,
            done: false,
        }
    }
}

/// Feed `n` identical rows of `v` into an accumulator in O(1).
/// Mirrors `AggState::update` exactly (COUNT/SUM/MIN/MAX only — the planner
/// guarantees no other function reaches a RunAgg). For MIN/MAX the run
/// length is irrelevant: `n` identical values have the same extremum as one.
fn update_run(st: &mut AggState, v: Option<&Value>, n: usize) -> Result<()> {
    let n = n as i64;
    match st {
        AggState::Count(c) => match v {
            None => *c += n,
            Some(val) if !val.is_null() => *c += n,
            _ => {}
        },
        AggState::Sum {
            int,
            real,
            is_real,
            seen,
        } => {
            if let Some(val) = v {
                match val {
                    Value::Null => {}
                    Value::Int(i) => {
                        *int += i * n;
                        *real += *i as f64 * n as f64;
                        *seen = true;
                    }
                    Value::Real(r) => {
                        *real += r * n as f64;
                        *is_real = true;
                        *seen = true;
                    }
                    other => {
                        return Err(tabviz_common::TvError::Type(format!("SUM over {other:?}")))
                    }
                }
            }
        }
        AggState::Min(m) => {
            if let Some(val) = v {
                if !val.is_null() && m.as_ref().is_none_or(|cur| val < cur) {
                    *m = Some(val.clone());
                }
            }
        }
        AggState::Max(m) => {
            if let Some(val) = v {
                if !val.is_null() && m.as_ref().is_none_or(|cur| val > cur) {
                    *m = Some(val.clone());
                }
            }
        }
        _ => {
            return Err(tabviz_common::TvError::Exec(
                "RunAgg supports only COUNT/SUM/MIN/MAX".into(),
            ))
        }
    }
    Ok(())
}

impl PhysOp for RunAggOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let non_rle =
            || tabviz_common::TvError::Exec("RunAgg planned over a non-RLE column".into());
        let arg_cols: Vec<Option<usize>> = self
            .aggs
            .iter()
            .map(|a| match &a.arg {
                None => Ok(None),
                Some(Expr::Column(c)) => self.table.schema().index_of(c).map(Some),
                Some(e) => Err(tabviz_common::TvError::Exec(format!(
                    "RunAgg argument must be a column: {e}"
                ))),
            })
            .collect::<Result<_>>()?;
        let collations: Vec<_> = (0..self.group_cols.len())
            .map(|i| self.schema.field(i).collation)
            .collect();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        for &(start, len) in &self.ranges {
            // Window-clipped runs for every group column; the walk below
            // segments the range at the union of their boundaries, so each
            // segment has one constant value per group column.
            let col_runs: Vec<Vec<_>> = self
                .group_cols
                .iter()
                .map(|&ci| {
                    self.table
                        .column(ci)
                        .runs_overlapping(start, len)
                        .ok_or_else(non_rle)
                })
                .collect::<Result<_>>()?;
            let mut cursors = vec![0usize; col_runs.len()];
            let end = (start + len).min(self.table.row_count());
            let mut pos = start;
            while pos < end {
                let mut seg_end = end;
                let mut raw = Vec::with_capacity(col_runs.len());
                for (c, runs) in col_runs.iter().enumerate() {
                    while runs
                        .get(cursors[c])
                        .is_some_and(|r| r.start + r.count <= pos)
                    {
                        cursors[c] += 1;
                    }
                    let run = runs.get(cursors[c]).ok_or_else(non_rle)?;
                    raw.push(run.value.clone());
                    seg_end = seg_end.min(run.start + run.count);
                }
                let seg_len = seg_end - pos;
                let key: Vec<Value> = raw
                    .iter()
                    .zip(&collations)
                    .map(|(v, &coll)| normalize_key(v.clone(), coll))
                    .collect();
                let gi = *index.entry(key).or_insert_with(|| {
                    groups.push((
                        raw.clone(),
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    ));
                    groups.len() - 1
                });
                for (ai, st) in groups[gi].1.iter_mut().enumerate() {
                    match arg_cols[ai] {
                        None => update_run(st, None, seg_len)?,
                        Some(ci) => {
                            let arg_runs = self
                                .table
                                .column(ci)
                                .runs_overlapping(pos, seg_len)
                                .ok_or_else(non_rle)?;
                            for ar in &arg_runs {
                                update_run(st, Some(&ar.value), ar.count)?;
                            }
                        }
                    }
                }
                pos = seg_end;
            }
        }
        if groups.is_empty() {
            return Ok(None);
        }
        Ok(Some(finish_groups(&self.schema, groups)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ScanOp;
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_storage::Table;
    use tabviz_tql::expr::col;
    use tabviz_tql::AggFunc;

    fn flights(sorted: bool) -> Arc<Table> {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = [
            ("AA", 10),
            ("WN", 4),
            ("AA", 20),
            ("DL", 7),
            ("WN", 2),
            ("AA", 3),
        ]
        .iter()
        .map(|&(c, d)| vec![Value::Str(c.into()), Value::Int(d)])
        .collect();
        let chunk = Chunk::from_rows(schema, &rows).unwrap();
        let keys: &[&str] = if sorted { &["carrier"] } else { &[] };
        Arc::new(Table::from_chunk("f", &chunk, keys).unwrap())
    }

    fn agg_calls() -> Vec<AggCall> {
        vec![
            AggCall::new(AggFunc::Count, None, "n"),
            AggCall::new(AggFunc::Sum, Some(col("delay")), "total"),
            AggCall::new(AggFunc::Avg, Some(col("delay")), "avg"),
        ]
    }

    fn out_schema(t: &Arc<Table>) -> SchemaRef {
        crate::physical::agg_schema(
            t.schema(),
            &[(col("carrier"), "carrier".to_string())],
            &agg_calls(),
            crate::physical::AggMode::Single,
        )
        .unwrap()
    }

    fn collect(op: &mut dyn PhysOp) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        while let Some(c) = op.next().unwrap() {
            rows.extend(c.to_rows());
        }
        rows
    }

    #[test]
    fn hash_agg_groups() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let mut op = HashAggOp::new(
            Box::new(scan),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        let mut rows = collect(&mut op);
        rows.sort();
        assert_eq!(rows.len(), 3);
        let aa = rows
            .iter()
            .find(|r| r[0] == Value::Str("AA".into()))
            .unwrap();
        assert_eq!(aa[1], Value::Int(3));
        assert_eq!(aa[2], Value::Int(33));
        assert_eq!(aa[3], Value::Real(11.0));
    }

    #[test]
    fn stream_agg_matches_hash_on_sorted_input() {
        let t = flights(true); // table sorted by carrier
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let mut sop = StreamAggOp::new(
            Box::new(scan),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        let mut srows = collect(&mut sop);

        let scan2 = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let mut hop = HashAggOp::new(
            Box::new(scan2),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        let mut hrows = collect(&mut hop);
        srows.sort();
        hrows.sort();
        assert_eq!(srows, hrows);
    }

    #[test]
    fn global_aggregate_no_groups() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, t.row_count())], None);
        let schema = crate::physical::agg_schema(
            t.schema(),
            &[],
            &agg_calls(),
            crate::physical::AggMode::Single,
        )
        .unwrap();
        let mut op = HashAggOp::new(Box::new(scan), vec![], agg_calls(), schema);
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(6));
        assert_eq!(rows[0][1], Value::Int(46));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![], None); // no ranges
        let schema = crate::physical::agg_schema(
            t.schema(),
            &[],
            &agg_calls(),
            crate::physical::AggMode::Single,
        )
        .unwrap();
        let mut op = HashAggOp::new(Box::new(scan), vec![], agg_calls(), schema.clone());
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0)); // COUNT
        assert_eq!(rows[0][1], Value::Null); // SUM
                                             // Streaming variant agrees.
        let scan2 = ScanOp::new(Arc::clone(&t), vec![], None);
        let mut sop = StreamAggOp::new(Box::new(scan2), vec![], agg_calls(), schema);
        let srows = collect(&mut sop);
        assert_eq!(srows, rows);
    }

    #[test]
    fn grouped_aggregate_on_empty_input_is_empty() {
        let t = flights(false);
        let scan = ScanOp::new(Arc::clone(&t), vec![], None);
        let mut op = HashAggOp::new(
            Box::new(scan),
            vec![(col("carrier"), "carrier".into())],
            agg_calls(),
            out_schema(&t),
        );
        assert!(collect(&mut op).is_empty());
    }

    #[test]
    fn ci_collation_merges_groups() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("c", DataType::Str).with_collation(Collation::CaseInsensitive)
            ])
            .unwrap(),
        );
        let chunk = Chunk::from_rows(
            Arc::clone(&schema),
            &[vec!["AA".into()], vec!["aa".into()], vec!["DL".into()]],
        )
        .unwrap();
        let t = Arc::new(Table::from_chunk("c", &chunk, &[]).unwrap());
        let calls = vec![AggCall::new(AggFunc::Count, None, "n")];
        let out = crate::physical::agg_schema(
            t.schema(),
            &[(col("c"), "c".to_string())],
            &calls,
            crate::physical::AggMode::Single,
        )
        .unwrap();
        let scan = ScanOp::new(Arc::clone(&t), vec![(0, 3)], None);
        let mut op = HashAggOp::new(Box::new(scan), vec![(col("c"), "c".into())], calls, out);
        let rows = collect(&mut op);
        assert_eq!(rows.len(), 2, "AA and aa should merge under CI collation");
    }
}
