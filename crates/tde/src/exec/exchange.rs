//! The Exchange operator.
//!
//! Sect. 4.2.1: "the TDE execution engine uses the Exchange operator to
//! handle the parallel part of the query plan. ... In Tableau 9.0, we limited
//! the usage of the Exchange operator to only support N inputs and one
//! output" — no repartitioning, no order preservation. Each input pipeline
//! runs on its own thread; chunks funnel into one bounded channel.

use crossbeam::channel::{bounded, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use tabviz_common::{Chunk, Result, SchemaRef, TvError};

use super::{make_op, PhysOp};
use crate::physical::PhysPlan;

/// Per-input channel capacity: enough to keep producers busy without
/// unbounded buffering.
const CHANNEL_DEPTH: usize = 4;

/// N→1 exchange: merges the outputs of its input pipelines — in arrival
/// order by default, or in *branch* order when `ordered` is set ("it has a
/// capability to ... preserve the order of the input if needed",
/// Sect. 4.2.1; producers still run concurrently, the consumer just drains
/// their buffered channels input-by-input).
pub struct ExchangeOp {
    schema: SchemaRef,
    inputs: Vec<PhysPlan>,
    ordered: bool,
    state: Option<Running>,
    finished: bool,
}

struct Running {
    /// Unordered mode: one shared channel. Ordered mode: one per input.
    rxs: Vec<Receiver<Result<Chunk>>>,
    /// Cursor into `rxs` for ordered draining.
    current: usize,
    handles: Vec<JoinHandle<()>>,
}

impl ExchangeOp {
    pub fn new(inputs: &[PhysPlan]) -> Result<Self> {
        Self::with_order(inputs, false)
    }

    pub fn new_ordered(inputs: &[PhysPlan]) -> Result<Self> {
        Self::with_order(inputs, true)
    }

    fn with_order(inputs: &[PhysPlan], ordered: bool) -> Result<Self> {
        if inputs.is_empty() {
            return Err(TvError::Plan("Exchange with no inputs".into()));
        }
        let schema = inputs[0].schema()?;
        for i in &inputs[1..] {
            if i.schema()?.len() != schema.len() {
                return Err(TvError::Plan("Exchange inputs disagree on schema".into()));
            }
        }
        Ok(ExchangeOp {
            schema,
            inputs: inputs.to_vec(),
            ordered,
            state: None,
            finished: false,
        })
    }

    fn start(&mut self) -> Result<()> {
        let mut rxs = Vec::new();
        let mut handles = Vec::with_capacity(self.inputs.len());
        let shared = if self.ordered {
            None
        } else {
            Some(bounded::<Result<Chunk>>(CHANNEL_DEPTH * self.inputs.len()))
        };
        // The consumer's trace context rides into every producer thread so
        // worker-side events (scan timings, prune counters) assemble into
        // the same per-query trace tree instead of being lost with the
        // thread's ring buffer.
        let trace_ctx = tabviz_obs::TraceCtx::current();
        for plan in self.inputs.drain(..) {
            let tx = match &shared {
                Some((tx, _)) => tx.clone(),
                None => {
                    let (tx, rx) = bounded::<Result<Chunk>>(CHANNEL_DEPTH);
                    rxs.push(rx);
                    tx
                }
            };
            let ctx = trace_ctx.clone();
            let handle = std::thread::spawn(move || {
                let _trace = ctx.map(|c| c.install());
                // Operator construction happens on the worker thread so scan
                // decoding and join builds overlap across pipelines.
                let mut op = match make_op(&plan) {
                    Ok(op) => op,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                };
                loop {
                    match op.next() {
                        Ok(Some(chunk)) => {
                            if tx.send(Ok(chunk)).is_err() {
                                return; // consumer gone
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            });
            handles.push(handle);
        }
        if let Some((tx, rx)) = shared {
            drop(tx);
            rxs.push(rx);
        }
        self.state = Some(Running {
            rxs,
            current: 0,
            handles,
        });
        Ok(())
    }

    fn finish(&mut self) {
        self.finished = true;
        if let Some(state) = self.state.take() {
            drop(state.rxs);
            for h in state.handles {
                let _ = h.join();
            }
        }
    }
}

impl PhysOp for ExchangeOp {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> Result<Option<Chunk>> {
        if self.finished {
            return Ok(None);
        }
        if self.state.is_none() {
            self.start()?;
        }
        loop {
            let running = self.state.as_mut().expect("started above");
            let Some(rx) = running.rxs.get(running.current) else {
                self.finish();
                return Ok(None);
            };
            match rx.recv() {
                Ok(Ok(chunk)) => return Ok(Some(chunk)),
                Ok(Err(e)) => {
                    self.finish();
                    return Err(e);
                }
                Err(_) => {
                    // Channel closed: ordered mode moves to the next input;
                    // unordered mode (single channel) is done.
                    running.current += 1;
                    if running.current >= running.rxs.len() {
                        self.finish();
                        return Ok(None);
                    }
                }
            }
        }
    }
}

impl Drop for ExchangeOp {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            drop(state.rxs);
            for h in state.handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{DataType, Field, Schema, Value};
    use tabviz_storage::Table;

    fn table(rows: usize) -> Arc<Table> {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]).unwrap());
        let data: Vec<Vec<Value>> = (0..rows).map(|i| vec![Value::Int(i as i64)]).collect();
        Arc::new(Table::from_chunk("t", &Chunk::from_rows(schema, &data).unwrap(), &[]).unwrap())
    }

    #[test]
    fn merges_all_fractions() {
        let t = table(1000);
        let inputs: Vec<PhysPlan> = t
            .fractions(4)
            .into_iter()
            .map(|r| PhysPlan::Scan {
                table: Arc::clone(&t),
                ranges: vec![r],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            })
            .collect();
        let mut op = ExchangeOp::new(&inputs).unwrap();
        let mut total = 0usize;
        let mut sum = 0i64;
        while let Some(c) = op.next().unwrap() {
            total += c.len();
            for i in 0..c.len() {
                sum += c.row(i)[0].as_int().unwrap();
            }
        }
        assert_eq!(total, 1000);
        assert_eq!(sum, (0..1000).sum::<i64>());
    }

    #[test]
    fn ordered_exchange_preserves_branch_order() {
        let t = table(1000);
        let inputs: Vec<PhysPlan> = t
            .fractions(4)
            .into_iter()
            .map(|r| PhysPlan::Scan {
                table: Arc::clone(&t),
                ranges: vec![r],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            })
            .collect();
        let mut op = ExchangeOp::new_ordered(&inputs).unwrap();
        let mut seen = Vec::new();
        while let Some(c) = op.next().unwrap() {
            for i in 0..c.len() {
                seen.push(c.row(i)[0].as_int().unwrap());
            }
        }
        let expect: Vec<i64> = (0..1000).collect();
        assert_eq!(seen, expect, "ordered mode must reproduce the row order");
    }

    #[test]
    fn propagates_errors() {
        let t = table(10);
        // A filter with a type error triggers at runtime inside the thread.
        let bad = PhysPlan::Filter {
            input: Box::new(PhysPlan::Scan {
                table: Arc::clone(&t),
                ranges: vec![(0, 10)],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            }),
            predicate: tabviz_tql::expr::col("x"), // not a bool predicate
        };
        let mut op = ExchangeOp::new(&[bad]).unwrap();
        let mut saw_err = false;
        loop {
            match op.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    saw_err = true;
                    break;
                }
            }
        }
        assert!(saw_err);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(ExchangeOp::new(&[]).is_err());
    }

    #[test]
    fn early_drop_terminates_producers() {
        let t = table(100_000);
        let inputs: Vec<PhysPlan> = t
            .fractions(4)
            .into_iter()
            .map(|r| PhysPlan::Scan {
                table: Arc::clone(&t),
                ranges: vec![r],
                projection: None,
                via_rle_index: false,
                pushed: vec![],
            })
            .collect();
        let mut op = ExchangeOp::new(&inputs).unwrap();
        let _ = op.next().unwrap();
        drop(op); // must not deadlock
    }
}
