//! The TDE's catalog over its storage database.

use std::sync::Arc;
use tabviz_common::Result;
use tabviz_storage::Database;
use tabviz_tql::{Catalog, TableMeta};

/// Catalog implementation backed by a [`Database`].
///
/// Derives the metadata the optimizer feeds on: row counts (parallel-plan
/// degree decisions, Sect. 4.2.2), sort keys (range partitioning and
/// streaming aggregates, Sect. 4.2.3–4.2.4), and unique columns (join
/// culling, Sect. 4.1.2) — all from statistics computed at load time.
pub struct TdeCatalog {
    db: Arc<Database>,
}

impl TdeCatalog {
    pub fn new(db: Arc<Database>) -> Self {
        TdeCatalog { db }
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

impl Catalog for TdeCatalog {
    fn table_meta(&self, name: &str) -> Result<TableMeta> {
        let table = self.db.resolve(name)?;
        let schema = Arc::clone(table.schema());
        let sort_key = table
            .sort_key()
            .iter()
            .map(|&i| schema.field(i).name.clone())
            .collect();
        let unique_columns = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|&(i, _)| table.column(i).stats.is_unique() && table.row_count() > 0)
            .map(|(_, f)| f.name.clone())
            .collect();
        Ok(TableMeta {
            schema,
            row_count: table.row_count(),
            sort_key,
            unique_columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_common::{Chunk, DataType, Field, Schema, Value};
    use tabviz_storage::Table;

    #[test]
    fn derives_metadata_from_stats() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("code", DataType::Str),
                Field::new("pop", DataType::Int),
            ])
            .unwrap(),
        );
        let rows: Vec<Vec<Value>> = [("AA", 1), ("DL", 1), ("WN", 2)]
            .iter()
            .map(|&(c, p)| vec![Value::Str(c.into()), Value::Int(p)])
            .collect();
        let chunk = Chunk::from_rows(schema, &rows).unwrap();
        let db = Arc::new(Database::new("d"));
        db.put(Table::from_chunk("carriers", &chunk, &["code"]).unwrap())
            .unwrap();
        let cat = TdeCatalog::new(db);
        let meta = cat.table_meta("carriers").unwrap();
        assert_eq!(meta.row_count, 3);
        assert_eq!(meta.sort_key, vec!["code"]);
        assert!(meta.unique_columns.contains("code"));
        assert!(!meta.unique_columns.contains("pop"));
        assert!(cat.table_meta("missing").is_err());
    }
}
