//! Parallel plan generation.
//!
//! Sect. 4.2.2's bottom-up algorithm: "Leaf nodes are TableScan operators. At
//! the TableScan operator the optimizer ... makes a decision to partition the
//! table into N fractions ... If the parent is a flow operator such as Select
//! or Project, the parent inherits the degree of parallelism from the child.
//! If the parent is a stop-and-go operator, such as Aggregate, Order or TopN,
//! the optimizer inserts an Exchange operator between the child and the
//! parent. If the root has a degree of parallelism that is larger than one,
//! the optimizer inserts an Exchange operator to close the parallelism."
//!
//! On top of that skeleton this module implements:
//! * **join handling** (Sect. 4.2.2): the probe side joins the main
//!   parallelism; the build side forms "a separate and independent parallel
//!   unit" whose hash table is shared by every probe branch;
//! * **local/global aggregation** (Sect. 4.2.3): per-branch partial
//!   aggregates, Exchange, a global roll-up, and an AVG-recombining project;
//! * **range-partitioned aggregation** (Sect. 4.2.3, Lemmas 1–3): when a
//!   permutation of a subset of the GROUP BY columns prefixes the table's
//!   sort order, fractions cut at group boundaries make the global aggregate
//!   redundant — each branch aggregates its groups completely;
//! * **local/global TopN** ("the same approach can also be applied to the
//!   TopN operator");
//! * the Sect. 4.2.4 interaction: a serial streaming aggregate is traded for
//!   the parallel hash variant unless range partitioning preserves grouped
//!   input per branch.

use std::sync::Arc;
use tabviz_common::Result;
use tabviz_tql::expr::{bin, col, Expr};
use tabviz_tql::{AggCall, AggFunc, BinOp};

use crate::cost::CostProfile;
use crate::physical::{AggMode, BuildSide, PhysPlan};

/// Parallel-planner switches (each backs an ablation bench).
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    pub profile: CostProfile,
    pub enable_local_global: bool,
    pub enable_range_partition: bool,
    pub enable_local_topn: bool,
    /// Minimum distinct values (per degree of parallelism) in the leading
    /// partition column before range partitioning is trusted — the paper's
    /// "data skew and low cardinality" caveat.
    pub range_partition_min_distinct_per_dop: usize,
    /// The Sect. 4.2.4 alternative the paper evaluated and rejected: keep a
    /// *streaming* aggregate above an order-preserving Exchange instead of
    /// switching to hash local/global. Off by default (as shipped);
    /// exercised by the E9 ablation.
    pub prefer_ordered_exchange_streaming: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            profile: CostProfile::default(),
            enable_local_global: true,
            enable_range_partition: true,
            enable_local_topn: true,
            range_partition_min_distinct_per_dop: 2,
            prefer_ordered_exchange_streaming: false,
        }
    }
}

/// Result of parallelizing a subtree.
enum Par {
    Serial(PhysPlan),
    Parallel {
        branches: Vec<PhysPlan>,
        /// True when every group (w.r.t. the aggregate requirement pushed
        /// down) lives entirely within one branch (Lemma 2).
        groups_partitioned: bool,
        /// True when the branches are contiguous row-order fractions, so an
        /// *ordered* Exchange reproduces the input's global order.
        ordered_fractions: bool,
    },
}

impl Par {
    fn close(self) -> PhysPlan {
        match self {
            Par::Serial(p) => p,
            Par::Parallel { branches, .. } => {
                if branches.len() == 1 {
                    branches.into_iter().next().expect("len checked")
                } else {
                    PhysPlan::Exchange {
                        inputs: branches,
                        ordered: false,
                    }
                }
            }
        }
    }
}

/// Rewrite a serial physical plan into a parallel one.
pub fn parallelize(plan: &PhysPlan, opts: &ParallelOptions) -> Result<PhysPlan> {
    Ok(go(plan, opts, 1, None)?.close())
}

/// `expr_cost` accumulates the per-row cost of expressions evaluated above
/// the current node (the Sect. 4.2.2 cost-profile input to the DOP choice);
/// `agg_groups` carries the nearest enclosing aggregate's group columns
/// ("the TableScan only gets the partition requirements from the nearest
/// Aggregate operator").
fn go(
    plan: &PhysPlan,
    opts: &ParallelOptions,
    expr_cost: u32,
    agg_groups: Option<&[String]>,
) -> Result<Par> {
    match plan {
        PhysPlan::Scan {
            table,
            ranges,
            projection,
            via_rle_index,
            pushed,
        } => {
            let rows: usize = ranges.iter().map(|&(_, l)| l).sum();
            let pushed_cost: u32 = pushed.iter().map(Expr::cost_weight).sum();
            let dop = opts
                .profile
                .scan_dop_with_pushdown(rows, expr_cost, pushed_cost);
            if dop <= 1 {
                return Ok(Par::Serial(plan.clone()));
            }
            // Range partitioning: only for a contiguous full scan of a
            // sorted table whose sort-key prefix is covered by the group set.
            if !via_rle_index && opts.enable_range_partition {
                if let Some(groups) = agg_groups {
                    if let Some(prefix_len) = partition_prefix(table, groups) {
                        let lead_col = table.sort_key()[0];
                        let distinct = table.column(lead_col).stats.distinct;
                        if distinct >= opts.range_partition_min_distinct_per_dop * dop {
                            if let Some(fractions) = table.range_fractions(dop, prefix_len) {
                                let branches = fractions
                                    .into_iter()
                                    .map(|r| PhysPlan::Scan {
                                        table: Arc::clone(table),
                                        ranges: vec![r],
                                        projection: projection.clone(),
                                        via_rle_index: false,
                                        pushed: pushed.clone(),
                                    })
                                    .collect();
                                return Ok(Par::Parallel {
                                    branches,
                                    groups_partitioned: true,
                                    ordered_fractions: true,
                                });
                            }
                        }
                    }
                }
            }
            // Random (row-count) partitioning. RLE-index scans distribute
            // their ranges round-robin across threads (Sect. 4.3: "these
            // threads then scan different ranges of the same input table").
            let branches: Vec<PhysPlan> = if *via_rle_index {
                let mut buckets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); dop];
                for (i, r) in ranges.iter().enumerate() {
                    buckets[i % dop].push(*r);
                }
                buckets
                    .into_iter()
                    .filter(|b| !b.is_empty())
                    .map(|rs| PhysPlan::Scan {
                        table: Arc::clone(table),
                        ranges: rs,
                        projection: projection.clone(),
                        via_rle_index: true,
                        pushed: pushed.clone(),
                    })
                    .collect()
            } else {
                // With pushed predicates, fractions snap to zone-map block
                // boundaries so no two workers share a block: each worker
                // makes its skip decisions entirely independently.
                let fractions = if pushed.is_empty() {
                    table.fractions(dop)
                } else {
                    table.fractions_aligned(dop, tabviz_storage::BLOCK_ROWS)
                };
                fractions
                    .into_iter()
                    .map(|r| PhysPlan::Scan {
                        table: Arc::clone(table),
                        ranges: vec![r],
                        projection: projection.clone(),
                        via_rle_index: false,
                        pushed: pushed.clone(),
                    })
                    .collect()
            };
            if branches.len() <= 1 {
                return Ok(Par::Serial(plan.clone()));
            }
            // RLE round-robin buckets interleave row ranges; plain fractions
            // stay contiguous and ordered.
            Ok(Par::Parallel {
                branches,
                groups_partitioned: false,
                ordered_fractions: !*via_rle_index,
            })
        }

        // Flow operators inherit the child's parallelism.
        PhysPlan::Filter { input, predicate } => {
            let child = go(input, opts, expr_cost + predicate.cost_weight(), agg_groups)?;
            Ok(map_branches(child, |b| PhysPlan::Filter {
                input: Box::new(b),
                predicate: predicate.clone(),
            }))
        }
        PhysPlan::Project { input, exprs } => {
            let cost: u32 = exprs.iter().map(|(e, _)| e.cost_weight()).sum();
            // Translate the aggregate's group requirement through renames.
            let translated: Option<Vec<String>> = agg_groups.and_then(|groups| {
                groups
                    .iter()
                    .map(|g| {
                        exprs.iter().find_map(|(e, name)| match e {
                            Expr::Column(src) if name == g => Some(src.clone()),
                            _ => None,
                        })
                    })
                    .collect()
            });
            let child = go(input, opts, expr_cost + cost, translated.as_deref())?;
            Ok(map_branches(child, |b| PhysPlan::Project {
                input: Box::new(b),
                exprs: exprs.clone(),
            }))
        }

        // The probe side participates in the main parallelism; the build
        // side becomes its own parallel unit, shared across branches.
        PhysPlan::HashJoin {
            probe,
            build,
            probe_keys,
            join_type,
        } => {
            let built_plan = parallelize(&build.plan, opts)?;
            let shared = Arc::new(
                BuildSide::new(
                    built_plan,
                    Arc::clone(&build.schema),
                    build.key_cols.clone(),
                )
                .with_kernels(build.kernels),
            );
            let child = go(probe, opts, expr_cost + 2, agg_groups)?;
            // Conservative: a join may introduce build-side group columns,
            // so the partition guarantee is dropped.
            let par = map_branches(child, |b| PhysPlan::HashJoin {
                probe: Box::new(b),
                build: Arc::clone(&shared),
                probe_keys: probe_keys.clone(),
                join_type: *join_type,
            });
            Ok(match par {
                Par::Parallel {
                    branches,
                    ordered_fractions,
                    ..
                } => Par::Parallel {
                    branches,
                    groups_partitioned: false,
                    ordered_fractions,
                },
                serial => serial,
            })
        }

        PhysPlan::HashAgg {
            input,
            group_by,
            aggs,
            kernels,
            ..
        } => parallel_aggregate(input, group_by, aggs, false, *kernels, opts, expr_cost),
        PhysPlan::StreamAgg {
            input,
            group_by,
            aggs,
        } => parallel_aggregate(input, group_by, aggs, true, true, opts, expr_cost),

        // Stop-and-go: close parallelism below.
        PhysPlan::Sort { input, keys } => {
            let child = go(input, opts, expr_cost, None)?.close();
            Ok(Par::Serial(PhysPlan::Sort {
                input: Box::new(child),
                keys: keys.clone(),
            }))
        }
        PhysPlan::TopN { input, keys, n } => {
            let child = go(input, opts, expr_cost, None)?;
            match child {
                Par::Parallel { branches, .. } if opts.enable_local_topn => {
                    // Local/global TopN: each branch keeps its local top n,
                    // the global TopN re-ranks the union.
                    let local: Vec<PhysPlan> = branches
                        .into_iter()
                        .map(|b| PhysPlan::TopN {
                            input: Box::new(b),
                            keys: keys.clone(),
                            n: *n,
                        })
                        .collect();
                    Ok(Par::Serial(PhysPlan::TopN {
                        input: Box::new(PhysPlan::Exchange {
                            inputs: local,
                            ordered: false,
                        }),
                        keys: keys.clone(),
                        n: *n,
                    }))
                }
                other => Ok(Par::Serial(PhysPlan::TopN {
                    input: Box::new(other.close()),
                    keys: keys.clone(),
                    n: *n,
                })),
            }
        }

        // Run-granularity aggregation is O(runs), not O(rows); the row count
        // wildly overstates its work, so it stays serial.
        PhysPlan::RunAgg { .. } => Ok(Par::Serial(plan.clone())),

        // Already-parallel input (shouldn't occur from the serial planner).
        PhysPlan::Exchange { .. } => Ok(Par::Serial(plan.clone())),
    }
}

fn map_branches(par: Par, f: impl Fn(PhysPlan) -> PhysPlan) -> Par {
    match par {
        Par::Serial(p) => Par::Serial(f(p)),
        Par::Parallel {
            branches,
            groups_partitioned,
            ordered_fractions,
        } => Par::Parallel {
            branches: branches.into_iter().map(f).collect(),
            groups_partitioned,
            ordered_fractions,
        },
    }
}

/// Longest prefix of the table's sort key entirely contained in the group
/// column set (Lemma 3's "permutation of a subset ... is a prefix").
fn partition_prefix(table: &tabviz_storage::Table, groups: &[String]) -> Option<usize> {
    if table.sort_key().is_empty() || groups.is_empty() {
        return None;
    }
    let schema = table.schema();
    let mut len = 0usize;
    for &ci in table.sort_key() {
        let name = &schema.field(ci).name;
        if groups.iter().any(|g| g == name) {
            len += 1;
        } else {
            break;
        }
    }
    (len > 0).then_some(len)
}

/// Parallelize an aggregate node, choosing among range-partitioned,
/// local/global, and Exchange-then-serial (Sect. 4.2.3).
fn parallel_aggregate(
    input: &PhysPlan,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
    input_was_streaming: bool,
    kernels: bool,
    opts: &ParallelOptions,
    expr_cost: u32,
) -> Result<Par> {
    // Group requirement pushed to the scan: only simple column groups apply.
    let group_cols: Option<Vec<String>> = group_by
        .iter()
        .map(|(e, _)| match e {
            Expr::Column(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    let agg_cost: u32 = group_by.iter().map(|(e, _)| e.cost_weight()).sum::<u32>()
        + aggs
            .iter()
            .filter_map(|a| a.arg.as_ref())
            .map(Expr::cost_weight)
            .sum::<u32>();
    let child = go(
        input,
        opts,
        expr_cost + agg_cost,
        group_cols.as_deref().filter(|g| !g.is_empty()),
    )?;

    match child {
        Par::Serial(p) => {
            // Stays serial; keep the streaming choice made by the serial
            // planner (Sect. 4.2.4's cost-based decision).
            let node = if input_was_streaming {
                PhysPlan::StreamAgg {
                    input: Box::new(p),
                    group_by: group_by.to_vec(),
                    aggs: aggs.to_vec(),
                }
            } else {
                PhysPlan::HashAgg {
                    input: Box::new(p),
                    group_by: group_by.to_vec(),
                    aggs: aggs.to_vec(),
                    mode: AggMode::Single,
                    kernels,
                }
            };
            Ok(Par::Serial(node))
        }
        Par::Parallel {
            branches,
            groups_partitioned,
            ordered_fractions,
        } => {
            if groups_partitioned {
                // Lemma 3: each branch owns whole groups — aggregate fully
                // per branch, no global aggregate needed. Range fractions
                // keep rows contiguous and sorted, so the streaming variant
                // survives parallelization here.
                let locals: Vec<PhysPlan> = branches
                    .into_iter()
                    .map(|b| {
                        if input_was_streaming {
                            PhysPlan::StreamAgg {
                                input: Box::new(b),
                                group_by: group_by.to_vec(),
                                aggs: aggs.to_vec(),
                            }
                        } else {
                            PhysPlan::HashAgg {
                                input: Box::new(b),
                                group_by: group_by.to_vec(),
                                aggs: aggs.to_vec(),
                                mode: AggMode::Single,
                                kernels,
                            }
                        }
                    })
                    .collect();
                return Ok(Par::Parallel {
                    branches: locals,
                    groups_partitioned: false,
                    ordered_fractions,
                });
            }

            // Sect. 4.2.4's rejected alternative: a single streaming
            // aggregate above an order-preserving Exchange. Contiguous
            // ordered fractions reconstruct the sorted input exactly.
            if opts.prefer_ordered_exchange_streaming && input_was_streaming && ordered_fractions {
                return Ok(Par::Serial(PhysPlan::StreamAgg {
                    input: Box::new(PhysPlan::Exchange {
                        inputs: branches,
                        ordered: true,
                    }),
                    group_by: group_by.to_vec(),
                    aggs: aggs.to_vec(),
                }));
            }

            let decomposable =
                opts.enable_local_global && aggs.iter().all(|a| a.func.supports_local_global());
            if !decomposable {
                // COUNTD (or local/global disabled): Exchange, then one
                // global hash aggregate — "aggregation is still a
                // serialization point".
                let node = PhysPlan::HashAgg {
                    input: Box::new(PhysPlan::Exchange {
                        inputs: branches,
                        ordered: false,
                    }),
                    group_by: group_by.to_vec(),
                    aggs: aggs.to_vec(),
                    mode: AggMode::Single,
                    kernels,
                };
                return Ok(Par::Serial(node));
            }

            // Local/global split.
            let plan = build_local_global(branches, group_by, aggs, kernels);
            Ok(Par::Serial(plan))
        }
    }
}

/// Construct partial → Exchange → global → (recombine) for local/global
/// aggregation, decomposing AVG into SUM + COUNT.
fn build_local_global(
    branches: Vec<PhysPlan>,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
    kernels: bool,
) -> PhysPlan {
    let mut partial_calls: Vec<AggCall> = Vec::new();
    let mut final_calls: Vec<AggCall> = Vec::new();
    let mut needs_recombine = false;
    for a in aggs {
        match a.func {
            AggFunc::Avg => {
                needs_recombine = true;
                let sum_name = format!("__{}_sum", a.alias);
                let cnt_name = format!("__{}_cnt", a.alias);
                partial_calls.push(AggCall::new(AggFunc::Sum, a.arg.clone(), sum_name.clone()));
                partial_calls.push(AggCall::new(
                    AggFunc::Count,
                    a.arg.clone(),
                    cnt_name.clone(),
                ));
                final_calls.push(AggCall::new(AggFunc::Sum, Some(col(&sum_name)), sum_name));
                final_calls.push(AggCall::new(AggFunc::Sum, Some(col(&cnt_name)), cnt_name));
            }
            func => {
                let rollup = func.rollup_func().expect("checked decomposable");
                partial_calls.push(AggCall::new(func, a.arg.clone(), a.alias.clone()));
                final_calls.push(AggCall::new(rollup, Some(col(&a.alias)), a.alias.clone()));
            }
        }
    }

    // Partial aggregate in each branch.
    let locals: Vec<PhysPlan> = branches
        .into_iter()
        .map(|b| PhysPlan::HashAgg {
            input: Box::new(b),
            group_by: group_by.to_vec(),
            aggs: partial_calls.clone(),
            mode: AggMode::Partial,
            kernels,
        })
        .collect();

    // Global roll-up groups on the (now materialized) group columns.
    let final_groups: Vec<(Expr, String)> = group_by
        .iter()
        .map(|(_, name)| (col(name.clone()), name.clone()))
        .collect();
    let global = PhysPlan::HashAgg {
        input: Box::new(PhysPlan::Exchange {
            inputs: locals,
            ordered: false,
        }),
        group_by: final_groups,
        aggs: final_calls,
        mode: AggMode::Final,
        kernels,
    };

    if !needs_recombine {
        return global;
    }
    // Recombine AVG = SUM/COUNT and restore the requested column order.
    let mut exprs: Vec<(Expr, String)> = group_by
        .iter()
        .map(|(_, name)| (col(name.clone()), name.clone()))
        .collect();
    for a in aggs {
        match a.func {
            AggFunc::Avg => exprs.push((
                bin(
                    BinOp::Div,
                    col(format!("__{}_sum", a.alias)),
                    col(format!("__{}_cnt", a.alias)),
                ),
                a.alias.clone(),
            )),
            _ => exprs.push((col(&a.alias), a.alias.clone())),
        }
    }
    PhysPlan::Project {
        input: Box::new(global),
        exprs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{create_physical, execute_to_chunk, PhysicalOptions};
    use crate::TdeCatalog;
    use std::sync::Arc as StdArc;
    use tabviz_common::{Chunk, DataType, Field, Schema, Value};
    use tabviz_storage::{Database, Table};
    use tabviz_tql::expr::lit;
    use tabviz_tql::{LogicalPlan, SortKey};

    fn make_db(rows: usize, sorted: bool) -> StdArc<Database> {
        let schema = StdArc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let carriers = [
            "AA", "AS", "B6", "DL", "EV", "F9", "HA", "NK", "OO", "UA", "VX", "WN",
        ];
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Str(carriers[i % carriers.len()].into()),
                    Value::Int((i % 120) as i64 - 10),
                ]
            })
            .collect();
        let chunk = Chunk::from_rows(schema, &data).unwrap();
        let keys: &[&str] = if sorted { &["carrier"] } else { &[] };
        let db = StdArc::new(Database::new("d"));
        db.put(Table::from_chunk("flights", &chunk, keys).unwrap())
            .unwrap();
        db
    }

    fn agg_plan() -> LogicalPlan {
        use tabviz_tql::expr::col;
        LogicalPlan::scan("flights").aggregate(
            vec![(col("carrier"), "carrier".into())],
            vec![
                AggCall::new(AggFunc::Count, None, "n"),
                AggCall::new(AggFunc::Sum, Some(col("delay")), "total"),
                AggCall::new(AggFunc::Avg, Some(col("delay")), "avg"),
            ],
        )
    }

    fn small_profile(max_dop: usize) -> ParallelOptions {
        ParallelOptions {
            profile: CostProfile {
                min_work_per_thread: 1_000,
                max_dop,
            },
            ..Default::default()
        }
    }

    fn plan_and_run(
        db: &StdArc<Database>,
        logical: &LogicalPlan,
        popts: &ParallelOptions,
    ) -> (PhysPlan, Chunk) {
        let cat = TdeCatalog::new(StdArc::clone(db));
        let serial =
            create_physical(logical, db.as_ref(), &cat, &PhysicalOptions::default()).unwrap();
        let parallel = parallelize(&serial, popts).unwrap();
        let out = execute_to_chunk(&parallel).unwrap();
        (parallel, out)
    }

    fn sorted_rows(c: &Chunk) -> Vec<Vec<Value>> {
        let mut rows = c.to_rows();
        rows.sort();
        rows
    }

    #[test]
    fn local_global_matches_serial() {
        let db = make_db(20_000, false);
        let logical = agg_plan();
        let cat = TdeCatalog::new(StdArc::clone(&db));
        let serial =
            create_physical(&logical, db.as_ref(), &cat, &PhysicalOptions::default()).unwrap();
        let serial_out = execute_to_chunk(&serial).unwrap();

        let (par_plan, par_out) = plan_and_run(&db, &logical, &small_profile(4));
        let text = par_plan.explain();
        assert!(text.contains("Exchange"), "{text}");
        assert!(text.contains("HashAgg(Partial)"), "{text}");
        assert!(text.contains("HashAgg(Final)"), "{text}");
        assert_eq!(sorted_rows(&serial_out), sorted_rows(&par_out));
    }

    #[test]
    fn range_partition_removes_global_agg() {
        let db = make_db(20_000, true); // sorted by carrier
        let logical = agg_plan();
        let (par_plan, par_out) = plan_and_run(&db, &logical, &small_profile(4));
        let text = par_plan.explain();
        // No Partial/Final split — each branch aggregates completely.
        assert!(!text.contains("Partial"), "{text}");
        assert!(text.contains("Exchange"), "{text}");
        assert_eq!(par_out.len(), 12);

        let serial_db = make_db(20_000, true);
        let cat = TdeCatalog::new(StdArc::clone(&serial_db));
        let serial = create_physical(
            &agg_plan(),
            serial_db.as_ref(),
            &cat,
            &PhysicalOptions::default(),
        )
        .unwrap();
        let serial_out = execute_to_chunk(&serial).unwrap();
        assert_eq!(sorted_rows(&serial_out), sorted_rows(&par_out));
    }

    #[test]
    fn countd_forces_global_serialization() {
        use tabviz_tql::expr::col;
        let db = make_db(20_000, false);
        let logical = LogicalPlan::scan("flights").aggregate(
            vec![(col("carrier"), "carrier".into())],
            vec![AggCall::new(AggFunc::CountD, Some(col("delay")), "nd")],
        );
        let (par_plan, out) = plan_and_run(&db, &logical, &small_profile(4));
        let text = par_plan.explain();
        assert!(!text.contains("Partial"), "{text}");
        // Exchange feeds a single global aggregate.
        assert!(text.contains("Exchange"), "{text}");
        assert_eq!(out.len(), 12);
        // delays for carrier c are {d-10 : d in 0..120, d ≡ c (mod 12)} → 10 distinct
        assert_eq!(out.row(0)[1], Value::Int(10));
    }

    #[test]
    fn small_tables_stay_serial() {
        let db = make_db(100, false);
        let logical = agg_plan();
        let popts = ParallelOptions::default(); // real threshold
        let (par_plan, _) = plan_and_run(&db, &logical, &popts);
        assert!(!par_plan.explain().contains("Exchange"));
    }

    #[test]
    fn local_topn_applies() {
        let db = make_db(20_000, false);
        let logical = LogicalPlan::scan("flights")
            .select(bin(BinOp::Ge, col("delay"), lit(0i64)))
            .topn(5, vec![SortKey::desc("delay")]);
        let (par_plan, out) = plan_and_run(&db, &logical, &small_profile(4));
        let text = par_plan.explain();
        assert!(
            text.matches("TopN").count() >= 2,
            "local+global TopN: {text}"
        );
        assert_eq!(out.len(), 5);
        assert_eq!(out.row(0)[1], Value::Int(109));
    }

    #[test]
    fn parallel_join_shares_build() {
        use tabviz_tql::expr::col;
        let db = make_db(20_000, false);
        // dimension with names
        let dschema = StdArc::new(
            Schema::new(vec![
                Field::new("code", DataType::Str),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        );
        let drows: Vec<Vec<Value>> = [
            "AA", "AS", "B6", "DL", "EV", "F9", "HA", "NK", "OO", "UA", "VX", "WN",
        ]
        .iter()
        .map(|c| vec![Value::Str((*c).into()), Value::Str(format!("{c} Airlines"))])
        .collect();
        db.put(
            Table::from_chunk("carriers", &Chunk::from_rows(dschema, &drows).unwrap(), &[])
                .unwrap(),
        )
        .unwrap();
        let logical = LogicalPlan::scan("flights")
            .join(
                LogicalPlan::scan("carriers"),
                vec![("carrier".into(), "code".into())],
                tabviz_tql::JoinType::Inner,
            )
            .aggregate(
                vec![(col("name"), "name".into())],
                vec![AggCall::new(AggFunc::Count, None, "n")],
            );
        let (par_plan, out) = plan_and_run(&db, &logical, &small_profile(4));
        let text = par_plan.explain();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("Exchange"), "{text}");
        assert_eq!(out.len(), 12);
        let total: i64 = (0..out.len())
            .map(|i| out.row(i)[1].as_int().unwrap())
            .sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn ordered_exchange_streaming_variant() {
        // The Sect. 4.2.4 rejected alternative: StreamAgg over an
        // order-preserving Exchange, valid because contiguous fractions of a
        // sorted table concatenate back into sorted input.
        let db = make_db(20_000, true);
        let logical = agg_plan();
        let mut popts = small_profile(4);
        popts.enable_range_partition = false;
        popts.prefer_ordered_exchange_streaming = true;
        let (plan, out) = plan_and_run(&db, &logical, &popts);
        let text = plan.explain();
        assert!(text.contains("Exchange order-preserving"), "{text}");
        assert!(text.contains("StreamAgg"), "{text}");
        assert!(!text.contains("Partial"), "{text}");
        // Same answer as the default local/global plan.
        let (_, baseline) = plan_and_run(&db, &logical, &small_profile(4));
        assert_eq!(sorted_rows(&out), sorted_rows(&baseline));
    }

    #[test]
    fn ablation_switches_work() {
        let db = make_db(20_000, true);
        let logical = agg_plan();
        let mut popts = small_profile(4);
        popts.enable_range_partition = false;
        let (plan1, out1) = plan_and_run(&db, &logical, &popts);
        assert!(plan1.explain().contains("Partial"));
        popts.enable_local_global = false;
        let (plan2, out2) = plan_and_run(&db, &logical, &popts);
        assert!(!plan2.explain().contains("Partial"));
        assert_eq!(sorted_rows(&out1), sorted_rows(&out2));
    }
}
