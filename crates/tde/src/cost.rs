//! The TDE's empirical cost profile.
//!
//! Sect. 4.2.2: "The TDE also has a cost profile for different supported
//! elementary functions. The cost constants are obtained by empirical
//! measuring. ... The cost profile is used to determine how expensive an
//! expression could be. This further affects the decision of the
//! parallelization."

use tabviz_tql::Expr;

/// Tuning constants for parallel-plan decisions.
#[derive(Debug, Clone, Copy)]
pub struct CostProfile {
    /// Minimum weighted work units per thread before adding parallelism.
    /// Roughly: rows × expression-cost must exceed this per extra thread.
    pub min_work_per_thread: u64,
    /// Hard cap on the degree of parallelism (machine size).
    pub max_dop: usize,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            min_work_per_thread: 200_000,
            max_dop: default_dop(),
        }
    }
}

/// Default degree of parallelism: the number of available cores.
pub fn default_dop() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

impl CostProfile {
    /// Decide a scan's degree of parallelism from the table's row count and
    /// the total per-row cost of the expressions evaluated above it.
    pub fn scan_dop(&self, row_count: usize, expr_cost: u32) -> usize {
        let work = row_count as u64 * u64::from(expr_cost.max(1));
        let by_work = (work / self.min_work_per_thread.max(1)) as usize;
        by_work.clamp(1, self.max_dop)
    }

    /// Like [`CostProfile::scan_dop`], but also charges the per-row cost of
    /// predicates pushed into the scan itself: pushed conjuncts run inside
    /// each scan worker, so they contribute to per-thread work just like the
    /// expressions evaluated above the scan.
    pub fn scan_dop_with_pushdown(
        &self,
        row_count: usize,
        expr_cost: u32,
        pushed_cost: u32,
    ) -> usize {
        self.scan_dop(row_count, expr_cost.saturating_add(pushed_cost))
    }

    /// Total per-row cost of a set of expressions.
    pub fn exprs_cost(exprs: &[&Expr]) -> u32 {
        exprs.iter().map(|e| e.cost_weight()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabviz_tql::expr::{bin, col, lit, BinOp};

    #[test]
    fn small_tables_stay_serial() {
        let p = CostProfile {
            min_work_per_thread: 200_000,
            max_dop: 8,
        };
        assert_eq!(p.scan_dop(1_000, 2), 1);
    }

    #[test]
    fn big_tables_parallelize_up_to_cap() {
        let p = CostProfile {
            min_work_per_thread: 200_000,
            max_dop: 8,
        };
        assert_eq!(p.scan_dop(10_000_000, 4), 8);
    }

    #[test]
    fn expensive_expressions_lower_the_threshold() {
        let p = CostProfile {
            min_work_per_thread: 200_000,
            max_dop: 8,
        };
        let cheap = p.scan_dop(150_000, 1);
        let pricey = p.scan_dop(150_000, 24);
        assert_eq!(cheap, 1);
        assert!(pricey > cheap);
    }

    #[test]
    fn exprs_cost_sums() {
        let e1 = bin(BinOp::Gt, col("a"), lit(1i64));
        let e2 = col("b");
        assert_eq!(CostProfile::exprs_cost(&[&e1, &e2]), e1.cost_weight() + 1);
    }
}
