//! Derived plan properties.
//!
//! Sect. 4.1.2: "The TDE optimizer ... derives properties, such as column
//! dependencies, equivalence sets, uniqueness, sorting properties and
//! utilizes them to perform a series of optimizations." This module derives
//! the two properties the rest of the engine consumes:
//!
//! * **sort order** — drives streaming-aggregate selection (Sect. 4.2.4) and
//!   range-partitioned aggregation (Sect. 4.2.3);
//! * **unique columns** — licenses join culling (Sect. 4.1.2).

use std::collections::BTreeSet;
use tabviz_common::Result;
use tabviz_tql::expr::Expr;
use tabviz_tql::{Catalog, LogicalPlan};

/// The ordered list of column names the plan's output is sorted by (a
/// prefix-valid ordering: output rows are non-decreasing in `out[0]`, ties
/// broken by `out[1]`, ...). Empty when no useful order is known.
pub fn sort_order(plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<Vec<String>> {
    Ok(match plan {
        LogicalPlan::TableScan { table, projection } => {
            let meta = catalog.table_meta(table)?;
            let mut key = meta.sort_key;
            if let Some(proj) = projection {
                // The order survives only while its prefix is projected.
                let keep: usize = key
                    .iter()
                    .take_while(|k| proj.iter().any(|p| p == *k))
                    .count();
                key.truncate(keep);
            }
            key
        }
        // Filters preserve order.
        LogicalPlan::Select { input, .. } => sort_order(input, catalog)?,
        LogicalPlan::Project { input, exprs } => {
            // Order survives through pass-through column references, under
            // the output name.
            let inner = sort_order(input, catalog)?;
            let mut out = Vec::new();
            'key: for k in inner {
                for (e, name) in exprs {
                    if let Expr::Column(c) = e {
                        if *c == k {
                            out.push(name.clone());
                            continue 'key;
                        }
                    }
                }
                break; // prefix broken
            }
            out
        }
        // Hash join preserves the probe (left) side's order.
        LogicalPlan::Join { left, .. } => sort_order(left, catalog)?,
        // Hash aggregation destroys order (the streaming variant is a
        // physical choice; logically we report no order).
        LogicalPlan::Aggregate { .. } => vec![],
        LogicalPlan::Order { keys, .. } | LogicalPlan::TopN { keys, .. } => {
            keys.iter().map(|k| k.column.clone()).collect()
        }
        LogicalPlan::Distinct { input } => sort_order(input, catalog)?,
    })
}

/// Columns of the plan's output known to hold unique values.
pub fn unique_columns(plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<BTreeSet<String>> {
    Ok(match plan {
        LogicalPlan::TableScan { table, projection } => {
            let meta = catalog.table_meta(table)?;
            match projection {
                None => meta.unique_columns,
                Some(proj) => meta
                    .unique_columns
                    .into_iter()
                    .filter(|u| proj.iter().any(|p| p == u))
                    .collect(),
            }
        }
        // Removing rows preserves uniqueness.
        LogicalPlan::Select { input, .. }
        | LogicalPlan::TopN { input, .. }
        | LogicalPlan::Order { input, .. }
        | LogicalPlan::Distinct { input } => unique_columns(input, catalog)?,
        LogicalPlan::Project { input, exprs } => {
            let inner = unique_columns(input, catalog)?;
            exprs
                .iter()
                .filter_map(|(e, name)| match e {
                    Expr::Column(c) if inner.contains(c) => Some(name.clone()),
                    _ => None,
                })
                .collect()
        }
        // An n:1 join (unique build key) preserves probe-side uniqueness.
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            let right_unique = unique_columns(right, catalog)?;
            let n_to_1 = on.iter().all(|(_, r)| right_unique.contains(r));
            if n_to_1 {
                unique_columns(left, catalog)?
            } else {
                BTreeSet::new()
            }
        }
        // Grouping makes the single group column unique.
        LogicalPlan::Aggregate { group_by, .. } => {
            if group_by.len() == 1 {
                std::iter::once(group_by[0].1.clone()).collect()
            } else {
                BTreeSet::new()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_tql::catalog::{MemoryCatalog, TableMeta};
    use tabviz_tql::expr::{bin, col, lit, BinOp};
    use tabviz_tql::SortKey;

    fn catalog() -> MemoryCatalog {
        let mut cat = MemoryCatalog::new();
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("day", DataType::Date),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        let mut meta = TableMeta::new(schema, 1_000);
        meta.sort_key = vec!["carrier".into(), "day".into()];
        cat.add("flights", meta);

        let dim = Arc::new(
            Schema::new(vec![
                Field::new("code", DataType::Str),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        );
        let mut dmeta = TableMeta::new(dim, 20);
        dmeta.unique_columns = std::iter::once("code".to_string()).collect();
        cat.add("carriers", dmeta);
        cat
    }

    #[test]
    fn scan_order_from_metadata() {
        let cat = catalog();
        let p = LogicalPlan::scan("flights");
        assert_eq!(sort_order(&p, &cat).unwrap(), vec!["carrier", "day"]);
    }

    #[test]
    fn projection_truncates_order() {
        let cat = catalog();
        let p = LogicalPlan::TableScan {
            table: "flights".into(),
            projection: Some(vec!["carrier".into(), "delay".into()]),
        };
        assert_eq!(sort_order(&p, &cat).unwrap(), vec!["carrier"]);
    }

    #[test]
    fn select_preserves_project_renames() {
        let cat = catalog();
        let p = LogicalPlan::scan("flights")
            .select(bin(BinOp::Gt, col("delay"), lit(0i64)))
            .project(vec![(col("carrier"), "c".into()), (col("day"), "d".into())]);
        assert_eq!(sort_order(&p, &cat).unwrap(), vec!["c", "d"]);
    }

    #[test]
    fn computed_column_breaks_prefix() {
        let cat = catalog();
        let p = LogicalPlan::scan("flights").project(vec![
            (bin(BinOp::Add, col("delay"), lit(1i64)), "x".into()),
            (col("day"), "d".into()),
        ]);
        assert!(sort_order(&p, &cat).unwrap().is_empty());
    }

    #[test]
    fn order_and_aggregate() {
        let cat = catalog();
        let o = LogicalPlan::scan("flights").order(vec![SortKey::desc("delay")]);
        assert_eq!(sort_order(&o, &cat).unwrap(), vec!["delay"]);
        let a = LogicalPlan::scan("flights")
            .aggregate(vec![(col("carrier"), "carrier".into())], vec![]);
        assert!(sort_order(&a, &cat).unwrap().is_empty());
    }

    #[test]
    fn uniqueness_through_join() {
        let cat = catalog();
        let agg = LogicalPlan::scan("flights")
            .aggregate(vec![(col("carrier"), "carrier".into())], vec![]);
        assert!(unique_columns(&agg, &cat).unwrap().contains("carrier"));

        let j = agg.join(
            LogicalPlan::scan("carriers"),
            vec![("carrier".into(), "code".into())],
            tabviz_tql::JoinType::Inner,
        );
        // n:1 join on unique code keeps carrier unique
        assert!(unique_columns(&j, &cat).unwrap().contains("carrier"));
    }

    #[test]
    fn non_unique_join_clears() {
        let cat = catalog();
        let j = LogicalPlan::scan("carriers").join(
            LogicalPlan::scan("flights"),
            vec![("code".into(), "carrier".into())],
            tabviz_tql::JoinType::Inner,
        );
        assert!(unique_columns(&j, &cat).unwrap().is_empty());
    }
}
