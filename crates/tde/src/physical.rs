//! Physical plans.
//!
//! The serial physical planner maps the optimized logical tree onto
//! executable operators; [`crate::parallel`] then rewrites the result with
//! Exchange-delimited parallel regions (Sect. 4.2). The RLE IndexTable
//! range-skipping scan of Sect. 4.3 is planned here: a selective filter over
//! a run-length-encoded column turns into a [`PhysPlan::Scan`] over just the
//! matching row ranges ("we implement the join that translates the range
//! specifications directly into disk accesses").

use std::sync::{Arc, OnceLock};
use tabviz_common::{Chunk, Field, Result, Schema, SchemaRef, TvError, Value};
use tabviz_storage::Table;
use tabviz_tql::expr::Expr;
use tabviz_tql::{AggCall, Catalog, JoinType, LogicalPlan, SortKey};

use crate::exec::join::JoinBuild;
use crate::props;

/// How an Aggregate executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// One hash aggregation over the whole input.
    Single,
    /// The "local" half of local/global aggregation: emits partial states as
    /// decomposed columns (Sect. 4.2.3).
    Partial,
    /// The "global" half: re-aggregates partials with roll-up functions.
    Final,
}

/// The build side of a hash join, shared across parallel probe branches
/// ("a single hash table is built from the shared table and then shared for
/// every left-hand block to probe", Sect. 4.2.2). The underlying plan runs at
/// most once, on whichever thread first needs it.
pub struct BuildSide {
    pub plan: PhysPlan,
    pub schema: SchemaRef,
    pub key_cols: Vec<usize>,
    /// Allow the packed-key probe kernel (set from
    /// [`PhysicalOptions::enable_vector_kernels`]).
    pub kernels: bool,
    cell: OnceLock<Result<Arc<JoinBuild>>>,
}

impl BuildSide {
    pub fn new(plan: PhysPlan, schema: SchemaRef, key_cols: Vec<usize>) -> Self {
        BuildSide {
            plan,
            schema,
            key_cols,
            kernels: true,
            cell: OnceLock::new(),
        }
    }

    pub fn with_kernels(mut self, kernels: bool) -> Self {
        self.kernels = kernels;
        self
    }

    /// Execute the build plan (once) and return the shared hash table.
    pub fn get(&self) -> Result<Arc<JoinBuild>> {
        self.cell
            .get_or_init(|| {
                let chunk = execute_to_chunk(&self.plan)?;
                Ok(Arc::new(JoinBuild::build(
                    chunk,
                    &self.key_cols,
                    &self.schema,
                    self.kernels,
                )?))
            })
            .clone()
    }
}

impl std::fmt::Debug for BuildSide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildSide")
            .field("schema", &self.schema.names())
            .finish_non_exhaustive()
    }
}

/// A physical operator tree node.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// Scan row ranges of a stored table. Multiple ranges arise from RLE
    /// range skipping and from fraction assignment in parallel plans.
    Scan {
        table: Arc<Table>,
        ranges: Vec<(usize, usize)>,
        projection: Option<Vec<usize>>,
        /// True when the ranges came from the RLE IndexTable (explain/tests).
        via_rle_index: bool,
        /// Sargable conjuncts pushed below materialization by the
        /// compression-aware scan path: evaluated per zone-map block (skip),
        /// per dictionary code, or per RLE run before any chunk is built.
        pushed: Vec<Expr>,
    },
    /// Run-granularity aggregation straight over a table's RLE runs
    /// (Sect. 4.1.1 meets 4.2.4): COUNT/SUM are computed from run values and
    /// lengths without decoding a single row. Planned for a GROUP BY whose
    /// columns are all RLE (multi-column groups walk the intersected run
    /// boundaries) and whose aggregate arguments are RLE too.
    RunAgg {
        table: Arc<Table>,
        ranges: Vec<(usize, usize)>,
        group_cols: Vec<usize>,
        group_aliases: Vec<String>,
        aggs: Vec<AggCall>,
    },
    Filter {
        input: Box<PhysPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysPlan>,
        exprs: Vec<(Expr, String)>,
    },
    HashJoin {
        probe: Box<PhysPlan>,
        build: Arc<BuildSide>,
        /// Probe-side key column names.
        probe_keys: Vec<String>,
        join_type: JoinType,
    },
    HashAgg {
        input: Box<PhysPlan>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
        mode: AggMode,
        /// Allow the packed-key / typed-state aggregation kernel (set from
        /// [`PhysicalOptions::enable_vector_kernels`]).
        kernels: bool,
    },
    /// Streaming aggregate over input sorted by the group columns
    /// (Sect. 4.2.4: "if the data is grouped according to the group by
    /// columns, streaming aggregates can be applied").
    StreamAgg {
        input: Box<PhysPlan>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
    },
    Sort {
        input: Box<PhysPlan>,
        keys: Vec<SortKey>,
    },
    TopN {
        input: Box<PhysPlan>,
        keys: Vec<SortKey>,
        n: usize,
    },
    /// N-inputs-one-output Exchange (Sect. 4.2.1; Tableau 9.0 restricts the
    /// Exchange to a single output and no repartitioning). `ordered` drains
    /// branches in order, preserving the input's global sort order — the
    /// Sect. 4.2.4 variant the paper evaluated ("variations of the parallel
    /// plans with ... order-preserving Exchange").
    Exchange {
        inputs: Vec<PhysPlan>,
        ordered: bool,
    },
}

impl PhysPlan {
    /// Output schema of this physical node.
    pub fn schema(&self) -> Result<SchemaRef> {
        match self {
            PhysPlan::Scan {
                table, projection, ..
            } => Ok(match projection {
                None => Arc::clone(table.schema()),
                Some(idx) => Arc::new(table.schema().project(idx)),
            }),
            PhysPlan::RunAgg {
                table,
                group_cols,
                group_aliases,
                aggs,
                ..
            } => {
                let gb: Vec<(Expr, String)> = group_cols
                    .iter()
                    .zip(group_aliases)
                    .map(|(&ci, alias)| {
                        let name = table.schema().field(ci).name.clone();
                        (Expr::Column(name), alias.clone())
                    })
                    .collect();
                agg_schema(table.schema(), &gb, aggs, AggMode::Single)
            }
            PhysPlan::Filter { input, .. } => input.schema(),
            PhysPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let dtype = e.data_type(&in_schema)?;
                    let collation = match e {
                        Expr::Column(c) => in_schema.field_by_name(c)?.collation,
                        _ => Default::default(),
                    };
                    fields.push(Field::new(name.clone(), dtype).with_collation(collation));
                }
                Ok(Arc::new(Schema::new_unchecked(fields)))
            }
            PhysPlan::HashJoin { probe, build, .. } => {
                Ok(Arc::new(probe.schema()?.join(&build.schema)))
            }
            PhysPlan::HashAgg {
                input,
                group_by,
                aggs,
                mode,
                ..
            } => {
                let s = input.schema()?;
                agg_schema(s.as_ref(), group_by, aggs, *mode)
            }
            PhysPlan::StreamAgg {
                input,
                group_by,
                aggs,
            } => {
                let s = input.schema()?;
                agg_schema(s.as_ref(), group_by, aggs, AggMode::Single)
            }
            PhysPlan::Sort { input, .. } | PhysPlan::TopN { input, .. } => input.schema(),
            PhysPlan::Exchange { inputs, .. } => inputs
                .first()
                .ok_or_else(|| TvError::Plan("empty Exchange".into()))?
                .schema(),
        }
    }

    /// Indented explain text.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, 0);
        s
    }

    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::Scan {
                table,
                ranges,
                projection,
                via_rle_index,
                pushed,
            } => {
                let rows: usize = ranges.iter().map(|&(_, l)| l).sum();
                let _ = write!(out, "{pad}Scan {} rows={rows}", table.name());
                if *via_rle_index {
                    let _ = write!(out, " via-rle-index ranges={}", ranges.len());
                }
                if !pushed.is_empty() {
                    let preds: Vec<String> = pushed.iter().map(|e| e.to_string()).collect();
                    let _ = write!(out, " pushed=[{}]", preds.join(" AND "));
                }
                if let Some(p) = projection {
                    let names: Vec<&str> = p
                        .iter()
                        .map(|&i| table.schema().field(i).name.as_str())
                        .collect();
                    let _ = write!(out, " [{}]", names.join(", "));
                }
                let _ = writeln!(out);
            }
            PhysPlan::RunAgg {
                table,
                ranges,
                group_cols,
                group_aliases,
                aggs,
            } => {
                let rows: usize = ranges.iter().map(|&(_, l)| l).sum();
                let gb: Vec<String> = group_cols
                    .iter()
                    .zip(group_aliases)
                    .map(|(&ci, alias)| format!("{} AS {alias}", table.schema().field(ci).name))
                    .collect();
                let ag: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}RunAgg {} rows={rows} [{}] [{}]",
                    table.name(),
                    gb.join(", "),
                    ag.join(", ")
                );
            }
            PhysPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate}");
                input.render(out, depth + 1);
            }
            PhysPlan::Project { input, exprs } => {
                let items: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let _ = writeln!(out, "{pad}Project {}", items.join(", "));
                input.render(out, depth + 1);
            }
            PhysPlan::HashJoin {
                probe,
                build,
                probe_keys,
                join_type,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin({join_type:?}) probe-keys=[{}]",
                    probe_keys.join(", ")
                );
                probe.render(out, depth + 1);
                let _ = writeln!(out, "{}build (shared):", "  ".repeat(depth + 1));
                build.plan.render(out, depth + 2);
            }
            PhysPlan::HashAgg {
                input,
                group_by,
                aggs,
                mode,
                ..
            } => {
                let gb: Vec<String> = group_by
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect();
                let ag: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}HashAgg({mode:?}) [{}] [{}]",
                    gb.join(", "),
                    ag.join(", ")
                );
                input.render(out, depth + 1);
            }
            PhysPlan::StreamAgg {
                input,
                group_by,
                aggs,
            } => {
                let gb: Vec<String> = group_by
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect();
                let ag: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}StreamAgg [{}] [{}]",
                    gb.join(", "),
                    ag.join(", ")
                );
                input.render(out, depth + 1);
            }
            PhysPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort {}", fmt_keys(keys));
                input.render(out, depth + 1);
            }
            PhysPlan::TopN { input, keys, n } => {
                let _ = writeln!(out, "{pad}TopN {n} by {}", fmt_keys(keys));
                input.render(out, depth + 1);
            }
            PhysPlan::Exchange { inputs, ordered } => {
                let tag = if *ordered { " order-preserving" } else { "" };
                let _ = writeln!(out, "{pad}Exchange{tag} inputs={}", inputs.len());
                for i in inputs {
                    i.render(out, depth + 1);
                }
            }
        }
    }
}

fn fmt_keys(keys: &[SortKey]) -> String {
    keys.iter()
        .map(|k| format!("{} {}", k.column, if k.asc { "ASC" } else { "DESC" }))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Output schema of an aggregate node (shared by hash and streaming).
pub fn agg_schema(
    in_schema: &Schema,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
    _mode: AggMode,
) -> Result<SchemaRef> {
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    for (e, name) in group_by {
        let dtype = e.data_type(in_schema)?;
        let collation = match e {
            Expr::Column(c) => in_schema.field_by_name(c)?.collation,
            _ => Default::default(),
        };
        fields.push(Field::new(name.clone(), dtype).with_collation(collation));
    }
    for a in aggs {
        fields.push(Field::new(a.alias.clone(), a.output_type(in_schema)?));
    }
    Ok(Arc::new(Schema::new_unchecked(fields)))
}

/// Controls handed to the physical planner.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalOptions {
    /// Enable the Sect. 4.3 RLE IndexTable range-skipping rewrite.
    pub enable_rle_index: bool,
    /// Maximum fraction of runs a filter may select and still use range
    /// skipping (beyond this a full scan is cheaper).
    pub rle_max_run_fraction: f64,
    /// Prefer streaming aggregates when the input order allows.
    pub enable_streaming_agg: bool,
    /// Push sargable conjuncts into the scan: zone-map block skipping,
    /// predicate-on-codes, and run-granularity filtering before chunk
    /// materialization.
    pub enable_scan_pushdown: bool,
    /// Plan [`PhysPlan::RunAgg`]: COUNT/SUM/MIN/MAX over RLE runs without
    /// decoding.
    pub enable_run_agg: bool,
    /// Use the type-specialized vectorized kernels (packed composite keys,
    /// batched hashing, typed aggregate-state loops) in hash agg / hash
    /// join. Off forces the retained `Value`-row fallback everywhere.
    pub enable_vector_kernels: bool,
}

impl Default for PhysicalOptions {
    fn default() -> Self {
        PhysicalOptions {
            enable_rle_index: true,
            rle_max_run_fraction: 0.5,
            enable_streaming_agg: true,
            enable_scan_pushdown: true,
            enable_run_agg: true,
            enable_vector_kernels: true,
        }
    }
}

/// Resolver from table names to stored tables (the TDE database).
pub trait TableProvider {
    fn table(&self, name: &str) -> Result<Arc<Table>>;
}

impl TableProvider for tabviz_storage::Database {
    fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.resolve(name)
    }
}

/// Build a *serial* physical plan from an optimized logical plan.
pub fn create_physical(
    plan: &LogicalPlan,
    tables: &dyn TableProvider,
    catalog: &dyn Catalog,
    options: &PhysicalOptions,
) -> Result<PhysPlan> {
    match plan {
        LogicalPlan::TableScan { table, projection } => {
            let t = tables.table(table)?;
            let proj = match projection {
                None => None,
                Some(cols) => Some(
                    cols.iter()
                        .map(|c| t.schema().index_of(c))
                        .collect::<Result<Vec<_>>>()?,
                ),
            };
            let rows = t.row_count();
            Ok(PhysPlan::Scan {
                table: t,
                ranges: vec![(0, rows)],
                projection: proj,
                via_rle_index: false,
                pushed: vec![],
            })
        }
        LogicalPlan::Select { input, predicate } => {
            // RLE range-skipping: Select directly over a TableScan whose
            // predicate (or some conjuncts of it) constrains a single
            // RLE-encoded column.
            if options.enable_rle_index {
                if let LogicalPlan::TableScan { table, projection } = input.as_ref() {
                    let t = tables.table(table)?;
                    if let Some(planned) =
                        try_rle_scan(&t, projection.as_deref(), predicate, options)?
                    {
                        return Ok(planned);
                    }
                }
            }
            let child = create_physical(input, tables, catalog, options)?;
            Ok(PhysPlan::Filter {
                input: Box::new(child),
                predicate: predicate.clone(),
            })
        }
        LogicalPlan::Project { input, exprs } => Ok(PhysPlan::Project {
            input: Box::new(create_physical(input, tables, catalog, options)?),
            exprs: exprs.clone(),
        }),
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let probe = create_physical(left, tables, catalog, options)?;
            let build_plan = create_physical(right, tables, catalog, options)?;
            let build_schema = build_plan.schema()?;
            let key_cols: Vec<usize> = on
                .iter()
                .map(|(_, r)| build_schema.index_of(r))
                .collect::<Result<_>>()?;
            let probe_keys: Vec<String> = on.iter().map(|(l, _)| l.clone()).collect();
            Ok(PhysPlan::HashJoin {
                probe: Box::new(probe),
                build: Arc::new(
                    BuildSide::new(build_plan, build_schema, key_cols)
                        .with_kernels(options.enable_vector_kernels),
                ),
                probe_keys,
                join_type: *join_type,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Run-granularity kernel: aggregate straight over RLE runs when
            // neither the group column nor any aggregate argument needs a
            // decode. Checked before the streaming rewrite — it strictly
            // dominates it (no materialization at all).
            if options.enable_run_agg {
                if let LogicalPlan::TableScan { table, .. } = input.as_ref() {
                    let t = tables.table(table)?;
                    if let Some(plan) = try_run_agg(&t, group_by, aggs) {
                        return Ok(plan);
                    }
                }
            }
            let child = create_physical(input, tables, catalog, options)?;
            // Streaming aggregate when the input arrives grouped: the sort
            // order's first k columns must be exactly the group column set.
            if options.enable_streaming_agg && streaming_applicable(input, group_by, catalog)? {
                return Ok(PhysPlan::StreamAgg {
                    input: Box::new(child),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                });
            }
            Ok(PhysPlan::HashAgg {
                input: Box::new(child),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                mode: AggMode::Single,
                kernels: options.enable_vector_kernels,
            })
        }
        LogicalPlan::Order { input, keys } => Ok(PhysPlan::Sort {
            input: Box::new(create_physical(input, tables, catalog, options)?),
            keys: keys.clone(),
        }),
        LogicalPlan::TopN { input, keys, n } => Ok(PhysPlan::TopN {
            input: Box::new(create_physical(input, tables, catalog, options)?),
            keys: keys.clone(),
            n: *n,
        }),
        LogicalPlan::Distinct { .. } => Err(TvError::Plan(
            "Distinct must be compiled away before physical planning".into(),
        )),
    }
}

/// True when the logical input's derived order lets a streaming aggregate
/// run: group columns are all plain column refs and equal, as a set, a prefix
/// of the input sort order.
pub fn streaming_applicable(
    input: &LogicalPlan,
    group_by: &[(Expr, String)],
    catalog: &dyn Catalog,
) -> Result<bool> {
    if group_by.is_empty() {
        return Ok(false);
    }
    let mut group_cols = std::collections::BTreeSet::new();
    for (e, _) in group_by {
        match e {
            Expr::Column(c) => {
                group_cols.insert(c.clone());
            }
            _ => return Ok(false),
        }
    }
    let order = props::sort_order(input, catalog)?;
    if order.len() < group_cols.len() {
        return Ok(false);
    }
    let prefix: std::collections::BTreeSet<String> =
        order[..group_cols.len()].iter().cloned().collect();
    Ok(prefix == group_cols)
}

/// Attempt the Sect. 4.3 rewrite. Returns a plan when at least one conjunct
/// is a supported single-RLE-column predicate that is selective enough.
fn try_rle_scan(
    table: &Arc<Table>,
    projection: Option<&[String]>,
    predicate: &Expr,
    options: &PhysicalOptions,
) -> Result<Option<PhysPlan>> {
    let conjuncts = crate::optimize::split_conjuncts(predicate);
    // Find the first conjunct constraining exactly one RLE-encoded column.
    let mut chosen: Option<(usize, Expr)> = None;
    for c in &conjuncts {
        let cols = c.columns();
        if cols.len() != 1 {
            continue;
        }
        let col_name = cols.iter().next().unwrap();
        let Ok(idx) = table.schema().index_of(col_name) else {
            continue;
        };
        let stored = table.column(idx);
        if stored.rle_runs().is_none() {
            continue;
        }
        if !supported_run_predicate(c) {
            continue;
        }
        chosen = Some((idx, c.clone()));
        break;
    }
    let Some((col_idx, run_pred)) = chosen else {
        return Ok(None);
    };

    let stored = table.column(col_idx);
    let runs = stored.rle_runs().expect("checked above");
    if runs.is_empty() {
        return Ok(None);
    }

    // Evaluate the predicate against the IndexTable's value column.
    let field = table.schema().field(col_idx).clone();
    let run_schema = Arc::new(Schema::new_unchecked(vec![field]));
    let values: Vec<Vec<Value>> = runs.iter().map(|r| vec![r.value.clone()]).collect();
    let run_chunk = Chunk::from_rows(run_schema, &values)?;
    let mask = run_pred.eval_predicate(&run_chunk)?;

    let selected: usize = mask.iter().filter(|&&m| m).count();
    if selected as f64 > options.rle_max_run_fraction * runs.len() as f64 {
        return Ok(None); // not selective enough; full scan wins
    }

    // Matching runs become scan ranges; adjacent ranges merge.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for (run, &m) in runs.iter().zip(&mask) {
        if !m {
            continue;
        }
        match ranges.last_mut() {
            Some((start, len)) if *start + *len == run.start => *len += run.count,
            _ => ranges.push((run.start, run.count)),
        }
    }

    let proj_idx = match projection {
        None => None,
        Some(cols) => Some(
            cols.iter()
                .map(|c| table.schema().index_of(c))
                .collect::<Result<Vec<_>>>()?,
        ),
    };
    let scan = PhysPlan::Scan {
        table: Arc::clone(table),
        ranges,
        projection: proj_idx,
        via_rle_index: true,
        pushed: vec![],
    };
    // Residual conjuncts (everything except the one answered by ranges).
    let residual: Vec<Expr> = conjuncts.into_iter().filter(|c| *c != run_pred).collect();
    if residual.is_empty() {
        Ok(Some(scan))
    } else {
        Ok(Some(PhysPlan::Filter {
            input: Box::new(scan),
            predicate: tabviz_tql::expr::and_all(residual),
        }))
    }
}

/// Plan [`PhysPlan::RunAgg`] when every piece of the aggregate is answerable
/// at run granularity: one or more group columns, each stored RLE (the
/// executor walks their intersected run boundaries); aggregates are
/// `COUNT(*)`, `COUNT(col)`, `SUM(col)`, `MIN(col)` or `MAX(col)` with the
/// argument column RLE too (for MIN/MAX each run contributes its value once —
/// the run length cannot change an extremum). Anything else (plain/delta
/// arguments, expressions, AVG/COUNTD, global aggregates) falls through to
/// the ordinary decode-then-aggregate paths.
fn try_run_agg(
    table: &Arc<Table>,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
) -> Option<PhysPlan> {
    use tabviz_tql::agg::AggFunc;
    if group_by.is_empty() {
        return None;
    }
    let is_rle = |idx: usize| {
        matches!(
            table.column(idx).data(),
            tabviz_storage::ColumnData::Rle { .. }
        )
    };
    let mut group_cols = Vec::with_capacity(group_by.len());
    let mut group_aliases = Vec::with_capacity(group_by.len());
    for (expr, alias) in group_by {
        let Expr::Column(name) = expr else {
            return None;
        };
        let idx = table.schema().index_of(name).ok()?;
        if !is_rle(idx) {
            return None;
        }
        group_cols.push(idx);
        group_aliases.push(alias.clone());
    }
    for a in aggs {
        match (a.func, &a.arg) {
            (AggFunc::Count, None) => {}
            (
                AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max,
                Some(Expr::Column(c)),
            ) => {
                let idx = table.schema().index_of(c).ok()?;
                if !is_rle(idx) {
                    return None;
                }
            }
            _ => return None,
        }
    }
    let rows = table.row_count();
    Some(PhysPlan::RunAgg {
        table: Arc::clone(table),
        ranges: vec![(0, rows)],
        group_cols,
        group_aliases,
        aggs: aggs.to_vec(),
    })
}

/// Predicate shapes the IndexTable can answer exactly: comparisons against
/// literals, IN lists, ranges and null tests on the run value.
pub(crate) fn supported_run_predicate(e: &Expr) -> bool {
    use tabviz_tql::expr::UnaryOp;
    match e {
        Expr::Binary { op, left, right } => {
            op.is_comparison()
                && matches!(
                    (left.as_ref(), right.as_ref()),
                    (Expr::Column(_), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(_))
                )
        }
        Expr::In { expr, .. } | Expr::Between { expr, .. } => {
            matches!(expr.as_ref(), Expr::Column(_))
        }
        Expr::Unary { op, expr } => {
            matches!(op, UnaryOp::IsNull | UnaryOp::IsNotNull)
                && matches!(expr.as_ref(), Expr::Column(_))
        }
        _ => false,
    }
}

/// Drive a physical plan to completion, concatenating output chunks.
pub fn execute_to_chunk(plan: &PhysPlan) -> Result<Chunk> {
    let mut op = crate::exec::make_op(plan)?;
    let schema = op.schema();
    let mut chunks = Vec::new();
    while let Some(c) = op.next()? {
        chunks.push(c);
    }
    Chunk::concat(schema, &chunks)
}
