//! The rule-based optimizer.
//!
//! Sect. 4.1.2: "The TDE optimizer is a rule-based optimizer ... filter and
//! project push-down/pull-up, removal of unnecessary joins, removal of
//! unnecessary orderings, common sub-expression elimination ... removal of
//! the fact table from a join is critical for performance of domain queries,
//! frequently sent by Tableau."
//!
//! Rules, in application order:
//! 1. **Filter push-down** — selections sink through projects, orders,
//!    aggregates (group-key conjuncts) and join sides.
//! 2. **Column pruning + join culling** — required columns flow top-down;
//!    table scans narrow to what is used, and a join side that contributes no
//!    required columns is removed when key uniqueness (and, for inner joins,
//!    assumed referential integrity) guarantees the join neither duplicates
//!    nor drops rows.
//! 3. **Redundant order removal** — `Order` nodes beneath order-destroying
//!    or re-ordering operators are dropped.

use std::collections::BTreeSet;
use tabviz_common::Result;
use tabviz_tql::expr::{and_all, Expr};
use tabviz_tql::{BinOp, Catalog, JoinType, LogicalPlan};

use crate::physical::{BuildSide, PhysPlan};
use crate::props::unique_columns;

/// Optimizer switches. Defaults mirror Tableau's behavior: join culling on,
/// referential integrity assumed for extract star schemas.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub enable_pushdown: bool,
    pub enable_pruning: bool,
    pub enable_join_culling: bool,
    /// Cull inner-join sides even though that assumes every probe key finds a
    /// match (Tableau's "assume referential integrity" data-source option).
    pub assume_referential_integrity: bool,
    pub enable_order_removal: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_pushdown: true,
            enable_pruning: true,
            enable_join_culling: true,
            assume_referential_integrity: true,
            enable_order_removal: true,
        }
    }
}

/// Run the full rule pipeline.
pub fn optimize(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    config: &OptimizerConfig,
) -> Result<LogicalPlan> {
    let mut plan = plan;
    if config.enable_pushdown {
        plan = push_down_filters(plan, catalog)?;
    }
    if config.enable_pruning {
        plan = prune_columns(plan, None, catalog, config)?;
    }
    if config.enable_order_removal {
        plan = strip_redundant_orders(plan, false);
    }
    Ok(plan)
}

/// Split a conjunction into its conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Rule 1: sink selections as deep as possible.
fn push_down_filters(plan: LogicalPlan, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Select { input, predicate } => {
            let input = push_down_filters(*input, catalog)?;
            push_predicate(input, split_conjuncts(&predicate), catalog)
        }
        LogicalPlan::Project { input, exprs } => Ok(LogicalPlan::Project {
            input: Box::new(push_down_filters(*input, catalog)?),
            exprs,
        }),
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => Ok(LogicalPlan::Join {
            left: Box::new(push_down_filters(*left, catalog)?),
            right: Box::new(push_down_filters(*right, catalog)?),
            on,
            join_type,
        }),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(*input, catalog)?),
            group_by,
            aggs,
        }),
        LogicalPlan::Order { input, keys } => Ok(LogicalPlan::Order {
            input: Box::new(push_down_filters(*input, catalog)?),
            keys,
        }),
        LogicalPlan::TopN { input, keys, n } => Ok(LogicalPlan::TopN {
            input: Box::new(push_down_filters(*input, catalog)?),
            keys,
            n,
        }),
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(push_down_filters(*input, catalog)?),
        }),
        leaf @ LogicalPlan::TableScan { .. } => Ok(leaf),
    }
}

/// Push a set of conjuncts into `input`, reassembling a `Select` above for
/// whatever cannot sink.
fn push_predicate(
    input: LogicalPlan,
    conjuncts: Vec<Expr>,
    catalog: &dyn Catalog,
) -> Result<LogicalPlan> {
    match input {
        // Merge adjacent selects, then continue through the lower one's input.
        LogicalPlan::Select {
            input: inner,
            predicate,
        } => {
            let mut all = conjuncts;
            all.extend(split_conjuncts(&predicate));
            push_predicate(*inner, all, catalog)
        }
        LogicalPlan::Project {
            input: inner,
            exprs,
        } => {
            // A conjunct sinks when every column it uses is a pass-through
            // column reference in the projection.
            let mut below = Vec::new();
            let mut above = Vec::new();
            'c: for c in conjuncts {
                let mut renames = std::collections::BTreeMap::new();
                for used in c.columns() {
                    match exprs.iter().find(|(_, n)| *n == used) {
                        Some((Expr::Column(src), _)) => {
                            renames.insert(used.clone(), src.clone());
                        }
                        _ => {
                            above.push(c);
                            continue 'c;
                        }
                    }
                }
                below.push(c.rename_columns(&move |n: &str| {
                    renames.get(n).cloned().unwrap_or_else(|| n.to_string())
                }));
            }
            let mut new_input = *inner;
            if !below.is_empty() {
                new_input = push_predicate(new_input, below, catalog)?;
            }
            let projected = LogicalPlan::Project {
                input: Box::new(new_input),
                exprs,
            };
            Ok(wrap_select(projected, above))
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let ls = left.schema(catalog)?;
            let rs = right.schema(catalog)?;
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut above = Vec::new();
            for c in conjuncts {
                let cols = c.columns();
                let all_left = cols.iter().all(|c| ls.contains(c));
                let all_right = cols.iter().all(|c| rs.contains(c));
                if all_left {
                    to_left.push(c);
                } else if all_right && join_type == JoinType::Inner {
                    // For LEFT joins, filtering the preserved side's NULLs
                    // must happen above; only inner joins sink right-side
                    // predicates.
                    to_right.push(c);
                } else {
                    above.push(c);
                }
            }
            let mut l = *left;
            if !to_left.is_empty() {
                l = push_predicate(l, to_left, catalog)?;
            }
            let mut r = *right;
            if !to_right.is_empty() {
                r = push_predicate(r, to_right, catalog)?;
            }
            let joined = LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                on,
                join_type,
            };
            Ok(wrap_select(joined, above))
        }
        LogicalPlan::Aggregate {
            input: inner,
            group_by,
            aggs,
        } => {
            // Conjuncts over pass-through group columns sink below the
            // aggregate (classic group-key pushdown).
            let mut below = Vec::new();
            let mut above = Vec::new();
            'c: for c in conjuncts {
                let mut renames = std::collections::BTreeMap::new();
                for used in c.columns() {
                    match group_by.iter().find(|(_, n)| *n == used) {
                        Some((Expr::Column(src), _)) => {
                            renames.insert(used.clone(), src.clone());
                        }
                        _ => {
                            above.push(c);
                            continue 'c;
                        }
                    }
                }
                below.push(c.rename_columns(&move |n: &str| {
                    renames.get(n).cloned().unwrap_or_else(|| n.to_string())
                }));
            }
            let mut new_input = *inner;
            if !below.is_empty() {
                new_input = push_predicate(new_input, below, catalog)?;
            }
            let agg = LogicalPlan::Aggregate {
                input: Box::new(new_input),
                group_by,
                aggs,
            };
            Ok(wrap_select(agg, above))
        }
        LogicalPlan::Order { input: inner, keys } => {
            // Filtering commutes with sorting.
            let pushed = push_predicate(*inner, conjuncts, catalog)?;
            Ok(LogicalPlan::Order {
                input: Box::new(pushed),
                keys,
            })
        }
        // TopN truncates: filtering before vs after differs. Stay above.
        topn @ LogicalPlan::TopN { .. } => Ok(wrap_select(topn, conjuncts)),
        other => Ok(wrap_select(other, conjuncts)),
    }
}

fn wrap_select(input: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    if conjuncts.is_empty() {
        input
    } else {
        LogicalPlan::Select {
            input: Box::new(input),
            predicate: and_all(conjuncts),
        }
    }
}

/// Rule 2: column pruning with join culling.
///
/// `required = None` means "all output columns are needed" (the root).
fn prune_columns(
    plan: LogicalPlan,
    required: Option<BTreeSet<String>>,
    catalog: &dyn Catalog,
    config: &OptimizerConfig,
) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::TableScan { table, projection } => {
            let req = match required {
                None => return Ok(LogicalPlan::TableScan { table, projection }),
                Some(r) => r,
            };
            let meta = catalog.table_meta(&table)?;
            let mut cols: Vec<String> = meta
                .schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .filter(|n| req.contains(n))
                .collect();
            if cols.is_empty() {
                // Keep one (cheapest) column so row count survives COUNT(*).
                if let Some(f) = meta.schema.fields().first() {
                    cols.push(f.name.clone());
                }
            }
            // Respect an existing narrower projection.
            if let Some(existing) = projection {
                cols.retain(|c| existing.contains(c));
                if cols.is_empty() {
                    cols = existing;
                }
            }
            Ok(LogicalPlan::TableScan {
                table,
                projection: Some(cols),
            })
        }
        LogicalPlan::Select { input, predicate } => {
            let child_req = required.map(|mut r| {
                r.extend(predicate.columns());
                r
            });
            Ok(LogicalPlan::Select {
                input: Box::new(prune_columns(*input, child_req, catalog, config)?),
                predicate,
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let kept: Vec<(Expr, String)> = match &required {
                None => exprs,
                Some(r) => {
                    let filtered: Vec<_> = exprs
                        .iter()
                        .filter(|(_, n)| r.contains(n))
                        .cloned()
                        .collect();
                    if filtered.is_empty() {
                        exprs
                    } else {
                        filtered
                    }
                }
            };
            let mut child_req = BTreeSet::new();
            for (e, _) in &kept {
                child_req.extend(e.columns());
            }
            Ok(LogicalPlan::Project {
                input: Box::new(prune_columns(*input, Some(child_req), catalog, config)?),
                exprs: kept,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let kept_aggs = match &required {
                None => aggs,
                Some(r) => aggs.into_iter().filter(|a| r.contains(&a.alias)).collect(),
            };
            let mut child_req = BTreeSet::new();
            for (e, _) in &group_by {
                child_req.extend(e.columns());
            }
            for a in &kept_aggs {
                if let Some(arg) = &a.arg {
                    child_req.extend(arg.columns());
                }
            }
            Ok(LogicalPlan::Aggregate {
                input: Box::new(prune_columns(*input, Some(child_req), catalog, config)?),
                group_by,
                aggs: kept_aggs,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            let ls = left.schema(catalog)?;
            let rs = right.schema(catalog)?;
            // Columns each side must produce for the consumer.
            let (left_out, right_out): (BTreeSet<String>, BTreeSet<String>) = match &required {
                None => (
                    ls.names().iter().map(|s| s.to_string()).collect(),
                    rs.names().iter().map(|s| s.to_string()).collect(),
                ),
                Some(r) => (
                    r.iter().filter(|c| ls.contains(c)).cloned().collect(),
                    r.iter().filter(|c| rs.contains(c)).cloned().collect(),
                ),
            };

            // Join culling (Sect. 4.1.2): drop a side that contributes no
            // required output columns when doing so cannot change the rows of
            // the surviving side.
            if config.enable_join_culling && required.is_some() {
                let right_unique = unique_columns(&right, catalog)?;
                let right_key_unique =
                    !on.is_empty() && on.iter().all(|(_, r)| right_unique.contains(r));
                let can_cull_right = right_out.is_empty()
                    && right_key_unique
                    && (join_type == JoinType::Left
                        || (join_type == JoinType::Inner && config.assume_referential_integrity));
                if can_cull_right {
                    return prune_columns(*left, required, catalog, config);
                }
                let left_unique = unique_columns(&left, catalog)?;
                let left_key_unique =
                    !on.is_empty() && on.iter().all(|(l, _)| left_unique.contains(l));
                let can_cull_left = left_out.is_empty()
                    && left_key_unique
                    && join_type == JoinType::Inner
                    && config.assume_referential_integrity;
                if can_cull_left {
                    return prune_columns(*right, required, catalog, config);
                }
            }

            let mut lreq = left_out;
            let mut rreq = right_out;
            for (l, r) in &on {
                lreq.insert(l.clone());
                rreq.insert(r.clone());
            }
            Ok(LogicalPlan::Join {
                left: Box::new(prune_columns(*left, Some(lreq), catalog, config)?),
                right: Box::new(prune_columns(*right, Some(rreq), catalog, config)?),
                on,
                join_type,
            })
        }
        LogicalPlan::Order { input, keys } => {
            let child_req = required.map(|mut r| {
                r.extend(keys.iter().map(|k| k.column.clone()));
                r
            });
            Ok(LogicalPlan::Order {
                input: Box::new(prune_columns(*input, child_req, catalog, config)?),
                keys,
            })
        }
        LogicalPlan::TopN { input, keys, n } => {
            let child_req = required.map(|mut r| {
                r.extend(keys.iter().map(|k| k.column.clone()));
                r
            });
            Ok(LogicalPlan::TopN {
                input: Box::new(prune_columns(*input, child_req, catalog, config)?),
                keys,
                n,
            })
        }
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(prune_columns(*input, required, catalog, config)?),
        }),
    }
}

/// Rule 3: drop `Order` nodes whose effect is destroyed or superseded above.
fn strip_redundant_orders(plan: LogicalPlan, order_irrelevant: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Order { input, keys } => {
            if order_irrelevant {
                strip_redundant_orders(*input, true)
            } else {
                LogicalPlan::Order {
                    // Anything sorted below this Order is re-sorted here.
                    input: Box::new(strip_redundant_orders(*input, true)),
                    keys,
                }
            }
        }
        LogicalPlan::TopN { input, keys, n } => LogicalPlan::TopN {
            input: Box::new(strip_redundant_orders(*input, true)),
            keys,
            n,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(strip_redundant_orders(*input, true)),
            group_by,
            aggs,
        },
        LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
            input: Box::new(strip_redundant_orders(*input, order_irrelevant)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(strip_redundant_orders(*input, order_irrelevant)),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => LogicalPlan::Join {
            // The build (right) side's order never matters for a hash join.
            left: Box::new(strip_redundant_orders(*left, order_irrelevant)),
            right: Box::new(strip_redundant_orders(*right, true)),
            on,
            join_type,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(strip_redundant_orders(*input, true)),
        },
        leaf @ LogicalPlan::TableScan { .. } => leaf,
    }
}

/// Physical-level rule (the compression-aware scan path): move sargable
/// conjuncts from a `Filter` into the `Scan` directly beneath it. Pushed
/// conjuncts are evaluated *before* chunk materialization — against zone
/// maps (whole-block skip), dictionary codes, or RLE runs — so the scan
/// only decodes surviving rows. A conjunct qualifies when it references
/// exactly one column of the scanned table and has an IndexTable-supported
/// shape (comparison/IN/BETWEEN against the column, or a null test).
/// Non-sargable residue stays in the Filter; the Filter disappears when
/// everything was pushed.
///
/// Runs between `create_physical` and `parallelize`, so parallel plans
/// inherit pushed predicates in every scan branch.
pub fn push_scan_predicates(plan: PhysPlan) -> PhysPlan {
    match plan {
        PhysPlan::Filter { input, predicate } => {
            let input = push_scan_predicates(*input);
            if let PhysPlan::Scan {
                table,
                ranges,
                projection,
                via_rle_index,
                mut pushed,
            } = input
            {
                let (push, keep): (Vec<Expr>, Vec<Expr>) = split_conjuncts(&predicate)
                    .into_iter()
                    .partition(|c| scan_sargable(c, &table));
                pushed.extend(push);
                let scan = PhysPlan::Scan {
                    table,
                    ranges,
                    projection,
                    via_rle_index,
                    pushed,
                };
                if keep.is_empty() {
                    scan
                } else {
                    PhysPlan::Filter {
                        input: Box::new(scan),
                        predicate: and_all(keep),
                    }
                }
            } else {
                PhysPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        PhysPlan::Project { input, exprs } => PhysPlan::Project {
            input: Box::new(push_scan_predicates(*input)),
            exprs,
        },
        PhysPlan::HashJoin {
            probe,
            build,
            probe_keys,
            join_type,
        } => {
            // The build side is wrapped in a fresh shared cell; the pass runs
            // before any execution, so no built hash table is lost.
            let rebuilt = BuildSide::new(
                push_scan_predicates(build.plan.clone()),
                std::sync::Arc::clone(&build.schema),
                build.key_cols.clone(),
            )
            .with_kernels(build.kernels);
            PhysPlan::HashJoin {
                probe: Box::new(push_scan_predicates(*probe)),
                build: std::sync::Arc::new(rebuilt),
                probe_keys,
                join_type,
            }
        }
        PhysPlan::HashAgg {
            input,
            group_by,
            aggs,
            mode,
            kernels,
        } => PhysPlan::HashAgg {
            input: Box::new(push_scan_predicates(*input)),
            group_by,
            aggs,
            mode,
            kernels,
        },
        PhysPlan::StreamAgg {
            input,
            group_by,
            aggs,
        } => PhysPlan::StreamAgg {
            input: Box::new(push_scan_predicates(*input)),
            group_by,
            aggs,
        },
        PhysPlan::Sort { input, keys } => PhysPlan::Sort {
            input: Box::new(push_scan_predicates(*input)),
            keys,
        },
        PhysPlan::TopN { input, keys, n } => PhysPlan::TopN {
            input: Box::new(push_scan_predicates(*input)),
            keys,
            n,
        },
        PhysPlan::Exchange { inputs, ordered } => PhysPlan::Exchange {
            inputs: inputs.into_iter().map(push_scan_predicates).collect(),
            ordered,
        },
        leaf @ (PhysPlan::Scan { .. } | PhysPlan::RunAgg { .. }) => leaf,
    }
}

/// Can this conjunct be answered inside the scan of `table`? Either a run
/// predicate (`col cmp literal` and friends) or a monotone arithmetic
/// comparison (`col + 1 > k`) over a numeric column — the latter evaluates
/// through the full engine inside the scan and prunes blocks via interval
/// arithmetic on the zone maps.
fn scan_sargable(e: &Expr, table: &tabviz_storage::Table) -> bool {
    let cols = e.columns();
    if cols.len() != 1 {
        return false;
    }
    let name = cols.iter().next().unwrap();
    let Ok(idx) = table.schema().index_of(name) else {
        return false;
    };
    crate::physical::supported_run_predicate(e)
        || crate::exec::scan_filter::arith_comparison_sargable(e, table.schema().field(idx).dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_tql::catalog::{MemoryCatalog, TableMeta};
    use tabviz_tql::expr::{bin, col, lit};
    use tabviz_tql::{AggCall, AggFunc, SortKey};

    fn catalog() -> MemoryCatalog {
        let mut cat = MemoryCatalog::new();
        let fact = Arc::new(
            Schema::new(vec![
                Field::new("carrier", DataType::Str),
                Field::new("origin", DataType::Str),
                Field::new("delay", DataType::Int),
            ])
            .unwrap(),
        );
        cat.add("flights", TableMeta::new(fact, 100_000));
        let dim = Arc::new(
            Schema::new(vec![
                Field::new("code", DataType::Str),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        );
        let mut meta = TableMeta::new(dim, 20);
        meta.unique_columns = std::iter::once("code".to_string()).collect();
        cat.add("carriers", meta);
        cat
    }

    fn opt(plan: LogicalPlan) -> LogicalPlan {
        optimize(plan, &catalog(), &OptimizerConfig::default()).unwrap()
    }

    #[test]
    fn filter_sinks_below_project_and_order() {
        let plan = LogicalPlan::scan("flights")
            .project(vec![
                (col("carrier"), "c".into()),
                (col("delay"), "d".into()),
            ])
            .order(vec![SortKey::asc("c")])
            .select(bin(BinOp::Gt, col("d"), lit(10i64)));
        let optimized = opt(plan);
        let text = optimized.canonical_text();
        // Select ends up directly above the scan, renamed back to `delay`.
        let select_pos = text.find("Select ([delay] > 10)").expect("pushed select");
        let scan_pos = text.find("TableScan").unwrap();
        let project_pos = text.find("Project").unwrap();
        assert!(select_pos < scan_pos);
        assert!(project_pos < select_pos);
    }

    #[test]
    fn filter_splits_across_join() {
        let plan = LogicalPlan::scan("flights")
            .join(
                LogicalPlan::scan("carriers"),
                vec![("carrier".into(), "code".into())],
                JoinType::Inner,
            )
            .select(and_all(vec![
                bin(BinOp::Gt, col("delay"), lit(10i64)),
                bin(BinOp::Eq, col("name"), lit("American")),
            ]));
        let optimized = opt(plan);
        let text = optimized.canonical_text();
        assert!(text.contains("Select ([delay] > 10)"));
        assert!(text.contains("Select ([name] = 'American')"));
        // Neither select remains above the join.
        assert!(text.find("Join").unwrap() < text.find("Select").unwrap());
    }

    #[test]
    fn left_join_right_filter_stays_above() {
        let plan = LogicalPlan::scan("flights")
            .join(
                LogicalPlan::scan("carriers"),
                vec![("carrier".into(), "code".into())],
                JoinType::Left,
            )
            .select(bin(BinOp::Eq, col("name"), lit("American")));
        let optimized = opt(plan);
        let text = optimized.canonical_text();
        assert!(text.find("Select").unwrap() < text.find("Join").unwrap());
    }

    #[test]
    fn group_key_filter_sinks_below_aggregate() {
        let plan = LogicalPlan::scan("flights")
            .aggregate(
                vec![(col("carrier"), "carrier".into())],
                vec![AggCall::new(AggFunc::Count, None, "n")],
            )
            .select(bin(BinOp::Eq, col("carrier"), lit("AA")));
        let text = opt(plan).canonical_text();
        let agg_pos = text.find("Aggregate").unwrap();
        let sel_pos = text.find("Select").unwrap();
        assert!(
            agg_pos < sel_pos,
            "filter should sink below aggregate:\n{text}"
        );
    }

    #[test]
    fn agg_output_filter_stays_above() {
        let plan = LogicalPlan::scan("flights")
            .aggregate(
                vec![(col("carrier"), "carrier".into())],
                vec![AggCall::new(AggFunc::Count, None, "n")],
            )
            .select(bin(BinOp::Gt, col("n"), lit(100i64)));
        let text = opt(plan).canonical_text();
        assert!(text.find("Select").unwrap() < text.find("Aggregate").unwrap());
    }

    #[test]
    fn scan_projection_narrows() {
        let plan = LogicalPlan::scan("flights").aggregate(
            vec![(col("carrier"), "carrier".into())],
            vec![AggCall::new(AggFunc::Avg, Some(col("delay")), "d")],
        );
        let text = opt(plan).canonical_text();
        assert!(
            text.contains("TableScan flights [carrier, delay]"),
            "{text}"
        );
    }

    #[test]
    fn count_star_keeps_one_column() {
        let plan = LogicalPlan::scan("flights")
            .aggregate(vec![], vec![AggCall::new(AggFunc::Count, None, "n")]);
        let text = opt(plan).canonical_text();
        assert!(text.contains("TableScan flights [carrier]"), "{text}");
    }

    #[test]
    fn dimension_join_culled_for_domain_query() {
        // Domain query: distinct carriers from the fact table joined to the
        // carriers dimension — the dimension contributes nothing and is
        // culled (Sect. 4.1.2's join culling).
        let plan = LogicalPlan::scan("flights")
            .join(
                LogicalPlan::scan("carriers"),
                vec![("carrier".into(), "code".into())],
                JoinType::Inner,
            )
            .aggregate(vec![(col("carrier"), "carrier".into())], vec![]);
        let text = opt(plan).canonical_text();
        assert!(!text.contains("Join"), "join should be culled:\n{text}");
        assert!(!text.contains("carriers"));
    }

    #[test]
    fn fact_culled_for_dimension_domain_query() {
        // Domain of the dimension's name column: the fact side is only there
        // for the join; with RI assumed and a unique fact-side key the fact
        // table is removed ("removal of the fact table ... for domain
        // queries"). Here the fact side key is made unique by aggregation.
        let fact_keys = LogicalPlan::scan("flights")
            .aggregate(vec![(col("carrier"), "carrier".into())], vec![]);
        let plan = fact_keys
            .join(
                LogicalPlan::scan("carriers"),
                vec![("carrier".into(), "code".into())],
                JoinType::Inner,
            )
            .aggregate(vec![(col("name"), "name".into())], vec![]);
        let text = opt(plan).canonical_text();
        assert!(!text.contains("flights"), "fact should be culled:\n{text}");
    }

    #[test]
    fn join_not_culled_without_uniqueness() {
        // flights-side key is NOT unique: culling the right side of
        // carriers⋈flights would change cardinality, so the join stays.
        let plan = LogicalPlan::scan("carriers")
            .join(
                LogicalPlan::scan("flights"),
                vec![("code".into(), "carrier".into())],
                JoinType::Inner,
            )
            .aggregate(vec![(col("name"), "name".into())], vec![]);
        let text = opt(plan).canonical_text();
        assert!(text.contains("Join"), "{text}");
    }

    #[test]
    fn culling_can_be_disabled() {
        let plan = LogicalPlan::scan("flights")
            .join(
                LogicalPlan::scan("carriers"),
                vec![("carrier".into(), "code".into())],
                JoinType::Inner,
            )
            .aggregate(vec![(col("carrier"), "carrier".into())], vec![]);
        let cfg = OptimizerConfig {
            enable_join_culling: false,
            ..Default::default()
        };
        let text = optimize(plan, &catalog(), &cfg).unwrap().canonical_text();
        assert!(text.contains("Join"));
    }

    #[test]
    fn redundant_orders_removed() {
        let plan = LogicalPlan::scan("flights")
            .order(vec![SortKey::asc("delay")])
            .aggregate(
                vec![(col("carrier"), "carrier".into())],
                vec![AggCall::new(AggFunc::Count, None, "n")],
            )
            .order(vec![SortKey::desc("n")]);
        let text = opt(plan).canonical_text();
        assert_eq!(text.matches("Order").count(), 1, "{text}");
        assert!(text.contains("Order n DESC"));
    }

    #[test]
    fn order_under_order_removed() {
        let plan = LogicalPlan::scan("flights")
            .order(vec![SortKey::asc("delay")])
            .order(vec![SortKey::asc("carrier")]);
        let text = opt(plan).canonical_text();
        assert_eq!(text.matches("Order").count(), 1);
        assert!(text.contains("Order carrier ASC"));
    }
}
