//! Classic compiler rewrites.
//!
//! Sect. 4.1.2: "the compiler also performs classic rewrites of the tree, for
//! example, expressing SELECT DISTINCT as a GROUP BY query." This module also
//! performs constant folding and predicate simplification — the paper's query
//! processor applies "predicate simplification" before dialect generation
//! (Sect. 3.1), and notes that such simplification can make *different*
//! internal queries compile to the *same* text, which is exactly what the
//! literal query cache catches (Sect. 3.2).

use tabviz_common::{Result, Value};
use tabviz_tql::expr::Expr;
use tabviz_tql::{BinOp, Catalog, LogicalPlan, UnaryOp};

/// Run all compile-time rewrites.
pub fn compile(plan: LogicalPlan, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    let plan = rewrite_distinct(plan, catalog)?;
    simplify_plan(plan)
}

/// Rewrite `Distinct` into a grouping aggregate over all output columns.
pub fn rewrite_distinct(plan: LogicalPlan, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Distinct { input } => {
            let input = rewrite_distinct(*input, catalog)?;
            let schema = input.schema(catalog)?;
            let group_by = schema
                .fields()
                .iter()
                .map(|f| (Expr::Column(f.name.clone()), f.name.clone()))
                .collect();
            LogicalPlan::Aggregate {
                input: Box::new(input),
                group_by,
                aggs: vec![],
            }
        }
        LogicalPlan::TableScan { .. } => plan,
        LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
            input: Box::new(rewrite_distinct(*input, catalog)?),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite_distinct(*input, catalog)?),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => LogicalPlan::Join {
            left: Box::new(rewrite_distinct(*left, catalog)?),
            right: Box::new(rewrite_distinct(*right, catalog)?),
            on,
            join_type,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_distinct(*input, catalog)?),
            group_by,
            aggs,
        },
        LogicalPlan::Order { input, keys } => LogicalPlan::Order {
            input: Box::new(rewrite_distinct(*input, catalog)?),
            keys,
        },
        LogicalPlan::TopN { input, keys, n } => LogicalPlan::TopN {
            input: Box::new(rewrite_distinct(*input, catalog)?),
            keys,
            n,
        },
    })
}

/// Fold constants and simplify boolean structure throughout the plan; drop
/// `Select TRUE` nodes entirely.
pub fn simplify_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Select { input, predicate } => {
            let input = simplify_plan(*input)?;
            let predicate = simplify_expr(predicate);
            if predicate == Expr::Literal(Value::Bool(true)) {
                input
            } else {
                LogicalPlan::Select {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(simplify_plan(*input)?),
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (simplify_expr(e), n))
                .collect(),
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => LogicalPlan::Join {
            left: Box::new(simplify_plan(*left)?),
            right: Box::new(simplify_plan(*right)?),
            on,
            join_type,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(simplify_plan(*input)?),
            group_by: group_by
                .into_iter()
                .map(|(e, n)| (simplify_expr(e), n))
                .collect(),
            aggs,
        },
        LogicalPlan::Order { input, keys } => LogicalPlan::Order {
            input: Box::new(simplify_plan(*input)?),
            keys,
        },
        LogicalPlan::TopN { input, keys, n } => LogicalPlan::TopN {
            input: Box::new(simplify_plan(*input)?),
            keys,
            n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(simplify_plan(*input)?),
        },
        leaf @ LogicalPlan::TableScan { .. } => leaf,
    })
}

/// Bottom-up expression simplification: constant folding plus boolean
/// identities (`TRUE AND p → p`, `FALSE AND p → FALSE`, `NOT NOT p → p`,
/// single-element IN → equality).
pub fn simplify_expr(e: Expr) -> Expr {
    // Fold entire constant subtrees first.
    if let Some(v) = e.const_eval() {
        return Expr::Literal(v);
    }
    match e {
        Expr::Binary { op, left, right } => {
            let l = simplify_expr(*left);
            let r = simplify_expr(*right);
            match op {
                BinOp::And => match (&l, &r) {
                    (Expr::Literal(Value::Bool(true)), _) => r,
                    (_, Expr::Literal(Value::Bool(true))) => l,
                    (Expr::Literal(Value::Bool(false)), _)
                    | (_, Expr::Literal(Value::Bool(false))) => Expr::Literal(Value::Bool(false)),
                    _ => Expr::Binary {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                },
                BinOp::Or => match (&l, &r) {
                    (Expr::Literal(Value::Bool(false)), _) => r,
                    (_, Expr::Literal(Value::Bool(false))) => l,
                    (Expr::Literal(Value::Bool(true)), _)
                    | (_, Expr::Literal(Value::Bool(true))) => Expr::Literal(Value::Bool(true)),
                    _ => Expr::Binary {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                },
                _ => Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                },
            }
        }
        Expr::Unary { op, expr } => {
            let inner = simplify_expr(*expr);
            if op == UnaryOp::Not {
                if let Expr::Unary {
                    op: UnaryOp::Not,
                    expr: inner2,
                } = inner
                {
                    return *inner2;
                }
            }
            Expr::Unary {
                op,
                expr: Box::new(inner),
            }
        }
        Expr::In {
            expr,
            mut list,
            negated,
        } => {
            let inner = simplify_expr(*expr);
            list.sort();
            list.dedup();
            if list.len() == 1 && !negated {
                return Expr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(inner),
                    right: Box::new(Expr::Literal(list.pop().unwrap())),
                };
            }
            Expr::In {
                expr: Box::new(inner),
                list,
                negated,
            }
        }
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Box::new(simplify_expr(*expr)),
            low,
            high,
        },
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args.into_iter().map(simplify_expr).collect(),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabviz_common::{DataType, Field, Schema};
    use tabviz_tql::catalog::{MemoryCatalog, TableMeta};
    use tabviz_tql::expr::{bin, col, lit};

    fn catalog() -> MemoryCatalog {
        let mut cat = MemoryCatalog::new();
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("a", DataType::Str),
                Field::new("b", DataType::Int),
            ])
            .unwrap(),
        );
        cat.add("t", TableMeta::new(schema, 10));
        cat
    }

    #[test]
    fn distinct_becomes_group_by() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t").distinct();
        let compiled = compile(plan, &cat).unwrap();
        match compiled {
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                assert_eq!(group_by.len(), 2);
                assert!(aggs.is_empty());
            }
            other => panic!("expected aggregate, got {other}"),
        }
    }

    #[test]
    fn constant_predicates_fold() {
        let e = bin(BinOp::Gt, bin(BinOp::Add, lit(1i64), lit(1i64)), lit(1i64));
        assert_eq!(simplify_expr(e), lit(true));
    }

    #[test]
    fn select_true_is_dropped() {
        let cat = catalog();
        let plan = LogicalPlan::scan("t").select(bin(
            BinOp::Or,
            bin(BinOp::Eq, col("a"), lit("x")),
            lit(true),
        ));
        let compiled = compile(plan, &cat).unwrap();
        assert_eq!(compiled, LogicalPlan::scan("t"));
    }

    #[test]
    fn and_or_identities() {
        let p = bin(BinOp::Eq, col("a"), lit("x"));
        assert_eq!(simplify_expr(bin(BinOp::And, lit(true), p.clone())), p);
        assert_eq!(
            simplify_expr(bin(BinOp::And, p.clone(), lit(false))),
            lit(false)
        );
        assert_eq!(simplify_expr(bin(BinOp::Or, lit(false), p.clone())), p);
        assert_eq!(
            simplify_expr(bin(BinOp::Or, p.clone(), lit(true))),
            lit(true)
        );
    }

    #[test]
    fn double_negation_and_singleton_in() {
        let p = bin(BinOp::Eq, col("a"), lit("x"));
        let nn = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(p.clone()),
            }),
        };
        assert_eq!(simplify_expr(nn), p);
        let single_in = Expr::In {
            expr: Box::new(col("a")),
            list: vec!["x".into(), "x".into()],
            negated: false,
        };
        assert_eq!(simplify_expr(single_in), bin(BinOp::Eq, col("a"), lit("x")));
    }

    #[test]
    fn in_list_dedup_and_sort_normalizes_text() {
        // Two differently-written IN lists end up with identical canonical
        // text — the literal-cache collision scenario from Sect. 3.2.
        let a = Expr::In {
            expr: Box::new(col("a")),
            list: vec!["b".into(), "a".into(), "b".into()],
            negated: false,
        };
        let b = Expr::In {
            expr: Box::new(col("a")),
            list: vec!["a".into(), "b".into()],
            negated: false,
        };
        assert_eq!(simplify_expr(a).to_string(), simplify_expr(b).to_string());
    }
}
