//! Gold-model oracle: random tables + random aggregate-select queries,
//! evaluated by a naive row-at-a-time reference implementation and by the
//! TDE (serial and parallel). Results must match exactly.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tabviz_common::{Chunk, DataType, Field, Schema, Value};
use tabviz_storage::{Database, Table};
use tabviz_tde::cost::CostProfile;
use tabviz_tde::parallel::ParallelOptions;
use tabviz_tde::{ExecOptions, Tde};
use tabviz_tql::expr::{bin, col, lit, Expr};
use tabviz_tql::{AggCall, AggFunc, BinOp, LogicalPlan};

#[derive(Debug, Clone)]
struct Row {
    k: String,
    g: i64,
    v: Option<i64>,
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            proptest::sample::select(vec!["a", "b", "c", "d"]),
            0i64..4,
            proptest::option::of(-20i64..20),
        ),
        0..120,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(k, g, v)| Row {
                k: k.to_string(),
                g,
                v,
            })
            .collect()
    })
}

#[derive(Debug, Clone)]
enum Filt {
    None,
    KeyEq(String),
    GLt(i64),
    VGe(i64),
}

fn arb_filter() -> impl Strategy<Value = Filt> {
    prop_oneof![
        Just(Filt::None),
        proptest::sample::select(vec!["a", "b", "z"]).prop_map(|s| Filt::KeyEq(s.to_string())),
        (0i64..4).prop_map(Filt::GLt),
        (-10i64..10).prop_map(Filt::VGe),
    ]
}

impl Filt {
    fn keep(&self, r: &Row) -> bool {
        match self {
            Filt::None => true,
            Filt::KeyEq(s) => r.k == *s,
            Filt::GLt(x) => r.g < *x,
            Filt::VGe(x) => r.v.is_some_and(|v| v >= *x),
        }
    }

    fn expr(&self) -> Option<Expr> {
        Some(match self {
            Filt::None => return None,
            Filt::KeyEq(s) => bin(BinOp::Eq, col("k"), lit(s.as_str())),
            Filt::GLt(x) => bin(BinOp::Lt, col("g"), lit(*x)),
            Filt::VGe(x) => bin(BinOp::Ge, col("v"), lit(*x)),
        })
    }
}

/// Naive reference: filter rows, group by chosen keys, compute aggregates.
fn reference(rows: &[Row], filt: &Filt, by_key: bool, by_g: bool) -> Vec<Vec<Value>> {
    let mut groups: BTreeMap<(Option<String>, Option<i64>), Vec<&Row>> = BTreeMap::new();
    for r in rows.iter().filter(|r| filt.keep(r)) {
        let key = (by_key.then(|| r.k.clone()), by_g.then_some(r.g));
        groups.entry(key).or_default().push(r);
    }
    let mut out = Vec::new();
    for ((k, g), members) in groups {
        let mut row = Vec::new();
        if let Some(k) = k {
            row.push(Value::Str(k));
        }
        if let Some(g) = g {
            row.push(Value::Int(g));
        }
        // COUNT(*)
        row.push(Value::Int(members.len() as i64));
        // SUM(v)
        let vs: Vec<i64> = members.iter().filter_map(|r| r.v).collect();
        row.push(if vs.is_empty() {
            Value::Null
        } else {
            Value::Int(vs.iter().sum())
        });
        // MIN(v)
        row.push(
            vs.iter()
                .min()
                .map(|&m| Value::Int(m))
                .unwrap_or(Value::Null),
        );
        // AVG(v)
        row.push(if vs.is_empty() {
            Value::Null
        } else {
            Value::Real(vs.iter().sum::<i64>() as f64 / vs.len() as f64)
        });
        // COUNTD(k) within group
        let mut ks: Vec<&str> = members.iter().map(|r| r.k.as_str()).collect();
        ks.sort();
        ks.dedup();
        row.push(Value::Int(ks.len() as i64));
        out.push(row);
    }
    out
}

fn table_of(rows: &[Row], sorted: bool) -> Arc<Database> {
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ])
        .unwrap(),
    );
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            vec![
                Value::Str(r.k.clone()),
                Value::Int(r.g),
                r.v.map(Value::Int).unwrap_or(Value::Null),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(schema, &data).unwrap();
    let keys: &[&str] = if sorted { &["k"] } else { &[] };
    let db = Arc::new(Database::new("oracle"));
    db.put(Table::from_chunk("t", &chunk, keys).unwrap())
        .unwrap();
    db
}

fn engine_query(
    db: Arc<Database>,
    filt: &Filt,
    by_key: bool,
    by_g: bool,
    opts: &ExecOptions,
) -> Vec<Vec<Value>> {
    let mut plan = LogicalPlan::scan("t");
    if let Some(f) = filt.expr() {
        plan = plan.select(f);
    }
    let mut group_by = Vec::new();
    if by_key {
        group_by.push((col("k"), "k".to_string()));
    }
    if by_g {
        group_by.push((col("g"), "g".to_string()));
    }
    let plan = plan.aggregate(
        group_by,
        vec![
            AggCall::new(AggFunc::Count, None, "n"),
            AggCall::new(AggFunc::Sum, Some(col("v")), "s"),
            AggCall::new(AggFunc::Min, Some(col("v")), "lo"),
            AggCall::new(AggFunc::Avg, Some(col("v")), "a"),
            AggCall::new(AggFunc::CountD, Some(col("k")), "dk"),
        ],
    );
    let tde = Tde::new(db);
    let mut rows = tde.execute_plan(&plan, opts).unwrap().to_rows();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_reference(
        rows in arb_rows(),
        filt in arb_filter(),
        by_key in any::<bool>(),
        by_g in any::<bool>(),
        sorted in any::<bool>(),
    ) {
        // Grouping by nothing = one global row; reference handles it too.
        let mut want = reference(&rows, &filt, by_key, by_g);
        want.sort();
        // Global aggregate on empty filtered input still yields one row.
        if want.is_empty() && !by_key && !by_g {
            want.push(vec![
                Value::Int(0),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Int(0),
            ]);
        }
        let db = table_of(&rows, sorted);

        let serial = engine_query(Arc::clone(&db), &filt, by_key, by_g, &ExecOptions::serial());
        prop_assert_eq!(&serial, &want, "serial diverged");

        let mut par = ExecOptions::default();
        par.parallel = ParallelOptions {
            profile: CostProfile { min_work_per_thread: 5, max_dop: 3 },
            range_partition_min_distinct_per_dop: 1,
            ..Default::default()
        };
        let parallel = engine_query(Arc::clone(&db), &filt, by_key, by_g, &par);
        prop_assert_eq!(&parallel, &want, "parallel diverged");

        let mut no_rle = ExecOptions::serial();
        no_rle.physical.enable_rle_index = false;
        no_rle.physical.enable_streaming_agg = false;
        let plain = engine_query(db, &filt, by_key, by_g, &no_rle);
        prop_assert_eq!(&plain, &want, "hash/no-rle diverged");
    }
}
