//! # tabviz
//!
//! A from-scratch Rust reproduction of the systems described in
//! *"On Improving User Response Times in Tableau"* (Terlecki et al.,
//! SIGMOD 2015): the dashboard query processor with its two-level query
//! caches, query fusion and batch processing; the Tableau Data Engine
//! column store with parallel plans and RLE index scans; shadow extracts for
//! text files; connection pooling over capability-described backends; and
//! the Data Server proxy with shared calculations, row-level security and
//! temporary tables.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use tabviz::prelude::*;
//!
//! // 1. Generate FAA-style flight data and load it into a TDE database.
//! let flights = tabviz::workloads::generate_flights(
//!     &tabviz::workloads::FaaConfig::with_rows(10_000),
//! ).unwrap();
//! let db = Arc::new(Database::new("faa"));
//! db.put(Table::from_chunk("flights", &flights, &["carrier"]).unwrap()).unwrap();
//!
//! // 2. Query it through the engine with TQL.
//! let tde = Tde::new(Arc::clone(&db));
//! let top = tde.query(
//!     "(topn 3 ((flights desc))
//!        (aggregate ((carrier)) ((count as flights)) (scan flights)))",
//! ).unwrap();
//! assert_eq!(top.len(), 3);
//!
//! // 3. Or drive a cached, pooled query processor over it.
//! let qp = QueryProcessor::default();
//! qp.registry.register(Arc::new(SimDb::new("faa", db, SimConfig::default())), 4);
//! let spec = QuerySpec::new("faa", LogicalPlan::scan("flights"))
//!     .group("carrier")
//!     .agg(AggCall::new(AggFunc::Count, None, "n"));
//! let (result, outcome) = qp.execute(&spec).unwrap();
//! assert_eq!(result.len(), 12);
//! assert_eq!(outcome, ExecOutcome::Remote);
//! let (_, again) = qp.execute(&spec).unwrap();
//! assert_eq!(again, ExecOutcome::IntelligentHit);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! experiment index mapping each paper claim to a bench target.

pub use tabviz_backend as backend;
pub use tabviz_cache as cache;
pub use tabviz_cluster as cluster;
pub use tabviz_common as common;
pub use tabviz_core as core;
pub use tabviz_dataserver as dataserver;
pub use tabviz_obs as obs;
pub use tabviz_sched as sched;
pub use tabviz_storage as storage;
pub use tabviz_tde as tde;
pub use tabviz_textscan as textscan;
pub use tabviz_tql as tql;
pub use tabviz_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use tabviz_backend::{
        Capabilities, ConnectionPool, DataSource, Dialect, FaultPlan, LatencyModel, RemoteQuery,
        ServerArchitecture, SimConfig, SimDb, TdeDataSource,
    };
    pub use tabviz_cache::{CacheOutcome, QueryCaches, QuerySpec};
    pub use tabviz_cluster::{Cluster, ClusterConfig, ClusterSession, HashRing, RouteKind};
    pub use tabviz_common::{
        Chunk, Collation, DataType, Field, Result, Schema, SchemaRef, TvError, Value,
    };
    pub use tabviz_core::{
        execute_batch, revalidate_pass, BatchOptions, Dashboard, DashboardState, ExecOutcome,
        FilterAction, MaintenanceLane, QueryProcessor, RevalidateOptions, Zone,
    };
    pub use tabviz_dataserver::{ClientQuery, DataServer, PublishedSource};
    pub use tabviz_obs::{ProfileOutcome, QueryProfile, Registry};
    pub use tabviz_sched::{AdmitRequest, Priority, SchedConfig, Scheduler};
    pub use tabviz_storage::{Database, Table};
    pub use tabviz_tde::{ExecOptions, Tde};
    pub use tabviz_textscan::{CsvOptions, ShadowExtracts};
    pub use tabviz_tql::{
        expr::{bin, col, lit},
        parse_plan, AggCall, AggFunc, BinOp, Expr, JoinType, LogicalPlan, SortKey,
    };
}
