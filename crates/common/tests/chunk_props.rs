//! Property tests for the columnar chunk algebra.

use proptest::prelude::*;
use std::sync::Arc;
use tabviz_common::{Chunk, DataType, Field, Schema, SchemaRef, Value};

fn schema() -> SchemaRef {
    Arc::new(
        Schema::new(vec![
            Field::new("s", DataType::Str),
            Field::new("i", DataType::Int),
            Field::new("r", DataType::Real),
        ])
        .unwrap(),
    )
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(
        (
            prop_oneof![
                3 => proptest::sample::select(vec!["a", "b", "c", ""]).prop_map(|s| Value::Str(s.into())),
                1 => Just(Value::Null),
            ],
            prop_oneof![3 => (-50i64..50).prop_map(Value::Int), 1 => Just(Value::Null)],
            prop_oneof![3 => (-5.0f64..5.0).prop_map(Value::Real), 1 => Just(Value::Null)],
        ),
        0..80,
    )
    .prop_map(|rows| rows.into_iter().map(|(a, b, c)| vec![a, b, c]).collect())
}

proptest! {
    #[test]
    fn rows_roundtrip(rows in arb_rows()) {
        let chunk = Chunk::from_rows(schema(), &rows).unwrap();
        prop_assert_eq!(chunk.to_rows(), rows);
    }

    #[test]
    fn filter_is_mask_semantics(rows in arb_rows(), seed in any::<u64>()) {
        let chunk = Chunk::from_rows(schema(), &rows).unwrap();
        let mask: Vec<bool> = (0..rows.len()).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let filtered = chunk.filter(&mask).unwrap();
        let expected: Vec<Vec<Value>> = rows
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(r, _)| r.clone())
            .collect();
        prop_assert_eq!(filtered.to_rows(), expected);
    }

    #[test]
    fn take_gathers(rows in arb_rows(), picks in proptest::collection::vec(0usize..80, 0..40)) {
        if rows.is_empty() {
            return Ok(());
        }
        let idx: Vec<usize> = picks.into_iter().map(|p| p % rows.len()).collect();
        let chunk = Chunk::from_rows(schema(), &rows).unwrap();
        let taken = chunk.take(&idx);
        let expected: Vec<Vec<Value>> = idx.iter().map(|&i| rows[i].clone()).collect();
        prop_assert_eq!(taken.to_rows(), expected);
    }

    #[test]
    fn slice_concat_identity(rows in arb_rows(), cut_frac in 0.0f64..1.0) {
        let chunk = Chunk::from_rows(schema(), &rows).unwrap();
        let cut = ((rows.len() as f64) * cut_frac) as usize;
        let left = chunk.slice(0, cut);
        let right = chunk.slice(cut, rows.len() - cut);
        let back = Chunk::concat(schema(), &[left, right]).unwrap();
        prop_assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn sort_is_stable_total_and_permutes(rows in arb_rows()) {
        let chunk = Chunk::from_rows(schema(), &rows).unwrap();
        let sorted = chunk.sort_by(&[(1, true), (0, false)]);
        // Same multiset of rows.
        let mut a = sorted.to_rows();
        let mut b = rows.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Non-decreasing in the primary key (nulls first).
        for w in 0..sorted.len().saturating_sub(1) {
            let x = sorted.row(w)[1].clone();
            let y = sorted.row(w + 1)[1].clone();
            prop_assert!(x <= y, "primary sort violated: {x:?} > {y:?}");
        }
    }

    #[test]
    fn project_keeps_columns(rows in arb_rows()) {
        let chunk = Chunk::from_rows(schema(), &rows).unwrap();
        let p = chunk.project(&[2, 0]);
        prop_assert_eq!(p.schema().names(), vec!["r", "s"]);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(p.row(i), vec![r[2].clone(), r[0].clone()]);
        }
    }
}
