//! Selection vectors: the qualifying-row set a predicate produces.
//!
//! A [`SelVec`] is either the compact "every row qualifies" form or a sorted
//! list of qualifying row ids (`u32`, matching the chunk row-count bound).
//! Operators evaluate predicates into a `SelVec` and iterate the survivors
//! directly, so an all-true residual costs nothing and a partial one costs
//! one id list instead of a rematerialized chunk.
//!
//! Contract:
//! * ids are strictly increasing and `< len` of the chunk they select from;
//! * `All(n)` and `Ids(0..n)` are semantically equal — producers should
//!   collapse to `All` when every row qualifies (see [`SelVec::from_mask`])
//!   so consumers can branch on [`SelVec::is_all`] for the no-copy path.

/// Qualifying rows of one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelVec {
    /// All rows `0..n` qualify.
    All(usize),
    /// Sorted, deduplicated qualifying row ids.
    Ids(Vec<u32>),
}

impl SelVec {
    /// Every row of an `n`-row chunk.
    pub fn all(n: usize) -> Self {
        SelVec::All(n)
    }

    /// No rows.
    pub fn none() -> Self {
        SelVec::Ids(Vec::new())
    }

    /// Collapse a boolean mask into a selection vector (`true` = keep).
    pub fn from_mask(mask: &[bool]) -> Self {
        let count = mask.iter().filter(|&&b| b).count();
        if count == mask.len() {
            return SelVec::All(mask.len());
        }
        let mut ids = Vec::with_capacity(count);
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                ids.push(i as u32);
            }
        }
        SelVec::Ids(ids)
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::All(n) => *n,
            SelVec::Ids(ids) => ids.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every row of the source chunk is selected.
    pub fn is_all(&self) -> bool {
        matches!(self, SelVec::All(_))
    }

    /// The raw `&[u32]` id view, or `None` in the compact all-rows form.
    pub fn ids(&self) -> Option<&[u32]> {
        match self {
            SelVec::All(_) => None,
            SelVec::Ids(ids) => Some(ids),
        }
    }

    /// Iterate the selected row indices.
    pub fn iter(&self) -> SelIter<'_> {
        match self {
            SelVec::All(n) => SelIter::All(0..*n),
            SelVec::Ids(ids) => SelIter::Ids(ids.iter()),
        }
    }

    /// Expand back into a boolean mask over an `n`-row chunk.
    pub fn to_mask(&self, n: usize) -> Vec<bool> {
        match self {
            SelVec::All(_) => vec![true; n],
            SelVec::Ids(ids) => {
                let mut mask = vec![false; n];
                for &i in ids {
                    mask[i as usize] = true;
                }
                mask
            }
        }
    }
}

/// Iterator over the selected row indices of a [`SelVec`].
pub enum SelIter<'a> {
    All(std::ops::Range<usize>),
    Ids(std::slice::Iter<'a, u32>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::All(r) => r.next(),
            SelIter::Ids(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelIter::All(r) => r.size_hint(),
            SelIter::Ids(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for SelIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_collapses_to_all() {
        assert_eq!(SelVec::from_mask(&[true, true]), SelVec::All(2));
        assert_eq!(
            SelVec::from_mask(&[true, false, true]),
            SelVec::Ids(vec![0, 2])
        );
        assert_eq!(SelVec::from_mask(&[]), SelVec::All(0));
    }

    #[test]
    fn roundtrips_through_mask() {
        let mask = [true, false, false, true, true];
        let sel = SelVec::from_mask(&mask);
        assert_eq!(sel.len(), 3);
        assert!(!sel.is_all());
        assert_eq!(sel.to_mask(5), mask.to_vec());
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
        assert_eq!(sel.ids(), Some(&[0u32, 3, 4][..]));
    }

    #[test]
    fn all_iterates_every_row() {
        let sel = SelVec::all(3);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(sel.ids(), None);
        assert!(SelVec::none().is_empty());
    }
}
