//! Column-level string collations.
//!
//! Sect. 4.1.1: "Unlike most analytical databases, the TDE supports
//! column-level collated strings. This is important for keeping behavior in
//! the live and Extract scenario in Tableau consistent." The intelligent
//! cache also refuses matches across collation conflicts (Sect. 3.2), so the
//! collation has to travel with every string column through the whole stack.

use std::cmp::Ordering;
use std::fmt;

/// Supported string collations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Collation {
    /// Byte-wise comparison (`BINARY`), the default.
    #[default]
    Binary,
    /// ASCII case-insensitive comparison (`CI`): `'Alpha' = 'alpha'`.
    CaseInsensitive,
}

impl Collation {
    /// Compare two strings under this collation.
    pub fn cmp_str(self, a: &str, b: &str) -> Ordering {
        match self {
            Collation::Binary => a.cmp(b),
            Collation::CaseInsensitive => {
                // Compare without allocating lowercase copies.
                let mut ai = a.bytes().map(|c| c.to_ascii_lowercase());
                let mut bi = b.bytes().map(|c| c.to_ascii_lowercase());
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some(x), Some(y)) => match x.cmp(&y) {
                            Ordering::Equal => continue,
                            other => return other,
                        },
                    }
                }
            }
        }
    }

    /// Equality under this collation.
    pub fn eq_str(self, a: &str, b: &str) -> bool {
        self.cmp_str(a, b) == Ordering::Equal
    }

    /// Canonical key for hashing/grouping: two strings equal under the
    /// collation must map to the same key.
    pub fn key(self, s: &str) -> String {
        match self {
            Collation::Binary => s.to_string(),
            Collation::CaseInsensitive => s.to_ascii_lowercase(),
        }
    }
}

impl fmt::Display for Collation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Collation::Binary => "binary",
            Collation::CaseInsensitive => "ci",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_is_case_sensitive() {
        assert_eq!(Collation::Binary.cmp_str("A", "a"), Ordering::Less);
        assert!(!Collation::Binary.eq_str("A", "a"));
    }

    #[test]
    fn ci_equates_cases() {
        assert!(Collation::CaseInsensitive.eq_str("DeLtA", "delta"));
        assert_eq!(
            Collation::CaseInsensitive.cmp_str("ab", "AC"),
            Ordering::Less
        );
    }

    #[test]
    fn ci_respects_length() {
        assert_eq!(
            Collation::CaseInsensitive.cmp_str("ab", "abc"),
            Ordering::Less
        );
        assert_eq!(
            Collation::CaseInsensitive.cmp_str("abc", "ab"),
            Ordering::Greater
        );
    }

    #[test]
    fn keys_agree_with_equality() {
        let c = Collation::CaseInsensitive;
        assert_eq!(c.key("MiXeD"), c.key("mixed"));
        assert_ne!(
            Collation::Binary.key("MiXeD"),
            Collation::Binary.key("mixed")
        );
    }
}
