//! Deterministic, seedable hashing shared across the stack.
//!
//! Everything in the simulation that must replay byte-identically — fault
//! schedules, the cluster's consistent-hash ring, traffic generators — keys
//! its decisions off pure functions of `(seed, inputs)` rather than shared
//! RNG state, so concurrency and call order can never perturb a run. This
//! module is the single source of those functions: SplitMix64 finalization
//! over an FNV-style fold. Not cryptographic; stable across platforms and
//! releases by construction (the constants are part of the format).

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a `(seed, site, ordinal)` triple into one well-distributed word —
/// the shape every deterministic schedule in the engine uses (fault plans,
/// ring probes, arrival jitter).
#[inline]
pub fn mix3(seed: u64, site: u64, n: u64) -> u64 {
    mix64(seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Uniform `[0, 1)` from a mixed word (53 mantissa bits).
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `[0, 1)` roll from `(seed, site, ordinal)` — the composition
/// used by fault plans and open-loop traffic schedules.
#[inline]
pub fn roll(seed: u64, site: u64, n: u64) -> f64 {
    unit_f64(mix3(seed, site, n))
}

/// Seeded string hash: FNV-1a fold of the bytes, finalized with
/// [`mix64`]. Used for consistent-hash ring placement of node and source
/// names, so the ring layout is a pure function of `(seed, names)`.
#[inline]
pub fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ seed;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Distinct inputs in a small window stay distinct after mixing.
        let outs: std::collections::HashSet<u64> = (0..10_000).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn rolls_are_deterministic_and_uniformish() {
        assert_eq!(roll(42, 1, 7), roll(42, 1, 7));
        assert_ne!(roll(42, 1, 7), roll(43, 1, 7));
        let mean: f64 = (0..4_000).map(|n| roll(9, 2, n)).sum::<f64>() / 4_000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean drifted: {mean}");
        assert!((0..4_000).all(|n| (0.0..1.0).contains(&roll(9, 2, n))));
    }

    #[test]
    fn string_hash_depends_on_seed_and_content() {
        assert_eq!(hash_str(1, "node-0"), hash_str(1, "node-0"));
        assert_ne!(hash_str(1, "node-0"), hash_str(2, "node-0"));
        assert_ne!(hash_str(1, "node-0"), hash_str(1, "node-1"));
    }
}
