//! Scalar values and their types.

use crate::collation::Collation;
use crate::error::{Result, TvError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Logical data types supported by the engine.
///
/// The TDE stores fixed-width data natively; `Str` columns are
/// dictionary-compressed in the storage layer (Sect. 4.1.1). `Date` is stored
/// as days since the unix epoch, which keeps it fixed-width and sortable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Real,
    Str,
    Date,
}

impl DataType {
    /// `true` for types whose physical representation has a fixed width.
    pub fn is_fixed_width(self) -> bool {
        !matches!(self, DataType::Str)
    }

    /// `true` when values of this type participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Real)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Real => "real",
            DataType::Str => "str",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// `Null` is typeless, as in SQL. Ordering places `Null` first, matches SQL
/// `ORDER BY ... NULLS FIRST`, and compares reals with `total_cmp` so that the
/// ordering is total (required by sort operators).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Real(f64),
    Str(String),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// The type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Real(_) => Some(DataType::Real),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, promoting `Int`/`Date` to `f64`.
    pub fn as_real(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Real(r) => Ok(*r),
            Value::Date(d) => Ok(*d as f64),
            other => Err(TvError::Type(format!("{other:?} is not numeric"))),
        }
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Date(d) => Ok(*d as i64),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(TvError::Type(format!("{other:?} is not an int"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(TvError::Type(format!("{other:?} is not a bool"))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(TvError::Type(format!("{other:?} is not a string"))),
        }
    }

    /// Compare two values under a string collation.
    ///
    /// Non-string comparisons ignore the collation. Cross-type numeric
    /// comparisons (`Int` vs `Real`) are performed numerically, mirroring the
    /// implicit type promotion the paper's query compiler applies before
    /// dialect generation (Sect. 3.1).
    pub fn cmp_collated(&self, other: &Value, collation: Collation) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.total_cmp(b),
            (Int(a), Real(b)) => (*a as f64).total_cmp(b),
            (Real(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => collation.cmp_str(a, b),
            // Distinct non-comparable types: order by type tag so sorting is
            // still total. The planner prevents these comparisons in practice.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Real(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }

    /// Render using the engine's canonical literal syntax (used by the
    /// literal query cache key and the SQL dialect generators).
    pub fn to_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() {
                    format!("{r:.1}")
                } else {
                    format!("{r}")
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Date(d) => format!("DATE {d}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_collated(other, Collation::Binary) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_collated(other, Collation::Binary)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Real hash identically when the Real is integral so that
            // Int(2) == Real(2.0) implies equal hashes.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Real(r) => {
                2u8.hash(state);
                r.to_bits().hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                5u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// `Display` matches the canonical literal syntax except strings, which render
/// without quotes (for result tables).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => f.write_str(&other.to_literal()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(3), Value::Null, Value::Int(-1)];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(-1));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Real(2.0));
        assert!(Value::Int(2) < Value::Real(2.5));
        assert!(Value::Real(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_values_hash_equal_across_int_real() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(7)), h(&Value::Real(7.0)));
    }

    #[test]
    fn collated_string_comparison() {
        let a = Value::Str("Alpha".into());
        let b = Value::Str("alpha".into());
        assert_ne!(a.cmp_collated(&b, Collation::Binary), Ordering::Equal);
        assert_eq!(
            a.cmp_collated(&b, Collation::CaseInsensitive),
            Ordering::Equal
        );
    }

    #[test]
    fn literal_rendering() {
        assert_eq!(Value::Str("d'oh".into()).to_literal(), "'d''oh'");
        assert_eq!(Value::Real(2.0).to_literal(), "2.0");
        assert_eq!(Value::Null.to_literal(), "NULL");
        assert_eq!(Value::Bool(true).to_literal(), "TRUE");
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(3).as_real().unwrap(), 3.0);
        assert_eq!(Value::Date(10).as_int().unwrap(), 10);
        assert!(Value::Str("x".into()).as_real().is_err());
    }

    #[test]
    fn total_order_on_reals_with_nan() {
        let mut vs = [Value::Real(f64::NAN), Value::Real(1.0), Value::Real(-1.0)];
        vs.sort();
        assert_eq!(vs[0], Value::Real(-1.0)); // NaN sorts after all numbers
        assert!(matches!(vs[2], Value::Real(r) if r.is_nan()));
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int.is_numeric());
        assert!(!DataType::Str.is_fixed_width());
        assert!(DataType::Date.is_fixed_width());
        assert_eq!(DataType::Real.to_string(), "real");
    }
}
