//! Columnar batches ([`Chunk`]) and their typed column vectors.
//!
//! Execution operators in the TDE pull `Chunk`s from their children (a
//! chunked variant of the paper's Volcano iteration, Sect. 4.1.3, with the
//! "vectorization in expression evaluation" of Sect. 4.2.2 made explicit).
//! Query results, cache entries and backend responses are all `Chunk`s.

use crate::collation::Collation;
use crate::error::{Result, TvError};
use crate::schema::SchemaRef;
use crate::selvec::SelVec;
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Validity mask for a column vector. `None` means "no nulls", which lets the
/// common all-valid case skip per-row checks entirely.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullMask {
    bits: Option<Vec<bool>>,
}

impl NullMask {
    /// A mask with no nulls.
    pub fn none() -> Self {
        NullMask { bits: None }
    }

    /// Build from per-row validity bits (`true` = valid). Collapses to the
    /// compact all-valid representation when possible.
    pub fn from_valid_bits(bits: Vec<bool>) -> Self {
        if bits.iter().all(|&b| b) {
            NullMask { bits: None }
        } else {
            NullMask { bits: Some(bits) }
        }
    }

    pub fn is_valid(&self, i: usize) -> bool {
        self.bits.as_ref().is_none_or(|b| b[i])
    }

    /// The raw validity bits, or `None` in the compact all-valid
    /// representation (serialization hook for the storage layer).
    pub fn valid_bits(&self) -> Option<&[bool]> {
        self.bits.as_deref()
    }

    pub fn has_nulls(&self) -> bool {
        self.bits.as_ref().is_some_and(|b| b.iter().any(|&v| !v))
    }

    pub fn null_count(&self) -> usize {
        self.bits
            .as_ref()
            .map_or(0, |b| b.iter().filter(|&&v| !v).count())
    }

    fn take(&self, indices: &[usize]) -> Self {
        match &self.bits {
            None => NullMask::none(),
            Some(b) => NullMask::from_valid_bits(indices.iter().map(|&i| b[i]).collect()),
        }
    }

    fn slice(&self, start: usize, len: usize) -> Self {
        match &self.bits {
            None => NullMask::none(),
            Some(b) => NullMask::from_valid_bits(b[start..start + len].to_vec()),
        }
    }
}

/// Typed dense value storage for one column of a chunk. Rows masked out by
/// the companion [`NullMask`] hold an arbitrary placeholder.
#[derive(Debug, Clone, PartialEq)]
pub enum Values {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Real(Vec<f64>),
    Str(Vec<String>),
    Date(Vec<i32>),
}

impl Values {
    pub fn data_type(&self) -> DataType {
        match self {
            Values::Bool(_) => DataType::Bool,
            Values::Int(_) => DataType::Int,
            Values::Real(_) => DataType::Real,
            Values::Str(_) => DataType::Str,
            Values::Date(_) => DataType::Date,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Values::Bool(v) => v.len(),
            Values::Int(v) => v.len(),
            Values::Real(v) => v.len(),
            Values::Str(v) => v.len(),
            Values::Date(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate empty storage of the given type with capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Bool => Values::Bool(Vec::with_capacity(cap)),
            DataType::Int => Values::Int(Vec::with_capacity(cap)),
            DataType::Real => Values::Real(Vec::with_capacity(cap)),
            DataType::Str => Values::Str(Vec::with_capacity(cap)),
            DataType::Date => Values::Date(Vec::with_capacity(cap)),
        }
    }

    /// Typed views: the raw dense slice when the variant matches, else
    /// `None`. Kernels pair these with [`NullMask::valid_bits`] to iterate
    /// columns without materializing a [`Value`] per row.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Values::Bool(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Values::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_real(&self) -> Option<&[f64]> {
        match self {
            Values::Real(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_date(&self) -> Option<&[i32]> {
        match self {
            Values::Date(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            Values::Str(v) => Some(v),
            _ => None,
        }
    }

    fn value_at(&self, i: usize) -> Value {
        match self {
            Values::Bool(v) => Value::Bool(v[i]),
            Values::Int(v) => Value::Int(v[i]),
            Values::Real(v) => Value::Real(v[i]),
            Values::Str(v) => Value::Str(v[i].clone()),
            Values::Date(v) => Value::Date(v[i]),
        }
    }

    /// Push a non-null value; the caller guarantees the type matches.
    fn push_value(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (Values::Bool(d), Value::Bool(b)) => d.push(*b),
            (Values::Int(d), Value::Int(i)) => d.push(*i),
            (Values::Int(d), Value::Real(r)) => d.push(*r as i64),
            (Values::Real(d), Value::Real(r)) => d.push(*r),
            (Values::Real(d), Value::Int(i)) => d.push(*i as f64),
            (Values::Str(d), Value::Str(s)) => d.push(s.clone()),
            (Values::Date(d), Value::Date(x)) => d.push(*x),
            (s, v) => {
                return Err(TvError::Type(format!(
                    "cannot store {v:?} in {} column",
                    s.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Push a type-appropriate placeholder for a null row.
    fn push_placeholder(&mut self) {
        match self {
            Values::Bool(d) => d.push(false),
            Values::Int(d) => d.push(0),
            Values::Real(d) => d.push(0.0),
            Values::Str(d) => d.push(String::new()),
            Values::Date(d) => d.push(0),
        }
    }

    fn take(&self, indices: &[usize]) -> Self {
        match self {
            Values::Bool(v) => Values::Bool(indices.iter().map(|&i| v[i]).collect()),
            Values::Int(v) => Values::Int(indices.iter().map(|&i| v[i]).collect()),
            Values::Real(v) => Values::Real(indices.iter().map(|&i| v[i]).collect()),
            Values::Str(v) => Values::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Values::Date(v) => Values::Date(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    fn slice(&self, start: usize, len: usize) -> Self {
        match self {
            Values::Bool(v) => Values::Bool(v[start..start + len].to_vec()),
            Values::Int(v) => Values::Int(v[start..start + len].to_vec()),
            Values::Real(v) => Values::Real(v[start..start + len].to_vec()),
            Values::Str(v) => Values::Str(v[start..start + len].to_vec()),
            Values::Date(v) => Values::Date(v[start..start + len].to_vec()),
        }
    }

    fn append(&mut self, other: &Values) -> Result<()> {
        match (self, other) {
            (Values::Bool(a), Values::Bool(b)) => a.extend_from_slice(b),
            (Values::Int(a), Values::Int(b)) => a.extend_from_slice(b),
            (Values::Real(a), Values::Real(b)) => a.extend_from_slice(b),
            (Values::Str(a), Values::Str(b)) => a.extend_from_slice(b),
            (Values::Date(a), Values::Date(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(TvError::Type(format!(
                    "cannot append {} column to {} column",
                    b.data_type(),
                    a.data_type()
                )))
            }
        }
        Ok(())
    }
}

/// One column of a [`Chunk`]: typed values plus a validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    pub values: Values,
    pub nulls: NullMask,
}

impl ColumnVec {
    pub fn new(values: Values, nulls: NullMask) -> Self {
        ColumnVec { values, nulls }
    }

    /// All-valid column from raw values.
    pub fn from_values(values: Values) -> Self {
        ColumnVec {
            values,
            nulls: NullMask::none(),
        }
    }

    /// Build from `Value`s, inferring nulls; `dtype` fixes the column type.
    pub fn from_iter_typed<'a, I>(dtype: DataType, iter: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let iter = iter.into_iter();
        let mut values = Values::with_capacity(dtype, iter.size_hint().0);
        let mut bits = Vec::with_capacity(iter.size_hint().0);
        for v in iter {
            if v.is_null() {
                values.push_placeholder();
                bits.push(false);
            } else {
                values.push_value(v)?;
                bits.push(true);
            }
        }
        Ok(ColumnVec {
            values,
            nulls: NullMask::from_valid_bits(bits),
        })
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn data_type(&self) -> DataType {
        self.values.data_type()
    }

    /// Materialize the value at row `i` (Null if masked out).
    pub fn get(&self, i: usize) -> Value {
        if self.nulls.is_valid(i) {
            self.values.value_at(i)
        } else {
            Value::Null
        }
    }

    pub fn is_valid(&self, i: usize) -> bool {
        self.nulls.is_valid(i)
    }

    pub fn take(&self, indices: &[usize]) -> Self {
        ColumnVec {
            values: self.values.take(indices),
            nulls: self.nulls.take(indices),
        }
    }

    /// Gather with optional sources: `None` produces a NULL row. This is the
    /// outer-join output shape — unmatched probe rows pad the build columns
    /// with NULLs — built column-at-a-time without a `Value` per cell.
    pub fn take_opt(&self, indices: &[Option<u32>]) -> Self {
        let mut bits = Vec::with_capacity(indices.len());
        for idx in indices {
            bits.push(idx.is_some_and(|i| self.nulls.is_valid(i as usize)));
        }
        macro_rules! gather {
            ($src:expr, $variant:ident, $default:expr) => {
                Values::$variant(
                    indices
                        .iter()
                        .map(|idx| match idx {
                            Some(i) => $src[*i as usize].clone(),
                            None => $default,
                        })
                        .collect(),
                )
            };
        }
        let values = match &self.values {
            Values::Bool(v) => gather!(v, Bool, false),
            Values::Int(v) => gather!(v, Int, 0),
            Values::Real(v) => gather!(v, Real, 0.0),
            Values::Str(v) => gather!(v, Str, String::new()),
            Values::Date(v) => gather!(v, Date, 0),
        };
        ColumnVec {
            values,
            nulls: NullMask::from_valid_bits(bits),
        }
    }

    /// Gather the rows a [`SelVec`] selects. `All` clones the column.
    pub fn take_sel(&self, sel: &SelVec) -> Self {
        match sel {
            SelVec::All(_) => self.clone(),
            SelVec::Ids(ids) => {
                let indices: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
                self.take(&indices)
            }
        }
    }

    pub fn slice(&self, start: usize, len: usize) -> Self {
        ColumnVec {
            values: self.values.slice(start, len),
            nulls: self.nulls.slice(start, len),
        }
    }

    pub fn append(&mut self, other: &ColumnVec) -> Result<()> {
        let old_len = self.len();
        // Materialize bit vectors only if either side has nulls.
        if self.nulls.bits.is_some() || other.nulls.bits.is_some() {
            let mut bits = self
                .nulls
                .bits
                .take()
                .unwrap_or_else(|| vec![true; old_len]);
            match &other.nulls.bits {
                Some(b) => bits.extend_from_slice(b),
                None => bits.extend(std::iter::repeat_n(true, other.len())),
            }
            self.nulls = NullMask::from_valid_bits(bits);
        }
        self.values.append(&other.values)
    }

    /// Compare rows `i` and `j` of two columns of the same type.
    pub fn cmp_rows(
        &self,
        i: usize,
        other: &ColumnVec,
        j: usize,
        collation: Collation,
    ) -> Ordering {
        match (self.nulls.is_valid(i), other.nulls.is_valid(j)) {
            (false, false) => Ordering::Equal,
            (false, true) => Ordering::Less,
            (true, false) => Ordering::Greater,
            (true, true) => match (&self.values, &other.values) {
                (Values::Bool(a), Values::Bool(b)) => a[i].cmp(&b[j]),
                (Values::Int(a), Values::Int(b)) => a[i].cmp(&b[j]),
                (Values::Real(a), Values::Real(b)) => a[i].total_cmp(&b[j]),
                (Values::Date(a), Values::Date(b)) => a[i].cmp(&b[j]),
                (Values::Str(a), Values::Str(b)) => collation.cmp_str(&a[i], &b[j]),
                _ => self.get(i).cmp_collated(&other.get(j), collation),
            },
        }
    }
}

/// A columnar batch of rows sharing a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    schema: SchemaRef,
    columns: Vec<ColumnVec>,
    len: usize,
}

impl Chunk {
    /// Assemble from columns; all columns must match the schema arity/types
    /// and share a length.
    pub fn new(schema: SchemaRef, columns: Vec<ColumnVec>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(TvError::Schema(format!(
                "chunk has {} columns but schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let len = columns.first().map_or(0, ColumnVec::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.data_type() != f.dtype {
                return Err(TvError::Schema(format!(
                    "column '{}' expects {} but got {}",
                    f.name,
                    f.dtype,
                    c.data_type()
                )));
            }
            if c.len() != len {
                return Err(TvError::Schema("ragged chunk columns".into()));
            }
        }
        Ok(Chunk {
            schema,
            columns,
            len,
        })
    }

    /// Zero-row chunk with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnVec::from_values(Values::with_capacity(f.dtype, 0)))
            .collect();
        Chunk {
            schema,
            columns,
            len: 0,
        }
    }

    /// Build from row-major values (convenient in tests and small results).
    pub fn from_rows(schema: SchemaRef, rows: &[Vec<Value>]) -> Result<Self> {
        let mut columns = Vec::with_capacity(schema.len());
        for (ci, f) in schema.fields().iter().enumerate() {
            let col = ColumnVec::from_iter_typed(
                f.dtype,
                rows.iter().map(|r| r.get(ci).unwrap_or(&Value::Null)),
            )?;
            columns.push(col);
        }
        let len = rows.len();
        for r in rows {
            if r.len() != schema.len() {
                return Err(TvError::Schema("row arity mismatch".into()));
            }
        }
        Ok(Chunk {
            schema,
            columns,
            len,
        })
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    pub fn column_by_name(&self, name: &str) -> Result<&ColumnVec> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Materialize all rows (tests / display).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Self> {
        if mask.len() != self.len {
            return Err(TvError::Exec("filter mask length mismatch".into()));
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.take(&indices))
    }

    /// Gather the given row indices (may repeat / reorder).
    pub fn take(&self, indices: &[usize]) -> Self {
        Chunk {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            len: indices.len(),
        }
    }

    /// Keep the rows a [`SelVec`] selects. The all-rows form is free (the
    /// chunk moves through untouched); a partial selection gathers once.
    pub fn take_sel(self, sel: &SelVec) -> Self {
        match sel {
            SelVec::All(_) => self,
            SelVec::Ids(ids) => {
                let indices: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
                self.take(&indices)
            }
        }
    }

    /// Contiguous sub-range of rows.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        Chunk {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.slice(start, len)).collect(),
            len,
        }
    }

    /// Project columns by index (may reorder).
    pub fn project(&self, indices: &[usize]) -> Self {
        Chunk {
            schema: Arc::new(self.schema.project(indices)),
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            len: self.len,
        }
    }

    /// Concatenate chunks with identical schemas.
    pub fn concat(schema: SchemaRef, chunks: &[Chunk]) -> Result<Self> {
        let mut out = Chunk::empty(Arc::clone(&schema));
        for ch in chunks {
            if ch.schema.len() != schema.len() {
                return Err(TvError::Schema("concat schema mismatch".into()));
            }
            for (dst, src) in out.columns.iter_mut().zip(&ch.columns) {
                dst.append(src)?;
            }
            out.len += ch.len;
        }
        Ok(out)
    }

    /// Stable sort by the given key columns.
    ///
    /// `keys` are `(column index, ascending)` pairs; string columns compare
    /// under their field's collation. Returns the permuted chunk.
    pub fn sort_by(&self, keys: &[(usize, bool)]) -> Self {
        let collations: Vec<Collation> = keys
            .iter()
            .map(|&(ci, _)| self.schema.field(ci).collation)
            .collect();
        let mut indices: Vec<usize> = (0..self.len).collect();
        indices.sort_by(|&a, &b| {
            for (k, &(ci, asc)) in keys.iter().enumerate() {
                let col = &self.columns[ci];
                let ord = col.cmp_rows(a, col, b, collations[k]);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.take(&indices)
    }

    /// Rough in-memory footprint in bytes, used by cache sizing ("unless ...
    /// the results are excessively large", Sect. 3.2).
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0usize;
        for c in &self.columns {
            total += match &c.values {
                Values::Bool(v) => v.len(),
                Values::Int(v) => v.len() * 8,
                Values::Real(v) => v.len() * 8,
                Values::Date(v) => v.len() * 4,
                Values::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
            };
            if let Some(b) = &c.nulls.bits {
                total += b.len();
            }
        }
        total
    }
}

/// ASCII table rendering used by the examples and the experiment harness.
impl fmt::Display for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.schema.names();
        writeln!(f, "{}", names.join(" | "))?;
        for i in 0..self.len.min(50) {
            let row: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", row.join(" | "))?;
        }
        if self.len > 50 {
            writeln!(f, "... ({} rows total)", self.len)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};

    fn schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Field::new("k", DataType::Str),
                Field::new("v", DataType::Int),
            ])
            .unwrap(),
        )
    }

    fn sample() -> Chunk {
        Chunk::from_rows(
            schema(),
            &[
                vec!["b".into(), Value::Int(2)],
                vec!["a".into(), Value::Null],
                vec!["c".into(), Value::Int(1)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_rows() {
        let ch = sample();
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.row(1), vec![Value::Str("a".into()), Value::Null]);
        assert_eq!(ch.to_rows().len(), 3);
    }

    #[test]
    fn filter_and_take() {
        let ch = sample();
        let f = ch.filter(&[true, false, true]).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1)[0], Value::Str("c".into()));
        let t = ch.take(&[2, 2, 0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(0)[1], Value::Int(1));
        assert_eq!(t.row(1)[1], Value::Int(1));
    }

    #[test]
    fn slice_and_concat() {
        let ch = sample();
        let s = ch.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0)[0], Value::Str("a".into()));
        let cat = Chunk::concat(schema(), &[ch.clone(), s]).unwrap();
        assert_eq!(cat.len(), 5);
        assert_eq!(cat.row(3)[0], Value::Str("a".into()));
        // null survives concat
        assert_eq!(cat.row(3)[1], Value::Null);
    }

    #[test]
    fn project_reorders_columns() {
        let p = sample().project(&[1, 0]);
        assert_eq!(p.schema().names(), vec!["v", "k"]);
        assert_eq!(p.row(0), vec![Value::Int(2), Value::Str("b".into())]);
    }

    #[test]
    fn sort_with_nulls_first() {
        let sorted = sample().sort_by(&[(1, true)]);
        assert_eq!(sorted.row(0)[1], Value::Null);
        assert_eq!(sorted.row(1)[1], Value::Int(1));
        let desc = sample().sort_by(&[(1, false)]);
        assert_eq!(desc.row(0)[1], Value::Int(2));
        assert_eq!(desc.row(2)[1], Value::Null);
    }

    #[test]
    fn sort_respects_collation() {
        let s = Arc::new(
            Schema::new(vec![
                Field::new("k", DataType::Str).with_collation(Collation::CaseInsensitive)
            ])
            .unwrap(),
        );
        let ch =
            Chunk::from_rows(s, &[vec!["b".into()], vec!["A".into()], vec!["a".into()]]).unwrap();
        let sorted = ch.sort_by(&[(0, true)]);
        // case-insensitive: A and a tie, stable order preserved, b last
        assert_eq!(sorted.row(0)[0], Value::Str("A".into()));
        assert_eq!(sorted.row(1)[0], Value::Str("a".into()));
        assert_eq!(sorted.row(2)[0], Value::Str("b".into()));
    }

    #[test]
    fn schema_validation() {
        let bad = Chunk::new(schema(), vec![ColumnVec::from_values(Values::Int(vec![1]))]);
        assert!(bad.is_err());
        let wrong_type = Chunk::new(
            schema(),
            vec![
                ColumnVec::from_values(Values::Int(vec![1])),
                ColumnVec::from_values(Values::Int(vec![1])),
            ],
        );
        assert!(wrong_type.is_err());
    }

    #[test]
    fn empty_chunk() {
        let e = Chunk::empty(schema());
        assert!(e.is_empty());
        assert_eq!(e.num_columns(), 2);
        assert_eq!(e.approx_bytes(), 0);
    }

    #[test]
    fn null_mask_collapses() {
        let m = NullMask::from_valid_bits(vec![true, true]);
        assert!(!m.has_nulls());
        assert_eq!(m.null_count(), 0);
        let m2 = NullMask::from_valid_bits(vec![true, false]);
        assert!(m2.has_nulls());
        assert_eq!(m2.null_count(), 1);
    }

    #[test]
    fn int_real_coercion_in_builder() {
        let col =
            ColumnVec::from_iter_typed(DataType::Real, [Value::Int(1), Value::Real(2.5)].iter())
                .unwrap();
        assert_eq!(col.get(0), Value::Real(1.0));
        let bad = ColumnVec::from_iter_typed(DataType::Int, [Value::Str("x".into())].iter());
        assert!(bad.is_err());
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let ch = sample();
        assert!(ch.approx_bytes() > 0);
    }
}
