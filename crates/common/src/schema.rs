//! Schemas: ordered, named, typed field lists.

use crate::collation::Collation;
use crate::error::{Result, TvError};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A single column description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
    /// Collation, meaningful only for `Str` columns.
    pub collation: Collation,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            collation: Collation::Binary,
            nullable: true,
        }
    }

    pub fn with_collation(mut self, collation: Collation) -> Self {
        self.collation = collation;
        self
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered set of fields with unique names.
///
/// Shared behind `Arc` between chunks of the same stream, so cloning a
/// [`SchemaRef`] is cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema, rejecting duplicate field names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(TvError::Schema(format!(
                    "duplicate field name '{}'",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Build without the duplicate check (for internal plan construction
    /// where uniqueness is guaranteed by the caller).
    pub fn new_unchecked(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TvError::Schema(format!("unknown column '{name}'")))
    }

    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// Project a subset of fields by index, preserving the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Concatenate two schemas (used by joins); duplicate names on the right
    /// are disambiguated with a `r_` prefix, matching how the TDE exposes
    /// join outputs.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let mut f = f.clone();
            if fields.iter().any(|g| g.name == f.name) {
                f.name = format!("r_{}", f.name);
            }
            fields.push(f);
        }
        Schema { fields }
    }

    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("carrier", DataType::Str),
            Field::new("delay", DataType::Real),
            Field::new("flights", DataType::Int).not_null(),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, TvError::Schema(_)));
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("delay").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert!(s.contains("carrier"));
        assert_eq!(s.field_by_name("flights").unwrap().dtype, DataType::Int);
    }

    #[test]
    fn projection_reorders() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.names(), vec!["flights", "carrier"]);
    }

    #[test]
    fn join_disambiguates() {
        let s = sample();
        let j = s.join(&Schema::new(vec![Field::new("carrier", DataType::Str)]).unwrap());
        assert_eq!(j.names(), vec!["carrier", "delay", "flights", "r_carrier"]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            sample().to_string(),
            "(carrier: str, delay: real, flights: int)"
        );
    }

    #[test]
    fn not_null_and_collation_builders() {
        let f = Field::new("c", DataType::Str).with_collation(Collation::CaseInsensitive);
        assert_eq!(f.collation, Collation::CaseInsensitive);
        assert!(f.nullable);
        assert!(!Field::new("n", DataType::Int).not_null().nullable);
    }
}
