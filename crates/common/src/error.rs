//! Error handling shared across all tabviz crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TvError>;

/// The error type for every fallible operation in the tabviz stack.
///
/// Variants are grouped by the subsystem that raises them; the payload is a
/// human-readable message because errors here are diagnostics for developers
/// and harnesses, not values to branch on (with the exception of
/// [`TvError::CacheMiss`] and [`TvError::Unsupported`], which callers do
/// inspect to fall back to slower paths, mirroring the paper's "if the Data
/// Server fails to create a temporary table ... the query is rewritten").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvError {
    /// Schema-level problem: unknown column/table, duplicate names, arity.
    Schema(String),
    /// A value had the wrong type for the requested operation.
    Type(String),
    /// TQL text failed to parse.
    Parse(String),
    /// Binder/semantic analysis failure (unknown identifiers, bad aggregates).
    Bind(String),
    /// Plan-time invariant violation inside the optimizer.
    Plan(String),
    /// Runtime execution failure.
    Exec(String),
    /// Storage-layer failure (corrupt encoding, bad file image).
    Storage(String),
    /// I/O wrapper (file-backed databases, persisted caches).
    Io(String),
    /// The requested operation is not supported by the target backend; the
    /// caller is expected to rewrite or post-process locally.
    Unsupported(String),
    /// Cache lookup found no usable entry.
    CacheMiss,
    /// A remote/simulated data source refused or dropped the request.
    Backend(String),
    /// Data Server: permission denied for the requesting user.
    Permission(String),
    /// A backend failure that is expected to be recoverable: a dropped
    /// connection, a refused connect, a network blip. Callers may retry
    /// (bounded) or degrade to a stale cached answer.
    Transient(String),
    /// A deadline elapsed: pool acquisition or remote query execution took
    /// longer than the caller allowed. Not retried (the budget is spent),
    /// but eligible for degraded stale-cache serving.
    Timeout(String),
    /// Work abandoned because a sibling in the same batch failed fatally.
    Cancelled(String),
}

impl TvError {
    /// Short subsystem tag used in log-style formatting.
    fn tag(&self) -> &'static str {
        match self {
            TvError::Schema(_) => "schema",
            TvError::Type(_) => "type",
            TvError::Parse(_) => "parse",
            TvError::Bind(_) => "bind",
            TvError::Plan(_) => "plan",
            TvError::Exec(_) => "exec",
            TvError::Storage(_) => "storage",
            TvError::Io(_) => "io",
            TvError::Unsupported(_) => "unsupported",
            TvError::CacheMiss => "cache-miss",
            TvError::Backend(_) => "backend",
            TvError::Permission(_) => "permission",
            TvError::Transient(_) => "transient",
            TvError::Timeout(_) => "timeout",
            TvError::Cancelled(_) => "cancelled",
        }
    }

    /// Whether a bounded retry against the same backend is worthwhile.
    ///
    /// Only [`TvError::Transient`] qualifies: timeouts have already consumed
    /// the caller's latency budget, and every other variant is deterministic
    /// (the same query would fail the same way).
    pub fn is_transient(&self) -> bool {
        matches!(self, TvError::Transient(_))
    }

    /// Whether the failure is a *backend availability* problem rather than a
    /// defect in the query itself — the class of errors where serving a
    /// stale cached answer beats failing the dashboard.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            TvError::Transient(_) | TvError::Timeout(_) | TvError::Backend(_)
        )
    }
}

impl fmt::Display for TvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvError::CacheMiss => write!(f, "[cache-miss]"),
            TvError::Schema(m)
            | TvError::Type(m)
            | TvError::Parse(m)
            | TvError::Bind(m)
            | TvError::Plan(m)
            | TvError::Exec(m)
            | TvError::Storage(m)
            | TvError::Io(m)
            | TvError::Unsupported(m)
            | TvError::Backend(m)
            | TvError::Permission(m)
            | TvError::Transient(m)
            | TvError::Timeout(m)
            | TvError::Cancelled(m) => write!(f, "[{}] {}", self.tag(), m),
        }
    }
}

impl std::error::Error for TvError {}

impl From<std::io::Error> for TvError {
    fn from(e: std::io::Error) -> Self {
        TvError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_tag() {
        let e = TvError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "[parse] unexpected token");
        assert_eq!(TvError::CacheMiss.to_string(), "[cache-miss]");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TvError = io.into();
        assert!(matches!(e, TvError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TvError::CacheMiss, TvError::CacheMiss);
        assert_ne!(TvError::CacheMiss, TvError::Exec("x".into()));
    }

    #[test]
    fn transient_and_degradable_classification() {
        assert!(TvError::Transient("blip".into()).is_transient());
        assert!(!TvError::Timeout("slow".into()).is_transient());
        assert!(!TvError::Exec("bug".into()).is_transient());
        assert!(TvError::Transient("blip".into()).is_degradable());
        assert!(TvError::Timeout("slow".into()).is_degradable());
        assert!(TvError::Backend("down".into()).is_degradable());
        assert!(!TvError::Bind("typo".into()).is_degradable());
        assert!(!TvError::Cancelled("sibling".into()).is_degradable());
    }
}
