//! Shared foundation types for the tabviz engine.
//!
//! This crate defines the value model ([`Value`], [`DataType`]), schemas
//! ([`Schema`], [`Field`]), column-level string [`Collation`] (Sect. 4.1.1 of
//! the paper: "the TDE supports column level collated strings"), and the
//! columnar batch type [`Chunk`] that flows between execution operators.
//!
//! Everything higher in the stack — the storage layer, the TQL compiler, the
//! TDE execution engine, caches and the Data Server — is written against these
//! types.

pub mod chunk;
pub mod collation;
pub mod error;
pub mod hash;
pub mod schema;
pub mod selvec;
pub mod value;

pub use chunk::{Chunk, ColumnVec, NullMask, Values};
pub use collation::Collation;
pub use error::{Result, TvError};
pub use schema::{Field, Schema, SchemaRef};
pub use selvec::SelVec;
pub use value::{DataType, Value};
