//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator surface the tabviz property tests use
//! (`prop_map`, `prop_flat_map`, `prop_recursive`, `prop_oneof!`, `Just`,
//! ranges, `sample::select/subsequence`, `collection::vec`, `option::of`,
//! `any`, `proptest!`, `prop_assert*`) over a deterministically seeded RNG.
//!
//! Differences from real proptest, chosen deliberately for an offline
//! container: no shrinking (a failing case panics with the assertion message
//! directly), and each test's case stream is seeded from the test's module
//! path, so failures reproduce across runs and machines without a
//! `proptest-regressions` directory.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    use super::*;

    /// Per-test deterministic RNG.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Seed from the fully qualified test name plus the case index: each
        /// case draws from an independent, reproducible stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)),
            }
        }
    }

    /// Runner configuration. Only `cases` is consulted; the rest of real
    /// proptest's knobs have no meaning without shrinking.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Accepted for API compatibility; there is no shrinking to bound.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Failure type for proptest bodies that `return Ok(())` early or use
    /// `prop_assume!`. Without shrinking, a rejection simply skips the case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        Reject(String),
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies, unrolled eagerly to `depth` levels: each level
    /// chooses the leaf 1/3 of the time and recurses 2/3 of the time, which
    /// bounds expected size like real proptest's budget does.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union {
                arms: vec![(1, leaf.clone()), (2, deeper)],
            }
            .boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe bridge for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable type-erased strategy (Arc-backed, like real proptest).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted union of same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut roll = rng.rng.random_range(0..total.max(1));
        for (w, s) in &self.arms {
            if roll < *w {
                return s.generate(rng);
            }
            roll -= w;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the primitives the tests draw.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.random()
            }
        }
    )*};
}

arb_via_random!(bool, u32, u64, usize, i64, f64);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.random::<u32>() as i32
    }
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Bounds for collection/subsequence sizes, convertible from ranges.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    /// Inclusive.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.rng.random_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly pick one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty vec");
        Select { options }
    }

    pub struct Subsequence<T: Clone> {
        options: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.size.max.min(self.options.len());
            let min = self.size.min.min(max);
            let want = rng.rng.random_range(min..=max);
            // Draw indices without replacement, then emit in original order
            // (real subsequence semantics).
            let mut picked = vec![false; self.options.len()];
            let mut left = want;
            while left > 0 {
                let i = rng.rng.random_range(0..self.options.len());
                if !picked[i] {
                    picked[i] = true;
                    left -= 1;
                }
            }
            self.options
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }

    /// An order-preserving random subsequence with len in `size`.
    pub fn subsequence<T: Clone>(options: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            options,
            size: size.into(),
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.random_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng.random_range(self.size.min..=self.size.max);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates collapse, so draw with a bounded surplus of
            // attempts; a sparse element domain may yield fewer than `n`.
            for _ in 0..(4 * n.max(1)) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            while set.len() < self.size.min {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// A set of roughly `size` distinct elements drawn from `element`.
    /// The element domain must be able to produce `size.min` distinct
    /// values, or generation loops.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3/4 Some, like real proptest's default weight.
            if rng.rng.random_range(0..4u32) > 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use super::{BoxedStrategy, Just, Strategy};
}

/// Weighted/unweighted strategy choice. Every arm is boxed to a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Without shrinking, prop-asserts are plain asserts: the panic carries the
/// formatted values and the deterministic seed reproduces the case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when a generated input doesn't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Build each strategy once; generation reuses it per case.
                let strategies = ($($strat,)+);
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $crate::__proptest_bind!(__rng, strategies, ($($arg),+));
                    // The closure lets bodies `return Ok(())` early, as with
                    // real proptest's Result-returning test harness.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __case, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $tuple:expr, ($a:pat_param)) => {
        let $a = $crate::Strategy::generate(&$tuple.0, &mut $rng);
    };
    ($rng:ident, $tuple:expr, ($a:pat_param, $b:pat_param)) => {
        let $a = $crate::Strategy::generate(&$tuple.0, &mut $rng);
        let $b = $crate::Strategy::generate(&$tuple.1, &mut $rng);
    };
    ($rng:ident, $tuple:expr, ($a:pat_param, $b:pat_param, $c:pat_param)) => {
        let $a = $crate::Strategy::generate(&$tuple.0, &mut $rng);
        let $b = $crate::Strategy::generate(&$tuple.1, &mut $rng);
        let $c = $crate::Strategy::generate(&$tuple.2, &mut $rng);
    };
    ($rng:ident, $tuple:expr, ($a:pat_param, $b:pat_param, $c:pat_param, $d:pat_param)) => {
        let $a = $crate::Strategy::generate(&$tuple.0, &mut $rng);
        let $b = $crate::Strategy::generate(&$tuple.1, &mut $rng);
        let $c = $crate::Strategy::generate(&$tuple.2, &mut $rng);
        let $d = $crate::Strategy::generate(&$tuple.3, &mut $rng);
    };
    ($rng:ident, $tuple:expr, ($a:pat_param, $b:pat_param, $c:pat_param, $d:pat_param, $e:pat_param)) => {
        let $a = $crate::Strategy::generate(&$tuple.0, &mut $rng);
        let $b = $crate::Strategy::generate(&$tuple.1, &mut $rng);
        let $c = $crate::Strategy::generate(&$tuple.2, &mut $rng);
        let $d = $crate::Strategy::generate(&$tuple.3, &mut $rng);
        let $e = $crate::Strategy::generate(&$tuple.4, &mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = proptest::test_runner::TestRng::for_case("t1", 0);
        let s = (0i64..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0..200).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = proptest::test_runner::TestRng::for_case("t2", 0);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn subsequence_preserves_order_and_len() {
        let mut rng = proptest::test_runner::TestRng::for_case("t3", 0);
        let s = proptest::sample::subsequence(vec![1, 2, 3, 4, 5], 2..=4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.windows(2).all(|w| w[0] < w[1]), "order kept: {v:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = proptest::test_runner::TestRng::for_case("t4", 1);
        for _ in 0..50 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 4, "depth bounded: {t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn macro_form_runs(x in 0u32..50, (a, b) in (0i64..5, 0i64..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |case| {
            let mut rng = proptest::test_runner::TestRng::for_case("det", case);
            proptest::collection::vec(0i64..1000, 3..6).generate(&mut rng)
        };
        assert_eq!(gen(0), gen(0));
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(0), gen(1));
    }
}
