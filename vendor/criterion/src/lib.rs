//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench sources compiling and runnable without the statistical
//! machinery: each benchmark runs a short warmup plus a fixed sample of
//! timed iterations and prints `name  mean  min` in nanoseconds/millis.
//! Honors `TABVIZ_BENCH_SAMPLE` (iterations per bench, default 20) so CI can
//! dial cost down to 1.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of the std black box under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` reuses setup output. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark label with an optional parameter, e.g. `parallel/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

fn samples() -> usize {
    std::env::var("TABVIZ_BENCH_SAMPLE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20)
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    /// (total, min) across timed iterations, collected for reporting.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn run(samples: usize, f: impl FnOnce(&mut Bencher)) -> (Duration, Duration, usize) {
        let mut b = Bencher {
            samples,
            result: None,
        };
        f(&mut b);
        let (total, min) = b.result.unwrap_or_default();
        (total, min, samples)
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup round so first-touch effects don't dominate tiny samples.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total, min));
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total, min));
    }
}

fn report(group: &str, id: &str, total: Duration, min: Duration, n: usize) {
    let mean = total.checked_div(n as u32).unwrap_or_default();
    println!(
        "bench {group}/{id}: mean {:>12.3?}  min {:>12.3?}  ({n} iters)",
        mean, min
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; here it simply bounds our fixed loop.
        self.samples = n.clamp(1, samples().max(1));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_id();
        let (total, min, n) = Bencher::run(self.samples, f);
        report(&self.name, &id, total, min, n);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into_id();
        let (total, min, n) = Bencher::run(self.samples, |b| f(b, input));
        report(&self.name, &id, total, min, n);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver handed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: samples(),
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_id();
        let (total, min, n) = Bencher::run(samples(), f);
        report("bench", &id, total, min, n);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_machinery_runs() {
        benches();
    }
}
