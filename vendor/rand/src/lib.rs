//! Offline stand-in for the `rand` crate.
//!
//! Provides the surface tabviz uses — `rngs::StdRng`, `SeedableRng`, and the
//! `RngExt` extension with `random::<T>()` / `random_range(range)` /
//! `random_bool(p)` — on top of xoshiro256** seeded through SplitMix64.
//! Deterministic for a given seed, which is all the workloads and the fault
//! injector require; no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut eight = [0u8; 8];
        eight.copy_from_slice(&seed[..8]);
        Self::seed_from_u64(u64::from_le_bytes(eight))
    }
}

/// Types drawable uniformly from an RNG (`rng.random::<T>()`).
pub trait Standard: Sized {
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1): 53 mantissa bits.
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
///
/// The blanket `SampleRange` impls below are generic over this trait rather
/// than enumerating concrete range types; a single applicable impl is what
/// lets integer-literal ranges unify with the call site's expected type
/// (e.g. `i64_val + rng.random_range(-12..10)`), matching real rand.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in random_range");
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_in(lo: Self, hi: Self, _inclusive: bool, rng: &mut impl RngCore) -> Self {
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Ranges samplable via `rng.random_range(range)`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The ergonomic extension methods (rand 0.9+ naming).
pub trait RngExt: RngCore + Sized {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore> RngExt for R {}

/// Legacy alias: older call sites name the trait `Rng`.
pub use self::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the same generator family real `StdRng` builds are
    /// benchmarked against; 2^256-1 period, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A small-state generator for cheap per-call jitter.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-10..15);
            assert!((-10..15).contains(&v));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }
}
