//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is an `Arc<[u8]>` slice (cheap clones, as the distributed cache
//! relies on), `BytesMut` a growable Vec, and `Buf`/`BufMut` carry exactly
//! the little-endian accessors the pack/persist formats use. `Buf` is
//! implemented for `&[u8]` so decoding walks a reborrowed slice, same as the
//! real crate.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Reader side: little-endian accessors over a shrinking window.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Writer side.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_shrinks_window() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    fn bytes_clones_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b as *const [u8], &*c as *const [u8]);
    }
}
