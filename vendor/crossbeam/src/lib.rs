//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` surface tabviz uses: `bounded` /
//! `unbounded` mpmc channels with cloneable senders *and* receivers, blocking
//! `send`/`recv`, and disconnect semantics (recv errors once all senders are
//! gone and the buffer drains; send errors once all receivers are gone).
//! Built on a mutex + two condvars around a `VecDeque`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Space available (senders wait on this).
        not_full: Condvar,
        /// Items available (receivers wait on this).
        not_empty: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by `send` when every receiver has been dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by `recv` when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders += 1;
            drop(st);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers += 1;
            drop(st);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if st.buf.len() >= cap => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.buf.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; fails once the channel is drained and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.buf.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive: `None` when nothing is buffered right now.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match st.buf.pop_front() {
                Some(v) => {
                    drop(st);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None => Err(RecvError),
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel that blocks senders once `cap` items are buffered.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    /// A channel with no backpressure.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_applies_backpressure_and_mpmc_works() {
        let (tx, rx) = bounded(2);
        let producers: Vec<_> = (0..3)
            .map(|k| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(k * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let rx2 = rx.clone();
        let consumer = std::thread::spawn(move || {
            let mut n = 0;
            while rx2.recv().is_ok() {
                n += 1;
            }
            n
        });
        let mut n = 0;
        while rx.recv().is_ok() {
            n += 1;
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(n + consumer.join().unwrap(), 150);
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
