//! Offline stand-in for the `parking_lot` crate.
//!
//! The container has no network access to crates.io, so the workspace vendors
//! a minimal implementation of the `parking_lot` call surface used by tabviz:
//! `Mutex::lock`, `RwLock::read/write`, and `Condvar::wait/wait_for` with
//! guards passed by `&mut`. Built on `std::sync`; poisoning is swallowed
//! (parking_lot has no poisoning), which matches how the engine uses locks —
//! a panicked worker must not wedge every later acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wait with a timeout; returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wait until the given instant; returns whether the wait timed out.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        h.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
