//! TDE parallel execution (Sect. 4.2) and RLE index scans (Sect. 4.3):
//! serial vs parallel plans, local/global vs range-partitioned aggregation,
//! and range skipping on an RLE-sorted column — with plan explains.
//!
//! Run with: `cargo run --release --example parallel_tde`

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;
use std::time::Instant;
use tabviz::prelude::*;
use tabviz::tde::cost::CostProfile;
use tabviz::tde::parallel::ParallelOptions;
use tabviz::workloads::{generate_flights, FaaConfig};

fn time_query(tde: &Tde, q: &str, opts: &ExecOptions) -> Result<(usize, std::time::Duration)> {
    let t0 = Instant::now();
    let out = tde.query_with(q, opts)?;
    Ok((out.len(), t0.elapsed()))
}

fn main() -> Result<()> {
    let rows = 4_000_000;
    println!("generating {rows} flights ...");
    let flights = generate_flights(&FaaConfig::with_rows(rows))?;
    let db = Arc::new(Database::new("faa"));
    // Sorted by carrier: carrier is RLE-encoded and range-partitionable.
    db.put(Table::from_chunk(
        "flights",
        &flights,
        &["carrier", "date"],
    )?)?;
    let tde = Tde::new(db);

    let agg_q = "(aggregate ((carrier))
                            ((count as n) (avg arr_delay as avg_delay) (max dep_delay as worst))
                   (scan flights))";

    // --- Serial vs parallel aggregation ---
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("available cores: {cores} (parallel wall-clock gains require >1)");
    let dop = cores.max(4); // force parallel plan shapes even on small boxes
    let profile = CostProfile {
        min_work_per_thread: 50_000,
        max_dop: dop,
    };

    let serial = ExecOptions::serial();
    let (n, t_serial) = time_query(&tde, agg_q, &serial)?;
    println!("serial aggregate:            {n:>4} groups in {t_serial:?}");

    let mut parallel = ExecOptions::default();
    parallel.parallel = ParallelOptions {
        profile,
        range_partition_min_distinct_per_dop: 1,
        ..Default::default()
    };
    let (n, t_par) = time_query(&tde, agg_q, &parallel)?;
    println!(
        "parallel (range-partitioned): {n:>4} groups in {t_par:?}  ({:.2}x)",
        t_serial.as_secs_f64() / t_par.as_secs_f64()
    );

    let mut no_range = ExecOptions::default();
    no_range.parallel = ParallelOptions {
        enable_range_partition: false,
        profile,
        ..Default::default()
    };
    let (_, t_lg) = time_query(&tde, agg_q, &no_range)?;
    println!(
        "parallel (local/global):      {n:>4} groups in {t_lg:?}  ({:.2}x)",
        t_serial.as_secs_f64() / t_lg.as_secs_f64()
    );

    // Show the two parallel plans.
    let plan = parse_plan(agg_q)?;
    println!(
        "\nrange-partitioned plan:\n{}",
        tde.plan_physical(&plan, &parallel)?.explain()
    );
    println!(
        "local/global plan:\n{}",
        tde.plan_physical(&plan, &no_range)?.explain()
    );

    // --- RLE index scan: selective filter on the sorted carrier column ---
    let filter_q = "(aggregate ((origin_state)) ((count as n) (avg arr_delay as d))
                      (select (= carrier \"HA\") (scan flights)))";
    let mut no_rle = ExecOptions::serial();
    no_rle.physical.enable_rle_index = false;
    let (_, t_full) = time_query(&tde, filter_q, &no_rle)?;
    let (_, t_rle) = time_query(&tde, filter_q, &ExecOptions::serial())?;
    println!(
        "\nselective filter (carrier = HA, ~1% of rows):\n  full scan: {t_full:?}\n  RLE range skip: {t_rle:?} ({:.1}x)",
        t_full.as_secs_f64() / t_rle.as_secs_f64()
    );
    let fplan = parse_plan(filter_q)?;
    println!(
        "plan:\n{}",
        tde.plan_physical(&fplan, &ExecOptions::serial())?.explain()
    );
    Ok(())
}
