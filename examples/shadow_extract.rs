//! Shadow extracts (Sect. 4.4): querying a CSV by re-parsing it every time
//! (the Jet-era behavior) vs extracting it once into TDE temp tables.
//!
//! Run with: `cargo run --release --example shadow_extract`

use std::sync::Arc;
use std::time::Instant;
use tabviz::prelude::*;
use tabviz::textscan::csv::HeaderMode;
use tabviz::workloads::{generate_flights, FaaConfig};

/// Render the generated flights back out as CSV text (the "file on disk").
fn flights_csv(rows: usize) -> Result<String> {
    let chunk = generate_flights(&FaaConfig::with_rows(rows))?;
    let mut out = String::from(
        "date,carrier,origin,dest,origin_state,dest_state,market,dep_hour,weekday,distance,dep_delay,arr_delay,cancelled\n",
    );
    for i in 0..chunk.len() {
        let row = chunk.row(i);
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Date(d) => {
                    let (y, m, dd) = tabviz::tql::datefn::civil_from_days(*d);
                    format!("{y:04}-{m:02}-{dd:02}")
                }
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    Ok(out)
}

fn main() -> Result<()> {
    let csv = flights_csv(60_000)?;
    println!("CSV source: {} KiB", csv.len() / 1024);

    let queries = [
        "(aggregate ((carrier)) ((count as n) (avg arr_delay as d)) (scan flights_csv))",
        "(aggregate ((origin_state)) ((count as n)) (scan flights_csv))",
        "(topn 5 ((n desc)) (aggregate ((dest)) ((count as n)) (scan flights_csv)))",
        "(aggregate ((weekday)) ((count as n)) (select (= cancelled true) (scan flights_csv)))",
        "(aggregate () ((countd market as markets)) (scan flights_csv))",
    ];

    let db = Arc::new(Database::new("desktop"));
    let extracts = ShadowExtracts::new(Arc::clone(&db));
    let opts = CsvOptions {
        header: HeaderMode::Yes,
        ..Default::default()
    };

    // --- Baseline: parse the whole file for every query. ---
    let t0 = Instant::now();
    for q in &queries {
        let chunk = extracts.parse_per_query(&csv, &opts)?;
        // Register transiently so the TDE can run the query over it.
        db.put_temp(Table::from_chunk("flights_csv", &chunk, &[])?)?;
        let tde = Tde::new(Arc::clone(&db));
        tde.query(q)?;
        db.clear_temp();
    }
    let per_query = t0.elapsed();
    println!(
        "parse-per-query: {} queries in {:?} ({} full parses)",
        queries.len(),
        per_query,
        extracts.parse_count()
    );

    // --- Shadow extract: one-time parse + encode, then engine-speed queries. ---
    let t0 = Instant::now();
    extracts.connect_text("flights_csv", &csv, &opts)?;
    let extract_cost = t0.elapsed();
    let tde = Tde::new(Arc::clone(&db));
    let t0 = Instant::now();
    for q in &queries {
        tde.query(q)?;
    }
    let query_time = t0.elapsed();
    println!(
        "shadow extract: one-time cost {:?}, then {} queries in {:?}",
        extract_cost,
        queries.len(),
        query_time
    );
    println!(
        "speedup on the query phase: {:.1}x (amortized including extraction: {:.1}x)",
        per_query.as_secs_f64() / query_time.as_secs_f64(),
        per_query.as_secs_f64() / (query_time + extract_cost).as_secs_f64(),
    );

    // Reconnecting to the unchanged file reuses the extract — no new parse.
    let parses_before = extracts.parse_count();
    extracts.connect_text("flights_csv", &csv, &opts)?;
    assert_eq!(extracts.parse_count(), parses_before);
    println!("reconnect to unchanged file: extract reused, no re-parse");
    Ok(())
}
