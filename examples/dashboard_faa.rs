//! The paper's dashboards end-to-end: render Fig. 1 and Fig. 2, interact,
//! and watch batching / fusion / caching keep the experience responsive.
//!
//! Run with: `cargo run --release --example dashboard_faa`

use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::workloads::{
    carriers_dim, fig1_dashboard, fig2_dashboard, generate_flights, FaaConfig,
};

fn main() -> Result<()> {
    let flights = generate_flights(&FaaConfig::with_rows(300_000))?;
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"])?)?;
    db.put(Table::from_chunk("carriers", &carriers_dim()?, &["code"])?)?;

    let sim = SimDb::new(
        "warehouse",
        db,
        SimConfig {
            latency: LatencyModel::lan(),
            ..Default::default()
        },
    );
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), 8);

    // ---------- Fig. 1: the FAA on-time dashboard ----------
    let dash = fig1_dashboard("warehouse", "flights");
    let mut state = DashboardState::default();

    let t0 = std::time::Instant::now();
    let (results, report) = dash.render(&qp, &mut state, &BatchOptions::default(), true)?;
    println!(
        "initial load: {} zones in {:?} ({} remote, {} local, {} fused away)",
        results.len(),
        t0.elapsed(),
        report.batches[0].remote,
        report.batches[0].local,
        report.batches[0].fused_away,
    );
    println!("\nAirlines zone:\n{}", results["Airlines"]);

    // Interaction: click California on the origins map.
    state.select("OriginsByState", Value::Str("CA".into()));
    let t0 = std::time::Instant::now();
    let (results, _) = dash.render(&qp, &mut state, &BatchOptions::default(), false)?;
    println!(
        "selected CA origins: total visible {} in {:?}",
        results["TotalVisible"].row(0)[0],
        t0.elapsed()
    );

    // Quick filter: only the two biggest carriers. Answered from cache by
    // filtering, when the filter column is in the cached grouping.
    state.set_quick_filter(
        "carrier",
        vec![Value::Str("WN".into()), Value::Str("DL".into())],
    );
    let t0 = std::time::Instant::now();
    let (results, _) = dash.render(&qp, &mut state, &BatchOptions::default(), false)?;
    println!(
        "quick-filtered to WN+DL: Airlines zone has {} rows in {:?}",
        results["Airlines"].len(),
        t0.elapsed()
    );

    // ---------- Fig. 2: the market/carrier cascade ----------
    let dash2 = fig2_dashboard("warehouse", "flights", "carriers");
    let mut state2 = DashboardState::default();
    dash2.render(&qp, &mut state2, &BatchOptions::default(), false)?;

    state2.select("Market", Value::Str("HNL-OGG".into()));
    state2.select("Carrier", Value::Str("AA".into()));
    let (results2, report2) = dash2.render(&qp, &mut state2, &BatchOptions::default(), false)?;
    println!(
        "\nFig.2 cascade: {} iterations, invalidated selections: {:?}",
        report2.iterations, report2.invalidated_selections
    );
    println!(
        "AirlineName zone after cascade:\n{}",
        results2["AirlineName"]
    );

    let (istats, lstats) = qp.caches.stats();
    println!(
        "cache stats: intelligent {} exact + {} subsumption hits / {} misses; literal {} hits",
        istats.exact_hits, istats.subsumption_hits, istats.misses, lstats.hits
    );
    println!(
        "backend saw {} queries, {} rows returned",
        sim.stats().queries,
        sim.stats().rows_returned
    );
    Ok(())
}
