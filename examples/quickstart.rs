//! Quickstart: load data into the TDE, query it with TQL, then drive the
//! cached query processor the way a Tableau client would.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

fn main() -> Result<()> {
    // --- 1. Build an extract: synthetic FAA flights in a TDE database. ---
    let flights = generate_flights(&FaaConfig::with_rows(200_000))?;
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk(
        "flights",
        &flights,
        &["carrier", "date"],
    )?)?;
    println!("loaded {} flights into the TDE", flights.len());

    // The TDE packs a database into a single file (Sect. 4.1).
    let path = std::env::temp_dir().join("faa_quickstart.tvdb");
    tabviz::storage::pack::pack_to_file(&db, &path)?;
    println!(
        "packed database: {} ({} KiB)",
        path.display(),
        std::fs::metadata(&path)?.len() / 1024
    );

    // --- 2. Query with TQL text. ---
    let tde = Tde::new(Arc::clone(&db));
    let top = tde.query(
        "(topn 5 ((flights desc))
           (aggregate ((carrier))
                      ((count as flights) (avg arr_delay as avg_delay))
             (select (= cancelled false)
               (scan flights))))",
    )?;
    println!("\ntop 5 carriers by flights:\n{top}");

    // Explain shows the compiler / optimizer / parallel-plan pipeline.
    let explain = tde.explain(
        "(aggregate ((origin_state)) ((count as n)) (scan flights))",
        &ExecOptions::default(),
    )?;
    println!("explain:\n{explain}");

    // --- 3. The cached query processor over a simulated remote server. ---
    let sim = SimDb::new(
        "warehouse",
        Arc::clone(&db),
        SimConfig {
            latency: LatencyModel::lan(),
            ..Default::default()
        },
    );
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim), 4);

    let spec = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
        .group("carrier")
        .group("origin_state")
        .agg(AggCall::new(AggFunc::Count, None, "n"))
        .agg(AggCall::new(
            AggFunc::Sum,
            Some(col("arr_delay")),
            "total_delay",
        ))
        .agg(AggCall::new(
            AggFunc::Count,
            Some(col("arr_delay")),
            "cnt_delay",
        ));

    let t0 = std::time::Instant::now();
    let (out, outcome) = qp.execute(&spec)?;
    println!(
        "first run: {} rows, {:?}, {:?}",
        out.len(),
        outcome,
        t0.elapsed()
    );

    // The same question again: answered by the intelligent cache.
    let t0 = std::time::Instant::now();
    let (_, outcome) = qp.execute(&spec)?;
    println!("second run: {:?}, {:?}", outcome, t0.elapsed());

    // A *coarser* question with a filter: also answered locally, by roll-up
    // + filter post-processing (Sect. 3.2's view matching).
    let coarse = QuerySpec::new("warehouse", LogicalPlan::scan("flights"))
        .filter(bin(BinOp::Eq, col("origin_state"), lit("CA")))
        .group("carrier")
        .agg(AggCall::new(
            AggFunc::Avg,
            Some(col("arr_delay")),
            "avg_delay",
        ));
    let t0 = std::time::Instant::now();
    let (ca, outcome) = qp.execute(&coarse)?;
    println!(
        "derived question (CA avg delay by carrier): {} rows, {:?}, {:?}",
        ca.len(),
        outcome,
        t0.elapsed()
    );
    assert_eq!(outcome, ExecOutcome::IntelligentHit);

    std::fs::remove_file(path).ok();
    Ok(())
}
