//! Tableau-Server-style multi-user serving: a two-node cluster sharing a
//! distributed cache layer, Data Server row-level security, and
//! Tableau-Public-style load-dominated traffic.
//!
//! Run with: `cargo run --release --example multiuser_server`

use std::sync::Arc;
use std::time::Duration;
use tabviz::cache::{ExternalStore, ServerNodeCache};
use tabviz::prelude::*;
use tabviz::workloads::{generate_flights, FaaConfig};

fn main() -> Result<()> {
    let flights = generate_flights(&FaaConfig::with_rows(200_000))?;
    let db = Arc::new(Database::new("faa"));
    db.put(Table::from_chunk("flights", &flights, &["carrier"])?)?;

    // ---------- Cluster-wide cache sharing (Sect. 3.2) ----------
    let external = Arc::new(ExternalStore::new(Duration::from_micros(300)));
    let node1 = ServerNodeCache::new("node-1", Arc::clone(&external));
    let node2 = ServerNodeCache::new("node-2", Arc::clone(&external));

    let spec = QuerySpec::new("faa", LogicalPlan::scan("flights"))
        .group("carrier")
        .agg(AggCall::new(AggFunc::Count, None, "n"));

    // Node 1 computes the initial-load query once (here: directly on a TDE).
    let tde = Tde::new(Arc::clone(&db));
    let chunk = tde.execute_plan(&spec.to_plan()?, &ExecOptions::default())?;
    node1.store(spec.clone(), "Q", &chunk, Duration::from_millis(30));
    println!("node-1 computed and published the initial-load result");

    // 50 viewers hit node 2; every request is warm thanks to the external
    // layer, and after the first pull the node answers from local memory.
    let mut external_hits = 0;
    for _ in 0..50 {
        let (hit, _) = node2.lookup(&spec, "Q");
        assert!(hit.is_some());
        external_hits = node2.stats().external_hits;
    }
    println!(
        "node-2 served 50 viewers: {} external fetch(es), {} node-local hits",
        external_hits,
        node2.stats().local_hits
    );

    // ---------- Data Server: shared model + row-level security ----------
    let sim = SimDb::new("warehouse", Arc::clone(&db), SimConfig::default());
    let qp = QueryProcessor::default();
    qp.registry.register(Arc::new(sim.clone()), 8);
    let server = Arc::new(DataServer::new(qp));
    let published =
        PublishedSource::new("flights-model", "warehouse", LogicalPlan::scan("flights"));
    // One shared calculation, defined once, used by every workbook.
    published.define_calculation("is_late", bin(BinOp::Gt, col("arr_delay"), lit(15i64)));
    // Regional analysts only see their states.
    published.set_user_filter("ca_analyst", bin(BinOp::Eq, col("origin_state"), lit("CA")));
    published.set_user_filter("ny_analyst", bin(BinOp::Eq, col("origin_state"), lit("NY")));
    server.publish(published);

    for user in ["ca_analyst", "ny_analyst", "hq"] {
        let session = server.connect("flights-model", user)?;
        let q = ClientQuery {
            group_by: vec!["origin_state".into()],
            aggs: vec![AggCall::new(AggFunc::Count, None, "flights")],
            ..Default::default()
        };
        let (out, _) = session.query(&q)?;
        println!("{user}: sees {} origin state(s)", out.len());
    }

    // A big filter set uploaded once, referenced by name afterwards.
    let mut session = server.connect("flights-model", "hq")?;
    let markets: Vec<Value> = (0..200).map(|i| Value::Str(format!("M{i:03}"))).collect();
    let set = session.define_set("market", markets)?;
    let q = ClientQuery {
        group_by: vec!["carrier".into()],
        aggs: vec![AggCall::new(AggFunc::Count, None, "n")],
        set_refs: vec![set],
        ..Default::default()
    };
    session.query(&q)?;
    let stats = server.stats();
    println!(
        "data server: {} queries, {} B in, {} B out, {} shared set definition(s), backing DB created {} temp table(s)",
        stats.queries,
        stats.client_bytes_in,
        stats.client_bytes_out,
        stats.set_definitions,
        sim.stats().temp_tables_created,
    );
    Ok(())
}
